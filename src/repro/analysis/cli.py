"""Command-line front end: ``python -m repro lint`` / ``tools/lint.py``.

Configuration lives in ``[tool.repro_lint]`` in pyproject.toml and is
read with :mod:`tomllib` where available (3.11+); on 3.10 the committed
defaults baked into :class:`LintConfig` and this module apply, and the
two are kept identical by ``tests/analysis/test_cli.py``.

Exit status: ``--strict`` exits 1 when any non-baselined,
non-suppressed finding remains (the CI gate); without ``--strict`` the
run is advisory and always exits 0 (the benchmarks/examples sweep).
Exit 2 means the run itself could not proceed — unknown rule id, or a
missing/invalid layer contract under ``--program`` — which CI must
treat as failure, never as "no findings".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import write_baseline
from repro.analysis.engine import (
    LintConfig,
    LintResult,
    lint_paths,
    repo_root,
    with_overrides,
)
from repro.analysis.program.contract import ContractError
from repro.analysis.program.graph import ImportGraph, load_graph
from repro.analysis.registry import all_program_rules, all_rules
from repro.analysis.report import findings_to_jsonl, render_table

__all__ = ["add_lint_arguments", "run_lint", "main"]

#: committed defaults, mirrored in ``[tool.repro_lint]``.
DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "tools/lint_baseline.json"

_CONFIG_TUPLES = (
    "allow_wall_clock",
    "rpc_dirs",
    "rpc_methods",
    "obs_exempt_segments",
    "envelope_roots",
)

_CONFIG_STRINGS = (
    "contract_path",
    "envelope_registry",
    "routes_module",
)


def _load_pyproject_config(root: Path) -> dict:
    """``[tool.repro_lint]`` as a dict; empty when absent or on 3.10."""
    pyproject = root / "pyproject.toml"
    if not pyproject.exists():
        return {}
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: defaults in code apply
        return {}
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro_lint", {})
    return section if isinstance(section, dict) else {}


def build_config(root: Path) -> LintConfig:
    """LintConfig for ``root`` with the pyproject overlay applied."""
    section = _load_pyproject_config(root)
    overrides = {
        key: tuple(section[key])
        for key in _CONFIG_TUPLES
        if isinstance(section.get(key), list)
    }
    overrides.update(
        {
            key: section[key]
            for key in _CONFIG_STRINGS
            if isinstance(section.get(key), str)
        }
    )
    return with_overrides(LintConfig(root=root), **overrides)


def configured_paths(root: Path) -> List[str]:
    section = _load_pyproject_config(root)
    paths = section.get("paths")
    if isinstance(paths, list) and paths:
        return [str(p) for p in paths]
    return list(DEFAULT_PATHS)


def configured_baseline(root: Path) -> str:
    section = _load_pyproject_config(root)
    baseline = section.get("baseline")
    return str(baseline) if isinstance(baseline, str) else DEFAULT_BASELINE


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paths",
        nargs="+",
        metavar="PATH",
        help="files or directories to lint (default: [tool.repro_lint] "
        "paths, falling back to src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any non-baselined, non-suppressed finding",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="also run the whole-program passes (import cycles, layer "
        "contract, async safety, error-envelope flow)",
    )
    parser.add_argument(
        "--graph",
        metavar="PATH",
        help="import-graph artifact from a previous --write-graph run; "
        "revalidated against file hashes and rebuilt if stale",
    )
    parser.add_argument(
        "--write-graph",
        metavar="PATH",
        help="write the import-graph artifact after the run "
        "(requires --program)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "jsonl"),
        default="table",
        help="report format (default: table)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline JSON of grandfathered findings (default: "
        f"{DEFAULT_BASELINE}; pass an empty string to disable)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from this run's findings and exit 0",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rule ids and summaries, then exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show baselined and suppressed findings in table output",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repository root (default: nearest ancestor with pyproject.toml)",
    )


def _resolve(root: Path, value: str) -> Path:
    path = Path(value)
    return path if path.is_absolute() else root / value


def _load_graph_artifact(root: Path, value: str) -> Optional[ImportGraph]:
    """Best-effort cache read: a missing/rotten artifact just rebuilds."""
    path = _resolve(root, value)
    try:
        return load_graph(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"lint: ignoring graph artifact {value}: {exc}", file=sys.stderr)
        return None


def run_lint(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve() if args.root else repo_root()
    if args.list_rules:
        for one_rule in (*all_rules(), *all_program_rules()):
            print(f"{one_rule.id}: {one_rule.summary}")
        return 0
    config = build_config(root)
    paths = [_resolve(root, p) for p in (args.paths or configured_paths(root))]
    baseline_arg = (
        args.baseline if args.baseline is not None else configured_baseline(root)
    )
    baseline_path: Optional[Path] = None
    if baseline_arg:
        baseline_path = _resolve(root, baseline_arg)
    if args.write_graph and not args.program:
        print("lint: --write-graph requires --program", file=sys.stderr)
        return 2
    graph = (
        _load_graph_artifact(root, args.graph)
        if args.graph and args.program
        else None
    )
    try:
        if args.write_baseline:
            if baseline_path is None:
                print(
                    "lint: --write-baseline needs a baseline path",
                    file=sys.stderr,
                )
                return 2
            result = lint_paths(
                paths,
                config=config,
                select=args.select,
                program=args.program,
                graph=graph,
            )
            write_baseline(baseline_path, result.findings)
            print(
                f"lint: wrote {len(result.findings)} findings to "
                f"{baseline_path.relative_to(root) if baseline_path.is_relative_to(root) else baseline_path}"
            )
            return 0
        result = lint_paths(
            paths,
            config=config,
            select=args.select,
            baseline_path=baseline_path,
            program=args.program,
            graph=graph,
        )
    except ContractError as exc:
        # Exit 2, not 1: the gate could not run, which is a different
        # failure from the gate finding problems.
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.write_graph:
        if result.graph is None:
            print("lint: no import graph was built", file=sys.stderr)
            return 2
        graph_out = _resolve(root, args.write_graph)
        graph_out.parent.mkdir(parents=True, exist_ok=True)
        graph_out.write_text(result.graph.to_json(), encoding="utf-8")
    _emit(result, args)
    if args.strict and not result.clean:
        return 1
    return 0


def _emit(result: LintResult, args: argparse.Namespace) -> None:
    if args.format == "jsonl":
        sys.stdout.write(findings_to_jsonl(result.findings))
    else:
        print(render_table(result, verbose=args.verbose))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism and contract linter for repro",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via tools/lint.py
    raise SystemExit(main())
