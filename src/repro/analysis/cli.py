"""Command-line front end: ``python -m repro lint`` / ``tools/lint.py``.

Configuration lives in ``[tool.repro_lint]`` in pyproject.toml and is
read with :mod:`tomllib` where available (3.11+); on 3.10 the committed
defaults baked into :class:`LintConfig` and this module apply, and the
two are kept identical by ``tests/analysis/test_cli.py``.

Exit status: ``--strict`` exits 1 when any non-baselined,
non-suppressed finding remains (the CI gate); without ``--strict`` the
run is advisory and always exits 0 (the benchmarks/examples sweep).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import write_baseline
from repro.analysis.engine import (
    LintConfig,
    LintResult,
    lint_paths,
    repo_root,
    with_overrides,
)
from repro.analysis.registry import all_rules
from repro.analysis.report import findings_to_jsonl, render_table

__all__ = ["add_lint_arguments", "run_lint", "main"]

#: committed defaults, mirrored in ``[tool.repro_lint]``.
DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "tools/lint_baseline.json"

_CONFIG_TUPLES = (
    "allow_wall_clock",
    "rpc_dirs",
    "rpc_methods",
    "obs_exempt_segments",
)


def _load_pyproject_config(root: Path) -> dict:
    """``[tool.repro_lint]`` as a dict; empty when absent or on 3.10."""
    pyproject = root / "pyproject.toml"
    if not pyproject.exists():
        return {}
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: defaults in code apply
        return {}
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro_lint", {})
    return section if isinstance(section, dict) else {}


def build_config(root: Path) -> LintConfig:
    """LintConfig for ``root`` with the pyproject overlay applied."""
    section = _load_pyproject_config(root)
    overrides = {
        key: tuple(section[key])
        for key in _CONFIG_TUPLES
        if isinstance(section.get(key), list)
    }
    return with_overrides(LintConfig(root=root), **overrides)


def configured_paths(root: Path) -> List[str]:
    section = _load_pyproject_config(root)
    paths = section.get("paths")
    if isinstance(paths, list) and paths:
        return [str(p) for p in paths]
    return list(DEFAULT_PATHS)


def configured_baseline(root: Path) -> str:
    section = _load_pyproject_config(root)
    baseline = section.get("baseline")
    return str(baseline) if isinstance(baseline, str) else DEFAULT_BASELINE


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paths",
        nargs="+",
        metavar="PATH",
        help="files or directories to lint (default: [tool.repro_lint] "
        "paths, falling back to src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any non-baselined, non-suppressed finding",
    )
    parser.add_argument(
        "--format",
        choices=("table", "jsonl"),
        default="table",
        help="report format (default: table)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline JSON of grandfathered findings (default: "
        f"{DEFAULT_BASELINE}; pass an empty string to disable)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from this run's findings and exit 0",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rule ids and summaries, then exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show baselined and suppressed findings in table output",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repository root (default: nearest ancestor with pyproject.toml)",
    )


def run_lint(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve() if args.root else repo_root()
    if args.list_rules:
        for one_rule in all_rules():
            print(f"{one_rule.id}: {one_rule.summary}")
        return 0
    config = build_config(root)
    paths = [
        Path(p) if Path(p).is_absolute() else root / p
        for p in (args.paths or configured_paths(root))
    ]
    baseline_arg = (
        args.baseline if args.baseline is not None else configured_baseline(root)
    )
    baseline_path: Optional[Path] = None
    if baseline_arg:
        baseline_path = (
            Path(baseline_arg)
            if Path(baseline_arg).is_absolute()
            else root / baseline_arg
        )
    if args.write_baseline:
        if baseline_path is None:
            print("lint: --write-baseline needs a baseline path", file=sys.stderr)
            return 2
        result = lint_paths(paths, config=config, select=args.select)
        write_baseline(baseline_path, result.findings)
        print(
            f"lint: wrote {len(result.findings)} findings to "
            f"{baseline_path.relative_to(root) if baseline_path.is_relative_to(root) else baseline_path}"
        )
        return 0
    result = lint_paths(
        paths, config=config, select=args.select, baseline_path=baseline_path
    )
    _emit(result, args)
    if args.strict and not result.clean:
        return 1
    return 0


def _emit(result: LintResult, args: argparse.Namespace) -> None:
    if args.format == "jsonl":
        sys.stdout.write(findings_to_jsonl(result.findings))
    else:
        print(render_table(result, verbose=args.verbose))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism and contract linter for repro",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via tools/lint.py
    raise SystemExit(main())
