"""Reporters for lint results: canonical JSONL and a console table.

Both reuse the repo's existing formatting machinery rather than
inventing a third convention: the JSONL form goes through
:func:`repro.obs.export.canonical_jsonl` (sorted keys, no spaces,
trailing newline — byte-identical across runs and hash seeds) and the
table form goes through :class:`repro.metrics.reporting.Table`, the
same fixed-width renderer the benches use.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding
from repro.metrics.reporting import Table
from repro.obs.export import canonical_jsonl

__all__ = ["findings_to_jsonl", "render_table", "render_summary"]


def findings_to_jsonl(findings: List[Finding]) -> str:
    """Canonical JSONL, one finding per line, total order, stable bytes."""
    ordered = sorted(findings, key=Finding.sort_key)
    return canonical_jsonl(finding.to_dict() for finding in ordered)


def render_table(result: LintResult, verbose: bool = False) -> str:
    """Fixed-width findings table plus a one-line summary."""
    parts: List[str] = []
    if result.findings:
        table = Table(headers=["location", "rule", "message"])
        for finding in result.findings:
            table.add(
                f"{finding.path}:{finding.line}:{finding.col}",
                finding.rule,
                finding.message,
            )
        parts.append(table.render())
    if verbose and result.baselined:
        table = Table(
            headers=["location", "rule", "message"],
            title="baselined (grandfathered; fix when touched)",
        )
        for finding in result.baselined:
            table.add(
                f"{finding.path}:{finding.line}:{finding.col}",
                finding.rule,
                finding.message,
            )
        parts.append(table.render())
    if verbose and result.suppressed:
        table = Table(
            headers=["location", "rule", "reason"],
            title="suppressed (repro-lint: allow)",
        )
        for finding, suppression in result.suppressed:
            table.add(
                f"{finding.path}:{finding.line}:{finding.col}",
                finding.rule,
                suppression.reason,
            )
        parts.append(table.render())
    parts.append(render_summary(result))
    return "\n".join(part for part in parts if part)


def render_summary(result: LintResult) -> str:
    counts: List[Tuple[str, int]] = [
        ("finding", len(result.findings)),
        ("baselined", len(result.baselined)),
        ("suppressed", len(result.suppressed)),
    ]
    detail = ", ".join(
        f"{count} {label}{'s' if label == 'finding' and count != 1 else ''}"
        for label, count in counts
    )
    return f"checked {result.files_checked} files: {detail}"
