"""Pass 2: the event loop must never be blocked or a coroutine dropped.

Three rules, all needing whole-program sight:

``blocking-in-async`` — a call inside an ``async def`` body that
resolves (via the module's import table) to a known blocking API
(``time.sleep``, ``subprocess.*``, sync socket constructors, sync
file ``open``) stalls every connection the loop serves, not just the
caller.  Only code whose *nearest* enclosing function is the async
def is flagged: a sync helper nested inside is blocking only at its
call sites, which the resolver sees separately.

``unawaited-coroutine`` — a statement-expression call of something
statically known to be a coroutine function discards the coroutine:
the work silently never runs.  Known means: resolvable to an ``async
def`` anywhere in the analyzed tree (cross-module, via the program
context), a module-level ``async def`` in the same file, a
``self.m()`` where the enclosing class defines ``async def m``, or a
curated set of asyncio coroutine factories.  Attribute calls on
arbitrary objects are *not* guessed at — ``writer.close()`` is sync
on a StreamWriter and async on a pool, and a name-only match would
cry wolf.

``handler-deadline`` — an async route handler (named in the route
registry) that awaits anything must thread the request deadline into
that work; otherwise a slow backend call outlives the client's
budget and the §4.4 latency contract silently breaks.  Handlers with
no await (in-memory responses) are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.program.graph import module_name_for_rel
from repro.analysis.registry import program_rule
from repro.analysis.source import SourceModule, dotted_name

BLOCKING_RULE_ID = "blocking-in-async"
UNAWAITED_RULE_ID = "unawaited-coroutine"
HANDLER_RULE_ID = "handler-deadline"

#: Dotted names that block the calling thread. Matched against the
#: import-table resolution of the call target, so aliases are seen
#: through and a local function that happens to be called ``sleep``
#: is not.
_BLOCKING = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "urllib.request.urlopen",
    }
)

#: Prefixes that are blocking wholesale (every public call does I/O).
_BLOCKING_PREFIXES = ("requests.",)

#: asyncio factories that return a coroutine/awaitable which is a bug
#: to discard.
_ASYNCIO_COROUTINES = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.open_connection",
        "asyncio.start_server",
        "asyncio.to_thread",
    }
)


def _nearest_function(module: SourceModule, node: ast.AST) -> Optional[ast.AST]:
    for ancestor in module.ancestors(node):
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return ancestor
    return None


def _blocking_target(module: SourceModule, call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        # Builtin file open: sync disk I/O on the loop thread.
        if "open" not in module.imports.symbols:
            return "open"
        return None
    resolved = module.imports.resolve(call.func)
    if resolved is None:
        return None
    if resolved in _BLOCKING:
        return resolved
    if resolved.startswith(_BLOCKING_PREFIXES):
        return resolved
    return None


@program_rule(
    BLOCKING_RULE_ID,
    "no blocking call (time.sleep, subprocess, sync socket/file I/O) "
    "directly inside an async def: it stalls every request the event "
    "loop is serving",
)
def check_blocking(context, config) -> Iterator[Finding]:
    for rel in sorted(context.modules):
        module = context.modules[rel]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            enclosing = _nearest_function(module, node)
            if not isinstance(enclosing, ast.AsyncFunctionDef):
                continue
            target = _blocking_target(module, node)
            if target is None:
                continue
            yield Finding(
                path=rel,
                line=node.lineno,
                col=node.col_offset,
                rule=BLOCKING_RULE_ID,
                message=(
                    f"blocking call {target}(...) inside async def "
                    f"{enclosing.name!r}; use the asyncio equivalent or "
                    "offload via loop.run_in_executor"
                ),
            )


def _async_defs_by_module(context) -> Dict[str, Set[str]]:
    """Module name -> its module-level ``async def`` names."""
    table: Dict[str, Set[str]] = {}
    for rel in sorted(context.modules):
        module = context.modules[rel]
        names = {
            node.name
            for node in module.tree.body
            if isinstance(node, ast.AsyncFunctionDef)
        }
        if names:
            table[module_name_for_rel(rel)] = names
    return table


def _enclosing_class(module: SourceModule, node: ast.AST) -> Optional[ast.ClassDef]:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
    return None


def _coroutine_target(
    module: SourceModule,
    call: ast.Call,
    async_defs: Dict[str, Set[str]],
    local_async: Set[str],
) -> Optional[str]:
    func = call.func
    # `self.m()` where the enclosing class defines `async def m`.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        cls = _enclosing_class(module, call)
        if cls is not None and any(
            isinstance(item, ast.AsyncFunctionDef) and item.name == func.attr
            for item in cls.body
        ):
            return f"self.{func.attr}"
        return None
    # Bare name defined as async in this module.
    if isinstance(func, ast.Name) and func.id in local_async:
        return func.id
    resolved = module.imports.resolve(func)
    if resolved is None:
        return None
    if resolved in _ASYNCIO_COROUTINES:
        return resolved
    # Cross-module: `from repro.x import fetch` where repro.x defines
    # `async def fetch`, or `mod.fetch()` under `import repro.x as mod`.
    if "." in resolved:
        mod, name = resolved.rsplit(".", 1)
        if name in async_defs.get(mod, ()):
            return resolved
    return None


@program_rule(
    UNAWAITED_RULE_ID,
    "a statement-expression call of a known coroutine function "
    "discards the coroutine — the work never runs; await it or hand "
    "it to a task",
)
def check_unawaited(context, config) -> Iterator[Finding]:
    async_defs = _async_defs_by_module(context)
    for rel in sorted(context.modules):
        module = context.modules[rel]
        local_async = {
            node.name
            for node in module.tree.body
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            target = _coroutine_target(
                module, node.value, async_defs, local_async
            )
            if target is None:
                continue
            yield Finding(
                path=rel,
                line=node.value.lineno,
                col=node.value.col_offset,
                rule=UNAWAITED_RULE_ID,
                message=(
                    f"coroutine {target}(...) called but never awaited; "
                    "the coroutine object is discarded and the work never "
                    "runs"
                ),
            )


def _route_handler_names(context, config) -> Set[str]:
    """Handler names declared in the route registry module, read from
    its AST: the third positional argument of each ``Route(...)``."""
    module = context.modules.get(config.routes_module)
    if module is None:
        return set()
    handlers: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_name(node.func)
        if parts is None or parts[-1] != "Route":
            continue
        if len(node.args) >= 3 and isinstance(node.args[2], ast.Constant):
            value = node.args[2].value
            if isinstance(value, str):
                handlers.add(value)
    return handlers


def _mentions_deadline(func: ast.AST) -> bool:
    for node in ast.walk(func):
        texts: Tuple[Optional[str], ...] = ()
        if isinstance(node, ast.Name):
            texts = (node.id,)
        elif isinstance(node, ast.Attribute):
            texts = (node.attr,)
        elif isinstance(node, ast.keyword):
            texts = (node.arg,)
        elif isinstance(node, ast.arg):
            texts = (node.arg,)
        if any(t and "deadline" in t.lower() for t in texts):
            return True
    return False


@program_rule(
    HANDLER_RULE_ID,
    "an async route handler that awaits work must thread the request "
    "deadline into it, or a slow backend outlives the client budget",
)
def check_handler_deadlines(context, config) -> Iterator[Finding]:
    handlers = _route_handler_names(context, config)
    if not handlers:
        return
    for rel in sorted(context.modules):
        module = context.modules[rel]
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.AsyncFunctionDef)
                or node.name not in handlers
            ):
                continue
            has_await = any(
                isinstance(inner, ast.Await) for inner in ast.walk(node)
            )
            if not has_await:
                continue  # purely in-memory handler: nothing to bound
            if _mentions_deadline(node):
                continue
            yield Finding(
                path=rel,
                line=node.lineno,
                col=node.col_offset,
                rule=HANDLER_RULE_ID,
                message=(
                    f"async route handler {node.name!r} awaits work but "
                    "never references a deadline; thread the request "
                    "budget into every await"
                ),
            )
