"""Pass 3: error-envelope flow — every kind used is registered, every
kind registered is used.

The service's error contract is one dict, ``ERROR_STATUS`` in
``repro.service.errors``: clients branch on its keys, the loadgen
audits them, ``docs/api.md`` tables them.  ``ApiError`` validates its
kind at *raise* time, but that only catches the typo when the branch
executes — a rarely-taken error path can ship a bogus kind and sit
there until production finds it.  This pass closes the loop
statically, in both directions:

* every error-kind literal used under the service tree (``ApiError(
  "kind", ...)``, ``error_envelope("kind", ...)``, ``kind = "..."``
  assignments, tuple assigns pairing a ``kind`` target with a string)
  must be a registered key;
* every registered key must be used somewhere — a dead kind is a
  contract entry clients are told to handle that the server can never
  send.

The registry is located by parsing the configured errors module's AST
for the ``ERROR_STATUS = {...}`` literal; if that assignment
disappears or stops being a literal dict, the pass reports the rot
instead of silently passing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import program_rule
from repro.analysis.source import SourceModule, dotted_name

ENVELOPE_RULE_ID = "error-envelope"

_REGISTRY_NAME = "ERROR_STATUS"
_CONSTRUCTORS = frozenset({"ApiError", "error_envelope"})
_KIND_TARGET = "kind"


def _registry_kinds(
    module: SourceModule,
) -> Optional[Dict[str, int]]:
    """Parse ``ERROR_STATUS = {...}`` out of the errors module.

    Returns kind -> declaration line, or None if the literal is gone.
    """
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == _REGISTRY_NAME
            for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        kinds: Dict[str, int] = {}
        for key in value.keys:
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return None
            kinds[key.value] = key.lineno
        return kinds
    return None


def _kind_uses(module: SourceModule) -> Iterator[Tuple[str, int, int, str]]:
    """Yield ``(kind, line, col, how)`` for every kind literal used."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            if (
                parts is not None
                and parts[-1] in _CONSTRUCTORS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                arg = node.args[0]
                yield arg.value, arg.lineno, arg.col_offset, parts[-1]
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == _KIND_TARGET
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    yield (
                        node.value.value,
                        node.value.lineno,
                        node.value.col_offset,
                        "kind assignment",
                    )
                elif isinstance(target, ast.Tuple) and isinstance(
                    node.value, ast.Tuple
                ):
                    for name, value in zip(target.elts, node.value.elts):
                        if (
                            isinstance(name, ast.Name)
                            and name.id == _KIND_TARGET
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            yield (
                                value.value,
                                value.lineno,
                                value.col_offset,
                                "kind assignment",
                            )


def _under_roots(rel: str, roots: Tuple[str, ...]) -> bool:
    return any(rel == root or rel.startswith(root + "/") for root in roots)


@program_rule(
    ENVELOPE_RULE_ID,
    "every error kind constructed under the service tree must be "
    "registered in ERROR_STATUS, and every registered kind must be "
    "reachable from some construction site",
)
def check_envelopes(context, config) -> Iterator[Finding]:
    registry_module = context.modules.get(config.envelope_registry)
    if registry_module is None:
        return  # service tree not under analysis (fixture/partial run)
    kinds = _registry_kinds(registry_module)
    if kinds is None:
        yield Finding(
            path=config.envelope_registry,
            line=1,
            col=0,
            rule=ENVELOPE_RULE_ID,
            message=(
                f"{_REGISTRY_NAME} literal dict not found in "
                f"{config.envelope_registry}; the envelope flow check "
                "cannot see the registry — restore the literal or move "
                "the check"
            ),
        )
        return
    used: set = set()
    for rel in sorted(context.modules):
        if not _under_roots(rel, config.envelope_roots):
            continue
        module = context.modules[rel]
        for kind, line, col, how in _kind_uses(module):
            used.add(kind)
            if kind not in kinds:
                yield Finding(
                    path=rel,
                    line=line,
                    col=col,
                    rule=ENVELOPE_RULE_ID,
                    message=(
                        f"error kind {kind!r} ({how}) is not registered "
                        f"in {_REGISTRY_NAME}; clients cannot map it to a "
                        "status"
                    ),
                )
    for kind in sorted(kinds):
        if kind not in used:
            yield Finding(
                path=config.envelope_registry,
                line=kinds[kind],
                col=0,
                rule=ENVELOPE_RULE_ID,
                message=(
                    f"registered error kind {kind!r} is never constructed "
                    "under the service tree; dead contract entry — delete "
                    "it or wire it up"
                ),
            )
