"""Pass 1: import-graph cycles and the layer contract.

``import-cycle`` proves the module graph is a DAG at import time.
Cycles are computed over import-time edges only (lazy function-scope
imports cannot deadlock module init; typing-only imports never run),
via an iterative Tarjan SCC made deterministic by sorting nodes and
adjacency — the same graph yields the same findings byte-for-byte.

``layer-contract`` enforces ``tools/layers.toml``: every module must
match a contract prefix, every prefix must own at least one module
(dead contract entries rot silently otherwise), and every runtime
import — including lazy ones, which are real coupling even if they
dodge init — must point downward or sideways in the ranked order,
never into a side harness from production code, and never into an
entry module from anywhere but entry.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.program.contract import (
    ENTRY_KIND,
    LAYER_KIND,
    SIDE_KIND,
)
from repro.analysis.registry import program_rule

CYCLE_RULE_ID = "import-cycle"
LAYER_RULE_ID = "layer-contract"


def _strongly_connected(adjacency: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCC, iterative, deterministic: nodes and neighbors are
    visited in sorted order, so component discovery order is fixed."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, neighbors = work[-1]
            advanced = False
            for nxt in neighbors:
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack[nxt] = True
                    work.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
                if on_stack.get(nxt):
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index_of:
            visit(node)
    return components


def _cycle_path(component: List[str], adjacency: Dict[str, List[str]]) -> str:
    """A concrete witness walk through the component, for the message."""
    members = set(component)
    start = component[0]  # lexicographically smallest (pre-sorted)
    path = [start]
    seen = {start}
    node = start
    while True:
        nxt = next(
            (n for n in adjacency.get(node, ()) if n in members), None
        )
        if nxt is None or nxt == start or nxt in seen:
            path.append(nxt if nxt is not None else start)
            break
        path.append(nxt)
        seen.add(nxt)
        node = nxt
    return " -> ".join(path)


@program_rule(
    CYCLE_RULE_ID,
    "the repro.* import graph must be acyclic at import time: no "
    "module cycle over top-level, non-typing imports",
)
def check_cycles(context, config) -> Iterator[Finding]:
    graph = context.graph
    adjacency = graph.successors(graph.import_time_edges())
    for component in _strongly_connected(adjacency):
        is_cycle = len(component) > 1 or component[0] in adjacency.get(
            component[0], ()
        )
        if not is_cycle:
            continue
        anchor = component[0]
        anchor_rel = graph.modules[anchor]
        members = set(component)
        edge = min(
            (
                e
                for e in graph.import_time_edges()
                if e.src == anchor and e.dst in members
            ),
            key=lambda e: (e.line, e.col, e.dst),
        )
        yield Finding(
            path=anchor_rel,
            line=edge.line,
            col=edge.col,
            rule=CYCLE_RULE_ID,
            message=(
                f"import cycle of {len(component)} module(s): "
                f"{_cycle_path(component, adjacency)}"
            ),
        )


@program_rule(
    LAYER_RULE_ID,
    "every module must match a layer in tools/layers.toml, every layer "
    "prefix must be live, and runtime imports may only point downward "
    "(side harnesses and entry modules are import-protected)",
)
def check_layers(context, config) -> Iterator[Finding]:
    contract = context.contract
    if contract is None:  # layering deselected or contract not loaded
        return
    graph = context.graph
    module_names = sorted(graph.modules)
    # Every module must belong to some declared layer.
    assignments = {}
    for name in module_names:
        layer = contract.assignment(name)
        if layer is None:
            yield Finding(
                path=graph.modules[name],
                line=1,
                col=0,
                rule=LAYER_RULE_ID,
                message=(
                    f"module {name} matches no layer prefix in "
                    f"{contract.path}; assign it a layer"
                ),
            )
        else:
            assignments[name] = layer
    # Every contract prefix must own at least one real module.
    live = contract.matched_prefixes(module_names)
    for layer in contract.layers:
        for prefix in layer.modules:
            if prefix not in live:
                yield Finding(
                    path=contract.path,
                    line=1,
                    col=0,
                    rule=LAYER_RULE_ID,
                    message=(
                        f"layer {layer.name!r} prefix {prefix} matches no "
                        "module; delete it or fix the spelling"
                    ),
                )
    # Edge direction: runtime edges (lazy included, typing-only exempt).
    for edge in graph.runtime_edges():
        src_layer = assignments.get(edge.src)
        dst_layer = assignments.get(edge.dst)
        if src_layer is None or dst_layer is None:
            continue  # already reported as unmatched
        if src_layer.kind in (SIDE_KIND, ENTRY_KIND):
            continue  # harnesses and entrypoints may import anything
        if dst_layer.kind == SIDE_KIND:
            yield Finding(
                path=edge.path,
                line=edge.line,
                col=edge.col,
                rule=LAYER_RULE_ID,
                message=(
                    f"{edge.src} (layer {src_layer.name!r}) imports harness "
                    f"{edge.dst} (side layer {dst_layer.name!r}); production "
                    "code must not depend on a harness"
                ),
            )
        elif dst_layer.kind == ENTRY_KIND:
            yield Finding(
                path=edge.path,
                line=edge.line,
                col=edge.col,
                rule=LAYER_RULE_ID,
                message=(
                    f"{edge.src} (layer {src_layer.name!r}) imports entry "
                    f"module {edge.dst}; entrypoints are not importable — "
                    "if this is a new package, assign it a layer in "
                    f"{contract.path}"
                ),
            )
        elif dst_layer.rank > src_layer.rank:
            yield Finding(
                path=edge.path,
                line=edge.line,
                col=edge.col,
                rule=LAYER_RULE_ID,
                message=(
                    f"{edge.src} (layer {src_layer.name!r}, rank "
                    f"{src_layer.rank}) imports {edge.dst} (layer "
                    f"{dst_layer.name!r}, rank {dst_layer.rank}); imports "
                    "must point downward — declare the edge in "
                    f"{contract.path} by reordering layers or move the code"
                ),
            )
