"""The committed layer contract: ``tools/layers.toml``.

The contract is an ordered list of layers, each owning a set of
dotted module prefixes.  A module belongs to the layer whose prefix
matches it most specifically (longest dotted prefix wins), so
``repro.core.errors`` can sit in a lower layer than the rest of
``repro.core``.  Three kinds of layer:

* ``[[layer]]`` — ranked.  An import is allowed only downward or
  sideways: the destination's rank must not exceed the source's.
* ``[[side]]`` — unranked harnesses (chaos, perf, analysis, …).  They
  may import anything, but only other side layers or entry modules
  may import *them* — production code must not depend on a harness.
* ``[[entry]]`` — top-level entrypoints (``repro``, ``repro.__main__``).
  They may import anything; nothing outside entry may import them.
  Because the entry prefix is the package root, it also catches any
  future package nobody assigned a layer: the moment real code imports
  it, the gate trips and forces a contract decision.

Parsing uses :mod:`tomllib` where available (3.11+) and falls back to
a small hand-rolled parser covering exactly the subset this file
uses, cross-checked against tomllib by the test suite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - version-dependent
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py3.10
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "ContractError",
    "Layer",
    "LayerContract",
    "load_contract",
    "parse_contract",
]

CONTRACT_VERSION = 1

LAYER_KIND = "layer"
SIDE_KIND = "side"
ENTRY_KIND = "entry"

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")
_MODULE_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")


class ContractError(Exception):
    """The contract file is missing, unparseable, or inconsistent.

    Distinct from a lint finding on purpose: a broken contract means
    the gate cannot run at all, and the CLI maps it to exit code 2.
    """


@dataclass(frozen=True)
class Layer:
    """One named layer owning a set of module prefixes."""

    name: str
    kind: str  # LAYER_KIND | SIDE_KIND | ENTRY_KIND
    rank: int  # position among ranked layers; -1 for side/entry
    modules: Tuple[str, ...]


@dataclass(frozen=True)
class LayerContract:
    """The parsed, validated contract."""

    path: str  # rel path of the contract file (finding anchor)
    layers: Tuple[Layer, ...]  # declaration order; ranked first
    _by_prefix: Dict[str, Layer] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        for layer in self.layers:
            for prefix in layer.modules:
                self._by_prefix[prefix] = layer

    def ranked(self) -> List[Layer]:
        return [l for l in self.layers if l.kind == LAYER_KIND]

    def assignment(self, module: str) -> Optional[Layer]:
        """The layer owning ``module`` via longest-dotted-prefix match."""
        probe = module
        while True:
            layer = self._by_prefix.get(probe)
            if layer is not None:
                return layer
            if "." not in probe:
                return None
            probe = probe.rsplit(".", 1)[0]

    def matched_prefixes(self, modules: Sequence[str]) -> set:
        """Which contract prefixes actually own at least one module."""
        hit = set()
        for module in modules:
            probe = module
            while True:
                if probe in self._by_prefix:
                    hit.add(probe)
                    break
                if "." not in probe:
                    break
                probe = probe.rsplit(".", 1)[0]
        return hit


def load_contract(path: str, rel: str) -> LayerContract:
    """Read and validate the contract at filesystem ``path``.

    ``rel`` is the repo-relative name used to anchor findings.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ContractError(f"layer contract {rel}: {exc}") from exc
    return parse_contract(text, rel)


def parse_contract(text: str, rel: str) -> LayerContract:
    """Parse + validate contract text (exposed for tests)."""
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ContractError(f"layer contract {rel}: {exc}") from exc
    else:
        data = _parse_mini_toml(text, rel)
    return _validate(data, rel)


def _validate(data: dict, rel: str) -> LayerContract:
    version = data.get("version")
    if version != CONTRACT_VERSION:
        raise ContractError(
            f"layer contract {rel}: version must be {CONTRACT_VERSION}, "
            f"got {version!r}"
        )
    layers: List[Layer] = []
    seen_names: set = set()
    seen_prefixes: set = set()
    rank = 0
    for kind, key in (
        (LAYER_KIND, "layer"),
        (SIDE_KIND, "side"),
        (ENTRY_KIND, "entry"),
    ):
        entries = data.get(key, [])
        if not isinstance(entries, list):
            raise ContractError(
                f"layer contract {rel}: [[{key}]] must be a table array"
            )
        for entry in entries:
            if not isinstance(entry, dict):
                raise ContractError(
                    f"layer contract {rel}: [[{key}]] entries must be tables"
                )
            name = entry.get("name")
            modules = entry.get("modules")
            if not isinstance(name, str) or not _NAME_RE.match(name):
                raise ContractError(
                    f"layer contract {rel}: bad layer name {name!r}"
                )
            if name in seen_names:
                raise ContractError(
                    f"layer contract {rel}: duplicate layer name {name!r}"
                )
            seen_names.add(name)
            if (
                not isinstance(modules, list)
                or not modules
                or not all(isinstance(m, str) for m in modules)
            ):
                raise ContractError(
                    f"layer contract {rel}: layer {name!r} needs a non-empty "
                    "string list of modules"
                )
            for module in modules:
                if not _MODULE_RE.match(module):
                    raise ContractError(
                        f"layer contract {rel}: bad module prefix {module!r} "
                        f"in layer {name!r}"
                    )
                if module in seen_prefixes:
                    raise ContractError(
                        f"layer contract {rel}: module prefix {module!r} "
                        "assigned twice"
                    )
                seen_prefixes.add(module)
            layers.append(
                Layer(
                    name=name,
                    kind=kind,
                    rank=rank if kind == LAYER_KIND else -1,
                    modules=tuple(modules),
                )
            )
            if kind == LAYER_KIND:
                rank += 1
    if not any(l.kind == LAYER_KIND for l in layers):
        raise ContractError(
            f"layer contract {rel}: at least one [[layer]] required"
        )
    return LayerContract(path=rel, layers=tuple(layers))


# -- mini-TOML fallback (py3.10, no tomllib) -----------------------------------------
#
# Covers exactly the grammar layers.toml uses: `key = value` pairs,
# [[table]] array headers, strings, integers, and possibly-multiline
# string arrays.  Anything else is a hard ContractError — better to
# fail loudly than to misread a contract.

_HEADER_RE = re.compile(r"^\[\[([A-Za-z0-9_-]+)\]\]$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_-]+)\s*=\s*(.*)$")
_STRING_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')
_INT_RE = re.compile(r"^-?\d+$")


def _strip_comment(line: str) -> str:
    out: List[str] = []
    in_string = False
    escaped = False
    for ch in line:
        if escaped:
            out.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_string:
            out.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_scalar(token: str, rel: str):
    token = token.strip()
    match = _STRING_RE.match(token)
    if match:
        return match.group(1).replace('\\"', '"').replace("\\\\", "\\")
    if _INT_RE.match(token):
        return int(token)
    raise ContractError(f"layer contract {rel}: unsupported value {token!r}")


def _parse_array(body: str, rel: str) -> list:
    body = body.strip()
    if not body:
        return []
    items: List[str] = []
    depth_guard = 0
    current: List[str] = []
    in_string = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_string:
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_string = not in_string
            current.append(ch)
            continue
        if ch == "[" and not in_string:
            depth_guard += 1
            raise ContractError(
                f"layer contract {rel}: nested arrays unsupported"
            )
        if ch == "," and not in_string:
            items.append("".join(current))
            current = []
            continue
        current.append(ch)
    if "".join(current).strip():
        items.append("".join(current))
    return [_parse_scalar(item, rel) for item in items if item.strip()]


def _parse_mini_toml(text: str, rel: str) -> dict:
    root: dict = {}
    target: dict = root
    lines = text.split("\n")
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        header = _HEADER_RE.match(line)
        if header:
            table: dict = {}
            root.setdefault(header.group(1), []).append(table)
            target = table
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            raise ContractError(
                f"layer contract {rel}: cannot parse line {index}: {line!r}"
            )
        key, value = pair.group(1), pair.group(2).strip()
        if value.startswith("["):
            buffer = value[1:]
            while "]" not in buffer:
                if index >= len(lines):
                    raise ContractError(
                        f"layer contract {rel}: unterminated array for "
                        f"{key!r}"
                    )
                buffer += " " + _strip_comment(lines[index])
                index += 1
            body, _, trailer = buffer.rpartition("]")
            if trailer.strip():
                raise ContractError(
                    f"layer contract {rel}: trailing content after array "
                    f"for {key!r}"
                )
            target[key] = _parse_array(body, rel)
        else:
            target[key] = _parse_scalar(value, rel)
    return root
