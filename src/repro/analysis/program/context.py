"""The shared input every whole-program pass consumes.

Built once per lint run (after per-file parsing, before program rules
fire) so the three passes never re-read or re-parse anything — same
ASTs the per-file rules saw, one import graph, one contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.analysis.program.contract import LayerContract
from repro.analysis.program.graph import ImportGraph, module_name_for_rel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.source import SourceModule

__all__ = ["ProgramContext", "build_context"]


@dataclass
class ProgramContext:
    """Everything a program rule may look at, and nothing else."""

    root: str  # analyzed tree root (absolute path)
    modules: Dict[str, "SourceModule"]  # rel path -> parsed module
    graph: ImportGraph
    contract: Optional[LayerContract]  # None when layering not selected
    names: Dict[str, str]  # dotted module name -> rel path

    def rel_for(self, module_name: str) -> Optional[str]:
        return self.names.get(module_name)


def build_context(
    root: str,
    modules: Dict[str, "SourceModule"],
    graph: ImportGraph,
    contract: Optional[LayerContract],
) -> ProgramContext:
    names = {module_name_for_rel(rel): rel for rel in sorted(modules)}
    return ProgramContext(
        root=root,
        modules=modules,
        graph=graph,
        contract=contract,
        names=names,
    )
