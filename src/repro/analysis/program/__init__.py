"""Whole-program analysis: passes that see the entire tree at once.

Importing this package registers every program rule.  Import order is
alphabetical by module and fixed here — like
:mod:`repro.analysis.rules`, registration order is report order, so
the list below is load-bearing for byte-determinism.
"""

from __future__ import annotations

from repro.analysis.program import async_safety  # noqa: F401  - registers rules
from repro.analysis.program import envelopes  # noqa: F401  - registers rules
from repro.analysis.program import layering  # noqa: F401  - registers rules
from repro.analysis.program.context import ProgramContext, build_context
from repro.analysis.program.contract import (
    ContractError,
    Layer,
    LayerContract,
    load_contract,
    parse_contract,
)
from repro.analysis.program.graph import (
    ImportEdge,
    ImportGraph,
    build_graph,
    load_graph,
    module_name_for_rel,
)

__all__ = [
    "ProgramContext",
    "build_context",
    "ContractError",
    "Layer",
    "LayerContract",
    "load_contract",
    "parse_contract",
    "ImportEdge",
    "ImportGraph",
    "build_graph",
    "load_graph",
    "module_name_for_rel",
]
