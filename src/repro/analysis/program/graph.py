"""The whole-program import graph: modules, edges, and a cache artifact.

One :class:`ImportGraph` per analyzed tree.  Construction is a pure
function of the parsed modules, independent of dict iteration order
(``tests/analysis/test_program_graph.py`` holds this with hypothesis),
and the serialized form is canonical JSON with per-file content
hashes — so CI can build the graph once, carry it between steps, and
revalidate it in O(files) instead of re-walking every AST.

Edge semantics, chosen to match how the repo actually imports:

* ``from repro.crypto import rsa`` resolves to the *submodule*
  ``repro.crypto.rsa``, not the package ``__init__`` — re-export
  convenience must not read as an architectural cycle.
* An import inside a function body is ``lazy``: it cannot participate
  in an import-time cycle (Python resolves it at call time), but it is
  still a real dependency the layer contract sees.
* An import under ``if TYPE_CHECKING:`` is ``typing_only``: no runtime
  coupling at all, exempt from both the cycle and the layering pass.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.source import SourceModule, dotted_name

__all__ = [
    "ImportEdge",
    "ImportGraph",
    "module_name_for_rel",
    "build_graph",
    "load_graph",
]

_ARTIFACT_VERSION = 1


def module_name_for_rel(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    A leading ``src/`` segment is the conventional layout prefix and
    is stripped; ``pkg/__init__.py`` names the package itself.
    """
    parts = list(rel.split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One import site: ``src`` imports ``dst`` at a source location."""

    src: str  # dotted module name
    dst: str  # dotted module name
    path: str  # rel path of the importing file (finding anchor)
    line: int
    col: int
    lazy: bool  # inside a function body: resolved at call time
    typing_only: bool  # under `if TYPE_CHECKING:`: no runtime coupling

    def sort_key(self) -> Tuple[str, str, int, int]:
        return (self.src, self.dst, self.line, self.col)

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "lazy": self.lazy,
            "typing_only": self.typing_only,
        }


@dataclass
class ImportGraph:
    """Modules + deduplicated, totally ordered import edges."""

    modules: Dict[str, str] = field(default_factory=dict)  # name -> rel path
    edges: List[ImportEdge] = field(default_factory=list)  # sorted
    hashes: Dict[str, str] = field(default_factory=dict)  # rel -> sha256

    def runtime_edges(self) -> List[ImportEdge]:
        """Edges with runtime coupling (everything but typing-only)."""
        return [e for e in self.edges if not e.typing_only]

    def import_time_edges(self) -> List[ImportEdge]:
        """Edges resolved at import time — the cycle-relevant subset."""
        return [e for e in self.edges if not e.typing_only and not e.lazy]

    def successors(
        self, edges: Iterable[ImportEdge]
    ) -> Dict[str, List[str]]:
        """Deterministic adjacency (sorted, deduplicated) over ``edges``."""
        adjacency: Dict[str, set] = {name: set() for name in self.modules}
        for edge in edges:
            if edge.src in adjacency and edge.dst in self.modules:
                adjacency[edge.src].add(edge.dst)
        return {name: sorted(dsts) for name, dsts in adjacency.items()}

    # -- artifact ----------------------------------------------------------------

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, sorted rows, trailing newline."""
        payload = {
            "version": _ARTIFACT_VERSION,
            "modules": {
                name: {"path": rel, "sha256": self.hashes[rel]}
                for name, rel in sorted(self.modules.items())
            },
            "edges": [
                edge.to_dict()
                for edge in sorted(self.edges, key=ImportEdge.sort_key)
            ],
        }
        return (
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def matches(self, modules: Mapping[str, SourceModule]) -> bool:
        """Does this graph describe exactly these module contents?"""
        if set(self.modules.values()) != set(modules):
            return False
        return all(
            self.hashes.get(rel) == _sha256(module.text)
            for rel, module in modules.items()
        )


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _is_typing_guard(test: ast.AST) -> bool:
    parts = dotted_name(test)
    return parts is not None and parts[-1] == "TYPE_CHECKING"


def _edge_flags(module: SourceModule, node: ast.AST) -> Tuple[bool, bool]:
    lazy = False
    typing_only = False
    child: ast.AST = node
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lazy = True
        if (
            isinstance(ancestor, ast.If)
            and child in ancestor.body
            and _is_typing_guard(ancestor.test)
        ):
            typing_only = True
        child = ancestor
    return lazy, typing_only


def _resolve_from_target(
    base: str, alias: str, known: Mapping[str, str]
) -> Optional[str]:
    """``from base import alias`` → the submodule if one exists, else
    the package/module ``base`` itself."""
    candidate = f"{base}.{alias}"
    if candidate in known:
        return candidate
    if base in known:
        return base
    return None


def _relative_base(name: str, is_package: bool, node: ast.ImportFrom) -> str:
    parts = name.split(".") if name else []
    anchor = parts if is_package else parts[:-1]
    hops = node.level - 1
    if hops:
        anchor = anchor[: len(anchor) - hops] if hops <= len(anchor) else []
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


def build_graph(modules: Mapping[str, SourceModule]) -> ImportGraph:
    """Build the graph from parsed modules (keyed by rel path).

    Deterministic by construction: modules are visited in sorted rel
    order, edges are deduplicated and totally ordered, and nothing
    depends on the mapping's iteration order.
    """
    names: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for rel in sorted(modules):
        names[module_name_for_rel(rel)] = rel
        hashes[rel] = _sha256(modules[rel].text)
    raw: set = set()
    for rel in sorted(modules):
        module = modules[rel]
        src = module_name_for_rel(rel)
        is_package = rel.endswith("__init__.py")
        for node in ast.walk(module.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets.extend(
                    alias.name for alias in node.names if alias.name in names
                )
            elif isinstance(node, ast.ImportFrom):
                base = (
                    _relative_base(src, is_package, node)
                    if node.level
                    else (node.module or "")
                )
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        if base in names:
                            targets.append(base)
                        continue
                    resolved = _resolve_from_target(base, alias.name, names)
                    if resolved is not None:
                        targets.append(resolved)
            else:
                continue
            if not targets:
                continue
            lazy, typing_only = _edge_flags(module, node)
            for dst in targets:
                if dst == src:
                    continue
                raw.add(
                    ImportEdge(
                        src=src,
                        dst=dst,
                        path=rel,
                        line=node.lineno,
                        col=node.col_offset,
                        lazy=lazy,
                        typing_only=typing_only,
                    )
                )
    return ImportGraph(
        modules=names,
        edges=sorted(raw, key=ImportEdge.sort_key),
        hashes=hashes,
    )


def load_graph(text: str) -> ImportGraph:
    """Parse a serialized graph artifact; raises ValueError on rot."""
    data = json.loads(text)
    if data.get("version") != _ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported import-graph artifact version {data.get('version')!r}"
        )
    modules: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for name, entry in data.get("modules", {}).items():
        modules[name] = entry["path"]
        hashes[entry["path"]] = entry["sha256"]
    edges = [
        ImportEdge(
            src=row["src"],
            dst=row["dst"],
            path=row["path"],
            line=int(row["line"]),
            col=int(row["col"]),
            lazy=bool(row["lazy"]),
            typing_only=bool(row["typing_only"]),
        )
        for row in data.get("edges", [])
    ]
    return ImportGraph(
        modules=modules,
        edges=sorted(edges, key=ImportEdge.sort_key),
        hashes=hashes,
    )
