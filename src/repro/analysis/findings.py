"""The unit of lint output: one finding at one source location.

Findings are plain values with a total order, so reports are
byte-deterministic (same input files, same bytes out — the same
contract the span exporter keeps, enforced by ``tests/analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repository-relative with forward slashes, so reports
    are identical regardless of the machine or invocation directory.
    ``line``/``col`` are 1-based line and 0-based column, matching
    ``ast`` node coordinates.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        """JSON-safe projection (the JSONL report row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: rule: message`` — the grep-able form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
