"""Per-line lint suppressions: ``repro-lint: allow[rule-id] reason``.

The directive lives in a ``#`` comment (the examples in this module
omit the hash so the scanner does not anchor to its own docs).  A
suppression silences one rule on one line.  It may sit on the
flagged line itself or on its own line directly above (for lines that
are already at the formatter's width budget).  The reason is
mandatory: a suppression is a claim that the finding is a false
positive, and the claim has to say why — a reason-less or malformed
suppression is itself reported (``invalid-suppression``) instead of
being honored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Suppression", "parse_suppressions", "SUPPRESSION_RE"]

#: ``repro-lint: allow[rule-id] reason`` in a line's trailing comment.
SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rule>[^\]]*)\]\s*(?P<reason>.*)$"
)

#: Anything that *looks* like a suppression attempt, including typos
#: the strict regex would silently skip (``allow(rule)``, ``Allow[...]``).
ATTEMPT_RE = re.compile(r"#\s*repro-lint\b", re.IGNORECASE)

_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` directive."""

    line: int  # 1-based line the comment sits on
    rule: str
    reason: str

    def covers(self, finding_line: int) -> bool:
        """Same line, or the comment line directly above the finding."""
        return finding_line in (self.line, self.line + 1)


def parse_suppressions(
    lines: Sequence[str],
) -> Tuple[Dict[int, Suppression], List[Tuple[int, str]]]:
    """Scan raw source lines for suppression directives.

    Returns ``(by_line, problems)`` where ``by_line`` maps the comment's
    line number to its :class:`Suppression` and ``problems`` lists
    ``(line, message)`` pairs for malformed directives (bad rule id,
    missing reason, unparseable syntax).  String literals that merely
    contain the marker text are the caller's (AST rules') concern only
    in that they never produce findings; a suppression directive inside
    a string is harmless because nothing anchors to it.
    """
    by_line: Dict[int, Suppression] = {}
    problems: List[Tuple[int, str]] = []
    for number, raw in enumerate(lines, start=1):
        match = SUPPRESSION_RE.search(raw)
        if match is None:
            if ATTEMPT_RE.search(raw) and "allow" in raw:
                problems.append(
                    (
                        number,
                        "unparseable suppression; the form is "
                        "'repro-lint: allow[rule-id] reason' after a '#'",
                    )
                )
            continue
        rule = match.group("rule").strip()
        reason = match.group("reason").strip()
        if not _RULE_ID_RE.match(rule):
            problems.append(
                (number, f"suppression names an invalid rule id {rule!r}")
            )
            continue
        if not reason:
            problems.append(
                (
                    number,
                    f"suppression for {rule!r} has no reason; say why the "
                    "finding is a false positive",
                )
            )
            continue
        by_line[number] = Suppression(line=number, rule=rule, reason=reason)
    return by_line, problems
