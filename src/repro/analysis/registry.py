"""The pluggable rule registry.

A rule is a pure function ``check(module, config) -> iterable of
Finding`` registered under a stable kebab-case id.  Registration order
is import order and import order is fixed
(:mod:`repro.analysis.rules` imports each rule module explicitly), so
the registry — and therefore report ordering — is deterministic.

Two ids are *engine-emitted*: ``parse-error`` (a file that does not
parse) and ``invalid-suppression`` (a malformed ``allow`` directive).
They are registered here like any other rule so the docs drift check
(`tools/check_docs.py`) sees one authoritative id list, but their
check functions are no-ops — the engine raises them itself, and
neither can be suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import LintConfig
    from repro.analysis.program.context import ProgramContext
    from repro.analysis.source import SourceModule

__all__ = [
    "Rule",
    "ProgramRule",
    "rule",
    "program_rule",
    "all_rules",
    "all_program_rules",
    "get_rule",
    "rule_ids",
    "program_rule_ids",
    "known_rule_ids",
    "split_select",
    "PARSE_ERROR",
    "INVALID_SUPPRESSION",
    "UNSUPPRESSABLE",
]

PARSE_ERROR = "parse-error"
INVALID_SUPPRESSION = "invalid-suppression"

#: Findings about the lint mechanism itself cannot be allowed away.
UNSUPPRESSABLE = frozenset({PARSE_ERROR, INVALID_SUPPRESSION})

CheckFn = Callable[["SourceModule", "LintConfig"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, one-line rationale, checker."""

    id: str
    summary: str
    check: CheckFn


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``rule_id`` (decorator)."""

    def _register(check: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"rule {rule_id!r} registered twice")
        _REGISTRY[rule_id] = Rule(id=rule_id, summary=summary, check=check)
        return check

    return _register


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Registered rules in registration order, optionally filtered."""
    import repro.analysis.rules  # noqa: F401  - registration side effect

    rules = list(_REGISTRY.values())
    if select is None:
        return rules
    wanted = set(select)
    unknown = wanted - set(_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
    return [r for r in rules if r.id in wanted]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401  - registration side effect

    return _REGISTRY[rule_id]


def rule_ids() -> List[str]:
    return [r.id for r in all_rules()]


# -- whole-program rules -------------------------------------------------------------
#
# A program rule sees the *entire* analyzed tree at once — the parsed
# modules, the import graph, and the layer contract — instead of one
# module at a time.  Same shape as per-file rules otherwise: pure
# check functions registered under stable kebab-case ids, registration
# order fixed by :mod:`repro.analysis.program`'s import order.

ProgramCheckFn = Callable[["ProgramContext", "LintConfig"], Iterable[Finding]]


@dataclass(frozen=True)
class ProgramRule:
    """One registered whole-program rule."""

    id: str
    summary: str
    check: ProgramCheckFn


_PROGRAM_REGISTRY: Dict[str, ProgramRule] = {}


def program_rule(rule_id: str, summary: str) -> Callable[[ProgramCheckFn], ProgramCheckFn]:
    """Register a whole-program ``check`` under ``rule_id`` (decorator)."""

    def _register(check: ProgramCheckFn) -> ProgramCheckFn:
        if rule_id in _PROGRAM_REGISTRY or rule_id in _REGISTRY:
            raise ValueError(f"rule {rule_id!r} registered twice")
        _PROGRAM_REGISTRY[rule_id] = ProgramRule(
            id=rule_id, summary=summary, check=check
        )
        return check

    return _register


def all_program_rules(select: Optional[Iterable[str]] = None) -> List[ProgramRule]:
    """Registered program rules in registration order, optionally filtered."""
    import repro.analysis.program  # noqa: F401  - registration side effect

    rules = list(_PROGRAM_REGISTRY.values())
    if select is None:
        return rules
    wanted = set(select)
    unknown = wanted - set(_PROGRAM_REGISTRY)
    if unknown:
        raise KeyError(f"unknown program rule id(s): {sorted(unknown)}")
    return [r for r in rules if r.id in wanted]


def program_rule_ids() -> List[str]:
    return [r.id for r in all_program_rules()]


def known_rule_ids() -> frozenset:
    """Every registered id, per-file and program — the suppression
    vocabulary and the ``--select`` validation set."""
    return frozenset(rule_ids()) | frozenset(program_rule_ids())


def split_select(
    select: Optional[Iterable[str]],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Partition ``--select`` ids into (per-file, program) selections.

    Returns ``(None, None)`` for no selection (run everything).  A
    selection naming only one kind returns an empty list for the other
    kind, so the engine runs nothing from that registry rather than
    falling back to all of it.  Unknown ids raise ``KeyError``.
    """
    if select is None:
        return None, None
    wanted = list(select)
    file_ids = set(rule_ids())
    prog_ids = set(program_rule_ids())
    unknown = [s for s in wanted if s not in file_ids and s not in prog_ids]
    if unknown:
        raise KeyError(f"unknown rule id(s): {sorted(set(unknown))}")
    return (
        [s for s in wanted if s in file_ids],
        [s for s in wanted if s in prog_ids],
    )
