"""The pluggable rule registry.

A rule is a pure function ``check(module, config) -> iterable of
Finding`` registered under a stable kebab-case id.  Registration order
is import order and import order is fixed
(:mod:`repro.analysis.rules` imports each rule module explicitly), so
the registry — and therefore report ordering — is deterministic.

Two ids are *engine-emitted*: ``parse-error`` (a file that does not
parse) and ``invalid-suppression`` (a malformed ``allow`` directive).
They are registered here like any other rule so the docs drift check
(`tools/check_docs.py`) sees one authoritative id list, but their
check functions are no-ops — the engine raises them itself, and
neither can be suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import LintConfig
    from repro.analysis.source import SourceModule

__all__ = [
    "Rule",
    "rule",
    "all_rules",
    "get_rule",
    "rule_ids",
    "PARSE_ERROR",
    "INVALID_SUPPRESSION",
    "UNSUPPRESSABLE",
]

PARSE_ERROR = "parse-error"
INVALID_SUPPRESSION = "invalid-suppression"

#: Findings about the lint mechanism itself cannot be allowed away.
UNSUPPRESSABLE = frozenset({PARSE_ERROR, INVALID_SUPPRESSION})

CheckFn = Callable[["SourceModule", "LintConfig"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, one-line rationale, checker."""

    id: str
    summary: str
    check: CheckFn


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``rule_id`` (decorator)."""

    def _register(check: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"rule {rule_id!r} registered twice")
        _REGISTRY[rule_id] = Rule(id=rule_id, summary=summary, check=check)
        return check

    return _register


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Registered rules in registration order, optionally filtered."""
    import repro.analysis.rules  # noqa: F401  - registration side effect

    rules = list(_REGISTRY.values())
    if select is None:
        return rules
    wanted = set(select)
    unknown = wanted - set(_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
    return [r for r in rules if r.id in wanted]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401  - registration side effect

    return _REGISTRY[rule_id]


def rule_ids() -> List[str]:
    return [r.id for r in all_rules()]
