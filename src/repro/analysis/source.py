"""Parsed source files and the AST plumbing every rule shares.

One :class:`SourceModule` per file: raw text, split lines, the parsed
tree, and a child->parent map (the :mod:`ast` module does not keep
parent links, and most rules need to ask "what consumes this node?").

Because rules work on the AST, string literals and docstrings are
invisible to them by construction — a docstring that *mentions*
``time.monotonic`` can never trip the wall-clock rule (regression test
in ``tests/analysis``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["SourceModule", "ImportTable", "parse_module", "dotted_name"]


@dataclass
class ImportTable:
    """What the module-level imports bind each name to.

    ``modules`` maps a local alias to a dotted module path
    (``np`` -> ``numpy``, ``nr`` -> ``numpy.random``); ``symbols`` maps
    a from-imported name to its dotted origin
    (``default_rng`` -> ``numpy.random.default_rng``).
    """

    modules: Dict[str, str] = field(default_factory=dict)
    symbols: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def collect(cls, tree: ast.AST) -> "ImportTable":
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                # `import a.b as c` binds c -> a.b; plain `import a.b`
                # binds only `a` (attribute access goes a.b.<x>).
                for alias in node.names:
                    if alias.asname:
                        table.modules[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        table.modules[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table.symbols[local] = f"{node.module}.{alias.name}"
        return table

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``; a
        bare ``default_rng`` resolves via the symbol table.  Chains that
        bottom out in anything but an imported name resolve to None.
        """
        parts = dotted_name(node)
        if parts is None:
            return None
        head, rest = parts[0], parts[1:]
        if head in self.modules:
            return ".".join([self.modules[head], *rest])
        if head in self.symbols:
            return ".".join([self.symbols[head], *rest])
        return None


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


@dataclass
class SourceModule:
    """One parsed file, ready for rules."""

    path: Path  # absolute
    rel: str  # repo-relative, forward slashes (report identity)
    text: str
    lines: List[str]
    tree: ast.Module
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    imports: ImportTable = field(default_factory=ImportTable)

    @property
    def rel_parts(self) -> Tuple[str, ...]:
        return tuple(self.rel.split("/"))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk child -> parent up to the module node."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def preceding_siblings(self, node: ast.AST) -> Iterator[ast.stmt]:
        """Statements before ``node``'s ancestor chain in each block.

        For every enclosing statement list (function body, if body,
        ...), yields the statements that run before the branch holding
        ``node`` — the material early-return guard analysis scans.
        Stops at the nearest enclosing function boundary.
        """
        current: ast.AST = node
        for ancestor in self.ancestors(node):
            for fieldname in ("body", "orelse", "finalbody"):
                block = getattr(ancestor, fieldname, None)
                if isinstance(block, list) and current in block:
                    index = block.index(current)
                    for stmt in block[:index]:
                        yield stmt
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return
            current = ancestor


def _link_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def parse_module(path: Path, rel: str) -> SourceModule:
    """Parse one file; raises SyntaxError for the engine to report."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    module = SourceModule(
        path=path,
        rel=rel,
        text=text,
        lines=text.splitlines(),
        tree=tree,
        parents=_link_parents(tree),
        imports=ImportTable.collect(tree),
    )
    return module


def block_terminates(body: Sequence[ast.stmt]) -> bool:
    """Does this block unconditionally leave the enclosing scope?"""
    if not body:
        return False
    return isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))
