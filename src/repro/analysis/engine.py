"""The lint engine: walk files, run rules, apply suppressions + baseline.

Determinism is a feature here, not a nicety — the JSONL report is a
regression artifact exactly like the span export: files are visited in
sorted order, rules run in registry order, findings are deduplicated
and totally ordered, so the same tree produces the same bytes
(``tests/analysis/test_report_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    INVALID_SUPPRESSION,
    PARSE_ERROR,
    UNSUPPRESSABLE,
    Rule,
    all_rules,
)
from repro.analysis.source import SourceModule, parse_module
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = ["LintConfig", "LintResult", "lint_paths", "repo_root"]


def repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor containing pyproject.toml (else the start)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


@dataclass(frozen=True)
class LintConfig:
    """Everything a run needs beyond the file list.

    Defaults mirror ``[tool.repro_lint]`` in pyproject.toml; the CLI
    overlays the committed config on top of these, so library callers
    (tests) get identical behavior without reading TOML.
    """

    root: Path = field(default_factory=repo_root)
    #: rel-path fnmatch patterns fully exempt from no-wall-clock.  The
    #: perf timing shim is the single audited exemption: benchmarks
    #: exist to measure wall time, and confining the reads to one module
    #: keeps the rest of the tree greppably clock-free.
    allow_wall_clock: Tuple[str, ...] = ("src/repro/perf/timing.py",)
    #: path segments in which deadline-discipline applies.
    rpc_dirs: Tuple[str, ...] = ("cluster", "proxy", "browser")
    #: attribute names that constitute the RPC surface.
    rpc_methods: Tuple[str, ...] = ("invoke", "call")
    #: path segments in which obs-purity is skipped (the layer itself).
    obs_exempt_segments: Tuple[str, ...] = ("obs",)


@dataclass
class LintResult:
    """One run's verdict, pre-partitioned for the reporters."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: set = set()
    for path in paths:
        path = path.resolve()
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            files.update(p.resolve() for p in path.rglob("*.py"))
    return sorted(files)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _check_module(
    module: SourceModule, rules: Sequence[Rule], config: LintConfig
) -> List[Finding]:
    findings: List[Finding] = []
    for one_rule in rules:
        findings.extend(one_rule.check(module, config))
    return findings


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths``; returns a :class:`LintResult`.

    ``select`` restricts to a subset of rule ids (tests use this to
    exercise one rule against one fixture).  ``baseline`` (or a
    ``baseline_path`` to load one from) absorbs grandfathered findings
    into :attr:`LintResult.baselined`.
    """
    config = config or LintConfig()
    rules = all_rules(select)
    known_ids = {known.id for known in all_rules()}
    if baseline is None:
        baseline = (
            load_baseline(baseline_path) if baseline_path else Baseline()
        )
    result = LintResult()
    raw: List[Finding] = []
    for path in _iter_python_files(paths):
        rel = _relpath(path, config.root)
        result.files_checked += 1
        try:
            module = parse_module(path, rel)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    path=rel,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        suppressions, problems = parse_suppressions(module.lines)
        for line, suppression in sorted(suppressions.items()):
            # Validated against the *full* registry, not `select`: a
            # suppression that silently matched nothing would re-open
            # the gate it was written to document.
            if suppression.rule not in known_ids:
                problems.append(
                    (
                        line,
                        f"suppression names unknown rule id "
                        f"'{suppression.rule}'",
                    )
                )
            elif suppression.rule in UNSUPPRESSABLE:
                problems.append(
                    (
                        line,
                        f"rule '{suppression.rule}' cannot be suppressed",
                    )
                )
        for line, message in sorted(problems):
            raw.append(
                Finding(
                    path=rel,
                    line=line,
                    col=0,
                    rule=INVALID_SUPPRESSION,
                    message=message,
                )
            )
        for finding in _check_module(module, rules, config):
            suppression = _matching_suppression(suppressions, finding)
            if suppression is not None:
                result.suppressed.append((finding, suppression))
            else:
                raw.append(finding)
    unique = sorted(set(raw), key=Finding.sort_key)
    result.findings, result.baselined = baseline.split(unique)
    result.suppressed.sort(key=lambda pair: pair[0].sort_key())
    return result


def _matching_suppression(
    suppressions, finding: Finding
) -> Optional[Suppression]:
    if finding.rule in UNSUPPRESSABLE:
        return None
    for line in (finding.line, finding.line - 1):
        suppression = suppressions.get(line)
        if suppression is not None and suppression.rule == finding.rule:
            return suppression
    return None


def with_overrides(config: LintConfig, **overrides) -> LintConfig:
    """Frozen-dataclass convenience for the CLI's TOML overlay."""
    return replace(config, **overrides)
