"""The lint engine: walk files, run rules, apply suppressions + baseline.

Determinism is a feature here, not a nicety — the JSONL report is a
regression artifact exactly like the span export: files are visited in
sorted order, rules run in registry order, findings are deduplicated
and totally ordered, so the same tree produces the same bytes
(``tests/analysis/test_report_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.program.context import build_context
from repro.analysis.program.contract import LayerContract, load_contract
from repro.analysis.program.graph import ImportGraph, build_graph
from repro.analysis.registry import (
    INVALID_SUPPRESSION,
    PARSE_ERROR,
    UNSUPPRESSABLE,
    Rule,
    all_program_rules,
    all_rules,
    known_rule_ids,
    split_select,
)
from repro.analysis.source import SourceModule, parse_module
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = ["LintConfig", "LintResult", "lint_paths", "repo_root"]

#: id of the pass that needs the committed contract loaded; kept as a
#: literal so importing the engine never imports a pass module out of
#: the package's fixed registration order.
_LAYER_RULE_ID = "layer-contract"


def repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor containing pyproject.toml (else the start)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


@dataclass(frozen=True)
class LintConfig:
    """Everything a run needs beyond the file list.

    Defaults mirror ``[tool.repro_lint]`` in pyproject.toml; the CLI
    overlays the committed config on top of these, so library callers
    (tests) get identical behavior without reading TOML.
    """

    root: Path = field(default_factory=repo_root)
    #: rel-path fnmatch patterns fully exempt from no-wall-clock.  The
    #: perf timing shim is the single audited exemption: benchmarks
    #: exist to measure wall time, and confining the reads to one module
    #: keeps the rest of the tree greppably clock-free.
    allow_wall_clock: Tuple[str, ...] = ("src/repro/perf/timing.py",)
    #: path segments in which deadline-discipline applies.
    rpc_dirs: Tuple[str, ...] = ("cluster", "proxy", "browser")
    #: attribute names that constitute the RPC surface.
    rpc_methods: Tuple[str, ...] = ("invoke", "call")
    #: path segments in which obs-purity is skipped (the layer itself).
    obs_exempt_segments: Tuple[str, ...] = ("obs",)
    #: committed layer contract, relative to root (layer-contract pass).
    contract_path: str = "tools/layers.toml"
    #: module holding the ERROR_STATUS literal (error-envelope pass).
    envelope_registry: str = "src/repro/service/errors.py"
    #: rel-path roots whose error-kind literals the envelope pass audits.
    envelope_roots: Tuple[str, ...] = ("src/repro/service",)
    #: module whose Route(...) calls name handlers (handler-deadline pass).
    routes_module: str = "src/repro/service/routes.py"


@dataclass
class LintResult:
    """One run's verdict, pre-partitioned for the reporters."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    files_checked: int = 0
    #: import graph of the analyzed tree; set when program passes ran.
    graph: Optional[ImportGraph] = None

    @property
    def clean(self) -> bool:
        return not self.findings


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: set = set()
    for path in paths:
        path = path.resolve()
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            files.update(p.resolve() for p in path.rglob("*.py"))
    return sorted(files)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _check_module(
    module: SourceModule, rules: Sequence[Rule], config: LintConfig
) -> List[Finding]:
    findings: List[Finding] = []
    for one_rule in rules:
        findings.extend(one_rule.check(module, config))
    return findings


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
    program: bool = False,
    graph: Optional[ImportGraph] = None,
    contract: Optional[LayerContract] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths``; returns a :class:`LintResult`.

    ``select`` restricts to a subset of rule ids (tests use this to
    exercise one rule against one fixture); naming a program rule in
    ``select`` runs it whether or not ``program`` is set.  ``baseline``
    (or a ``baseline_path`` to load one from) absorbs grandfathered
    findings into :attr:`LintResult.baselined`.

    ``program=True`` additionally runs every whole-program pass over
    the same parsed modules.  ``graph`` is an optional cached import
    graph (the CI artifact): it is revalidated against the file hashes
    and silently rebuilt when stale.  ``contract`` injects a parsed
    layer contract; by default the committed one at
    ``config.contract_path`` is loaded when the layering pass runs,
    and a missing or invalid contract raises
    :class:`~repro.analysis.program.contract.ContractError` (the CLI
    maps it to exit code 2, distinct from findings).
    """
    config = config or LintConfig()
    if select is None:
        file_select, prog_select = None, (None if program else [])
    else:
        file_select, prog_select = split_select(select)
    rules = all_rules(file_select)
    program_rules = all_program_rules(prog_select)
    known_ids = known_rule_ids()
    if baseline is None:
        baseline = (
            load_baseline(baseline_path) if baseline_path else Baseline()
        )
    result = LintResult()
    raw: List[Finding] = []
    modules: Dict[str, SourceModule] = {}
    suppression_maps: Dict[str, Dict[int, Suppression]] = {}
    for path in _iter_python_files(paths):
        rel = _relpath(path, config.root)
        result.files_checked += 1
        try:
            module = parse_module(path, rel)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    path=rel,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules[rel] = module
        suppressions, problems = parse_suppressions(module.lines)
        suppression_maps[rel] = suppressions
        for line, suppression in sorted(suppressions.items()):
            # Validated against the *full* registry, not `select`: a
            # suppression that silently matched nothing would re-open
            # the gate it was written to document.
            if suppression.rule not in known_ids:
                problems.append(
                    (
                        line,
                        f"suppression names unknown rule id "
                        f"'{suppression.rule}'",
                    )
                )
            elif suppression.rule in UNSUPPRESSABLE:
                problems.append(
                    (
                        line,
                        f"rule '{suppression.rule}' cannot be suppressed",
                    )
                )
        for line, message in sorted(problems):
            raw.append(
                Finding(
                    path=rel,
                    line=line,
                    col=0,
                    rule=INVALID_SUPPRESSION,
                    message=message,
                )
            )
        for finding in _check_module(module, rules, config):
            suppression = _matching_suppression(suppressions, finding)
            if suppression is not None:
                result.suppressed.append((finding, suppression))
            else:
                raw.append(finding)
    if program_rules:
        if graph is None or not graph.matches(modules):
            graph = build_graph(modules)
        if contract is None and any(
            one.id == _LAYER_RULE_ID for one in program_rules
        ):
            contract = load_contract(
                str(config.root / config.contract_path), config.contract_path
            )
        context = build_context(str(config.root), modules, graph, contract)
        for one in program_rules:
            for finding in one.check(context, config):
                suppression = _matching_suppression(
                    suppression_maps.get(finding.path, {}), finding
                )
                if suppression is not None:
                    result.suppressed.append((finding, suppression))
                else:
                    raw.append(finding)
        result.graph = graph
    unique = sorted(set(raw), key=Finding.sort_key)
    result.findings, result.baselined = baseline.split(unique)
    result.suppressed.sort(key=lambda pair: pair[0].sort_key())
    return result


def _matching_suppression(
    suppressions, finding: Finding
) -> Optional[Suppression]:
    if finding.rule in UNSUPPRESSABLE:
        return None
    for line in (finding.line, finding.line - 1):
        suppression = suppressions.get(line)
        if suppression is not None and suppression.rule == finding.rule:
            return suppression
    return None


def with_overrides(config: LintConfig, **overrides) -> LintConfig:
    """Frozen-dataclass convenience for the CLI's TOML overlay."""
    return replace(config, **overrides)
