"""Consistency checking of cluster histories: is revocation durable?

The checker consumes exactly what an external auditor could see — the
client-visible operation history (:mod:`repro.chaos.history`) and a
final snapshot of replica states — and verifies the three invariants
the revocation service lives by:

* **Monotonic epochs** (``monotonic_epoch``): the quorum-acknowledged
  writes for a record carry strictly increasing ``revocation_epoch``
  values in acknowledgement order.  Last-writer-wins is only sound if
  "last" is well defined.
* **Revocation durability** (``revocation_durability`` /
  ``stale_read``): once a revocation is quorum-acknowledged, no status
  check *issued after* that acknowledgement may observe the record as
  valid at an older epoch.  With R + W > N the read quorum must overlap
  the write quorum, so a stale answer is a bug, not bad luck.  A
  filter short-circuit that answers "definitely not revoked" for a
  revoked record trips the same rule (the Bloom false-negative path).
* **Fail-closed degradation** (``fail_open``): a *degraded* answer —
  one the frontend served from its filter because no read quorum was
  reachable in budget — is explicitly allowed to be stale, but it may
  never report an acknowledged revocation as valid.  Staleness under
  degradation is a measured cost (the E19 stale-answer rate); failing
  open is a violation.
* **Convergence** (``divergence`` / ``lost_write``): after faults heal
  and repair traffic drains, every live replica holding a record agrees
  on its ``(state, epoch)``, and the agreed epoch is at least the
  newest acknowledged one — a healed partition must not roll back an
  acknowledged revocation.

* **Durable recovery** (``recovery_mismatch`` / ``corruption_missed``,
  via :meth:`ConsistencyChecker.check_recovery`): every crash-restart
  that recovered from a durable store must have installed exactly the
  state an independent snapshot+tail replay of its log produces, and
  every storage fault the chaos harness actually injected must surface
  in that recovery's detection evidence — corruption may *cost* data
  (restored by peer backfill) but may never be silently accepted.

Replicas that do not hold a record at all (wiped by a crash-restart and
not yet re-replicated) are an *availability* gap, handled by quorum
sizing, and are deliberately not counted as divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.chaos.history import HistoryRecorder, Op

__all__ = ["ConsistencyChecker", "CheckReport", "Violation", "state_digest"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to debug it."""

    invariant: str
    serial: int
    detail: str


@dataclass
class CheckReport:
    """The checker's verdict over one run."""

    violations: List[Violation] = field(default_factory=list)
    status_ops_checked: int = 0
    writes_checked: int = 0
    serials_checked: int = 0
    spans_checked: int = 0
    recoveries_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, invariant: Optional[str] = None) -> int:
        if invariant is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.invariant == invariant)

    def by_invariant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CheckReport(ok={self.ok}, violations={self.by_invariant()})"


def state_digest(replica_states: Dict[str, Dict[int, tuple]]) -> str:
    """Canonical hash of a cluster state snapshot (replay comparisons)."""
    import hashlib

    digest = hashlib.sha256()
    for shard_id in sorted(replica_states):
        digest.update(shard_id.encode("utf-8"))
        for serial in sorted(replica_states[shard_id]):
            state, epoch = replica_states[shard_id][serial]
            digest.update(f":{serial}:{state}:{epoch}".encode("utf-8"))
    return digest.hexdigest()


class ConsistencyChecker:
    """Verifies revocation invariants over a history plus a snapshot.

    Parameters
    ----------
    placement:
        ``placement(serial) -> [shard_id, ...]`` — the ring's replica
        set for a record, used to scope convergence to the replicas
        that are *supposed* to hold it.
    """

    def __init__(self, placement: Optional[Callable[[int], List[str]]] = None):
        self._placement = placement

    # -- entry point --------------------------------------------------------------

    def check(
        self,
        history: "HistoryRecorder | Sequence[Op]",
        replica_states: Optional[Dict[str, Dict[int, tuple]]] = None,
        live_shards: Optional[Sequence[str]] = None,
    ) -> CheckReport:
        ops = history.ops if isinstance(history, HistoryRecorder) else list(history)
        report = CheckReport()
        writes = self._acked_writes(ops)
        self._check_monotonic_epochs(writes, report)
        self._check_durability(ops, writes, report)
        if replica_states is not None:
            self._check_convergence(writes, replica_states, live_shards, report)
        return report

    # -- invariant 0: spans agree with the history ----------------------------------

    def check_spans(
        self,
        history: "HistoryRecorder | Sequence[Op]",
        spans: Sequence,
        report: Optional[CheckReport] = None,
    ) -> CheckReport:
        """Cross-validate the trace against the client-visible history.

        The observability layer (:mod:`repro.obs`) and the history
        recorder watch the *same* operations through two independent
        hooks — the frontend's ``obs`` spans and its ``observer``
        protocol.  If both are deterministic functions of the run, they
        must agree: one ``frontend.status`` span per status operation,
        with identical serial, invocation/completion times, answer
        source and degraded flag.  Any disagreement
        (``span_history_mismatch``) means one of the two observation
        channels is lying about the run — exactly the kind of bug a
        metrics layer can introduce silently.

        Spans are matched to operations in creation order: both span
        ids and op ids are handed out sequentially inside the same
        ``status_async`` call, so the i-th status op owns the i-th
        ``frontend.status`` span.
        """
        ops = [
            op
            for op in (
                history.ops
                if isinstance(history, HistoryRecorder)
                else list(history)
            )
            if op.kind == "status"
        ]
        status_spans = sorted(
            (s for s in spans if s.name == "frontend.status"),
            key=lambda s: s.span_id,
        )
        if report is None:
            report = CheckReport()
        if len(ops) != len(status_spans):
            report.violations.append(
                Violation(
                    invariant="span_history_mismatch",
                    serial=-1,
                    detail=(
                        f"{len(ops)} status ops in the history but "
                        f"{len(status_spans)} frontend.status spans in "
                        "the trace"
                    ),
                )
            )
            return report
        for op, span in zip(ops, status_spans):
            report.spans_checked += 1
            problems: List[str] = []
            if span.tags.get("serial") != op.serial:
                problems.append(
                    f"serial {span.tags.get('serial')} != {op.serial}"
                )
            if abs(span.started_at - op.invoked_at) > 1e-9:
                problems.append(
                    f"span started at t={span.started_at:.9f} but op "
                    f"invoked at t={op.invoked_at:.9f}"
                )
            if op.completed and not span.finished:
                problems.append("op completed but span never ended")
            elif not op.completed and span.finished:
                problems.append("span ended but op never completed")
            elif op.completed and span.finished:
                if abs(span.ended_at - op.completed_at) > 1e-9:
                    problems.append(
                        f"span ended at t={span.ended_at:.9f} but op "
                        f"completed at t={op.completed_at:.9f}"
                    )
                if span.tags.get("source") != op.source:
                    problems.append(
                        f"span source {span.tags.get('source')!r} != "
                        f"op source {op.source!r}"
                    )
                if bool(span.tags.get("degraded")) != bool(op.degraded):
                    problems.append(
                        f"span degraded={span.tags.get('degraded')} != "
                        f"op degraded={op.degraded}"
                    )
            if problems:
                report.violations.append(
                    Violation(
                        invariant="span_history_mismatch",
                        serial=op.serial,
                        detail=(
                            f"op {op.op_id} vs span {span.span_id}: "
                            + "; ".join(problems)
                        ),
                    )
                )
        return report

    # -- invariant 1: monotonic epochs --------------------------------------------

    @staticmethod
    def _acked_writes(ops: Sequence[Op]) -> Dict[int, List[Op]]:
        by_serial: Dict[int, List[Op]] = {}
        for op in ops:
            if op.kind in ("revoke", "unrevoke") and op.acked:
                by_serial.setdefault(op.serial, []).append(op)
        for serial in by_serial:
            by_serial[serial].sort(key=lambda op: (op.completed_at, op.op_id))
        return by_serial

    def _check_monotonic_epochs(
        self, writes: Dict[int, List[Op]], report: CheckReport
    ) -> None:
        for serial, serial_writes in sorted(writes.items()):
            report.writes_checked += len(serial_writes)
            last = None
            for op in serial_writes:
                # Epochs may only move forward; the one legal repeat is
                # an idempotent re-ack (same epoch, same resulting
                # state — e.g. revoking an already-revoked record).
                regressed = last is not None and (
                    op.epoch < last.epoch
                    or (op.epoch == last.epoch and op.state != last.state)
                )
                if regressed:
                    report.violations.append(
                        Violation(
                            invariant="monotonic_epoch",
                            serial=serial,
                            detail=(
                                f"{op.kind} acked at t={op.completed_at:.6f} "
                                f"with {op.state}@{op.epoch} after "
                                f"{last.state}@{last.epoch} was already "
                                "acknowledged"
                            ),
                        )
                    )
                last = op

    # -- invariant 2: revocation durability ----------------------------------------

    def _check_durability(
        self,
        ops: Sequence[Op],
        writes: Dict[int, List[Op]],
        report: CheckReport,
    ) -> None:
        for op in ops:
            if op.kind != "status" or not op.completed or not op.ok:
                continue
            report.status_ops_checked += 1
            serial_writes = writes.get(op.serial)
            if not serial_writes:
                continue
            # The newest write acknowledged before this read was issued:
            # a quorum read must observe at least that epoch.
            visible = [
                w for w in serial_writes if w.completed_at <= op.invoked_at
            ]
            if not visible:
                continue
            winner = max(visible, key=lambda w: w.epoch)
            observed = op.epoch if op.epoch is not None else -1
            if op.degraded:
                # Degraded answers carry no epoch and tolerate staleness
                # by contract; the one inviolable rule is fail-closed:
                # an acknowledged revocation must still read as revoked.
                if winner.kind == "revoke" and not op.revoked:
                    report.violations.append(
                        Violation(
                            invariant="fail_open",
                            serial=op.serial,
                            detail=(
                                f"degraded status issued at "
                                f"t={op.invoked_at:.6f} answered 'valid' "
                                f"after revocation epoch {winner.epoch} was "
                                f"acknowledged at t={winner.completed_at:.6f}"
                            ),
                        )
                    )
                continue
            if observed >= winner.epoch:
                continue
            if winner.kind == "revoke" and not op.revoked:
                report.violations.append(
                    Violation(
                        invariant="revocation_durability",
                        serial=op.serial,
                        detail=(
                            f"status issued at t={op.invoked_at:.6f} "
                            f"(source={op.source}) observed 'valid' at epoch "
                            f"{observed} after revocation epoch "
                            f"{winner.epoch} was acknowledged at "
                            f"t={winner.completed_at:.6f}"
                        ),
                    )
                )
            else:
                report.violations.append(
                    Violation(
                        invariant="stale_read",
                        serial=op.serial,
                        detail=(
                            f"status issued at t={op.invoked_at:.6f} observed "
                            f"epoch {observed} below acknowledged epoch "
                            f"{winner.epoch}"
                        ),
                    )
                )

    # -- invariant 3: convergence ----------------------------------------------------

    def _check_convergence(
        self,
        writes: Dict[int, List[Op]],
        replica_states: Dict[str, Dict[int, tuple]],
        live_shards: Optional[Sequence[str]],
        report: CheckReport,
    ) -> None:
        live = set(live_shards) if live_shards is not None else set(replica_states)
        serials: set = set(writes)
        for shard_id, states in replica_states.items():
            if shard_id in live:
                serials.update(states)
        for serial in sorted(serials):
            report.serials_checked += 1
            holders = {}
            expected = (
                self._placement(serial) if self._placement is not None else None
            )
            for shard_id, states in replica_states.items():
                if shard_id not in live:
                    continue
                if expected is not None and shard_id not in expected:
                    continue
                if serial in states:
                    holders[shard_id] = states[serial]
            distinct = set(holders.values())
            if len(distinct) > 1:
                report.violations.append(
                    Violation(
                        invariant="divergence",
                        serial=serial,
                        detail=(
                            "live replicas disagree after heal: "
                            + ", ".join(
                                f"{shard}={state}@{epoch}"
                                for shard, (state, epoch) in sorted(holders.items())
                            )
                        ),
                    )
                )
            serial_writes = writes.get(serial)
            if not serial_writes or not holders:
                continue
            newest = max(serial_writes, key=lambda w: w.epoch)
            agreed_epoch = max(epoch for _, epoch in holders.values())
            if agreed_epoch < newest.epoch:
                report.violations.append(
                    Violation(
                        invariant="lost_write",
                        serial=serial,
                        detail=(
                            f"acknowledged epoch {newest.epoch} ({newest.kind}) "
                            f"absent from every live replica (max seen "
                            f"{agreed_epoch})"
                        ),
                    )
                )

    # -- invariant 4: durable recovery ------------------------------------------------

    #: Detection evidence each injected storage-fault kind must surface.
    #: Log damage can legitimately manifest as any log-layer verdict
    #: (a flipped byte in a length header reads as a torn or truncated
    #: frame), but snapshot damage must be caught at the snapshot layer.
    EXPECTED_EVIDENCE: Dict[str, frozenset] = {
        "torn": frozenset(
            {"torn_record", "corrupted_segment", "truncated_segment",
             "chain_broken"}
        ),
        "corrupt": frozenset(
            {"torn_record", "corrupted_segment", "truncated_segment",
             "chain_broken"}
        ),
        "snapshot": frozenset({"snapshot_corrupt"}),
    }

    def check_recovery(
        self,
        recoveries: Sequence,
        injected: Sequence[tuple] = (),
        report: Optional[CheckReport] = None,
    ) -> CheckReport:
        """Verify the crash-recovery invariants over one run.

        ``recoveries`` are the cluster's
        :class:`~repro.cluster.simnet.ShardRecovery` captures;
        ``injected`` the controller's ``(shard_id, kind, at)`` list of
        storage faults that actually landed.  Two rules:

        * ``recovery_mismatch`` — the state a restarted shard installed
          differs from an independent replay of its recovered log;
        * ``corruption_missed`` — an injected fault produced no
          matching detection evidence in the recovery that followed it
          (silent acceptance of corrupted storage).
        """
        if report is None:
            report = CheckReport()
        for recovery in recoveries:
            report.recoveries_checked += 1
            if recovery.installed_digest != recovery.replayed_digest:
                report.violations.append(
                    Violation(
                        invariant="recovery_mismatch",
                        serial=-1,
                        detail=(
                            f"{recovery.shard_id} restarted at "
                            f"t={recovery.at:.6f} with state digest "
                            f"{recovery.installed_digest[:12]} but replaying "
                            f"its recovered log yields "
                            f"{recovery.replayed_digest[:12]}"
                        ),
                    )
                )
        for shard_id, kind, at in injected:
            expected = self.EXPECTED_EVIDENCE[kind]
            recovery = next(
                (
                    r
                    for r in recoveries
                    if r.shard_id == shard_id and r.at >= at
                ),
                None,
            )
            if recovery is None:
                report.violations.append(
                    Violation(
                        invariant="corruption_missed",
                        serial=-1,
                        detail=(
                            f"{kind} fault injected into {shard_id} at "
                            f"t={at:.6f} but no recovery followed it"
                        ),
                    )
                )
                continue
            if not expected.intersection(recovery.evidence):
                report.violations.append(
                    Violation(
                        invariant="corruption_missed",
                        serial=-1,
                        detail=(
                            f"{kind} fault injected into {shard_id} at "
                            f"t={at:.6f} left no detection evidence in the "
                            f"recovery at t={recovery.at:.6f} "
                            f"(evidence={list(recovery.evidence)})"
                        ),
                    )
                )
        return report
