"""The chaos experiment driver: cluster + plan + workload + checker.

:func:`run_chaos` is the one call behind both the ``python -m repro
chaos`` subcommand and the E18 benchmark sweep.  It stands up a
:class:`~repro.cluster.simnet.SimulatedCluster`, attaches a
:class:`~repro.chaos.history.HistoryRecorder` to the frontend, installs
a seed-generated :class:`~repro.chaos.plan.ChaosPlan`, and drives a
mixed workload of status checks and live revocations *through* the
fault windows.  After the plan's heal barrier it issues a full read
pass over every touched record (read repair is the cluster's only
anti-divergence mechanism, and repair rides on reads), lets the
simulation drain, snapshots every replica, and hands history + snapshot
to the :class:`~repro.chaos.checker.ConsistencyChecker`.

Every random choice — fault schedule, query times, query targets,
revocation picks — draws from named :class:`~repro.netsim.rand`
streams under the run's single seed, so a :class:`ChaosReport` is a
pure function of its arguments: identical seeds reproduce identical CSV
rows, which is what makes a chaos failure *debuggable*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chaos.checker import CheckReport, ConsistencyChecker, state_digest
from repro.chaos.history import HistoryRecorder
from repro.chaos.plan import ChaosController, ChaosKnobs, ChaosPlan
from repro.cluster.antientropy import AntiEntropySweeper
from repro.cluster.frontend import ClusterConfig
from repro.cluster.simnet import ShardRecovery, SimulatedCluster
from repro.core.identifiers import PhotoIdentifier

__all__ = ["ChaosReport", "run_chaos"]


@dataclass
class ChaosReport:
    """Everything one chaos run proved (or failed to prove)."""

    seed: int
    intensity: float
    num_shards: int
    status_ops: int = 0
    status_acked: int = 0
    revokes_attempted: int = 0
    revokes_acked: int = 0
    check: CheckReport = field(default_factory=CheckReport)
    faults: Dict[str, int] = field(default_factory=dict)
    records_lost: int = 0
    read_repairs: int = 0
    suspicions: int = 0
    digest: str = ""
    # Durable-recovery observations: every crash-restart's recovery
    # capture plus the storage faults the controller actually landed.
    recoveries: List[ShardRecovery] = field(default_factory=list)
    storage_faults: List[tuple] = field(default_factory=list)
    # The full recorded history (not part of the CSV row; kept for
    # replay comparisons and debugging).
    history: Optional[HistoryRecorder] = None

    @property
    def availability(self) -> float:
        """Fraction of chaos-phase status checks that got an answer."""
        if self.status_ops == 0:
            return 1.0
        return self.status_acked / self.status_ops

    @property
    def violations(self) -> int:
        return self.check.count()

    def row(self) -> Dict[str, object]:
        """One flat, reproducible CSV row for the E18 sweep."""
        by_invariant = self.check.by_invariant()
        return {
            "seed": self.seed,
            "intensity": f"{self.intensity:.2f}",
            "shards": self.num_shards,
            "status_ops": self.status_ops,
            "availability": f"{self.availability:.4f}",
            "revokes_acked": self.revokes_acked,
            "violations": self.violations,
            "durability_violations": by_invariant.get(
                "revocation_durability", 0
            ),
            "stale_reads": by_invariant.get("stale_read", 0),
            "divergence": by_invariant.get("divergence", 0),
            "lost_writes": by_invariant.get("lost_write", 0),
            "partitions": self.faults.get("partition", 0),
            "crashes": self.faults.get("crash", 0),
            "wipes": self.faults.get("wipe", 0),
            "storage_faults": self.faults.get("storage", 0),
            "recoveries": len(self.recoveries),
            "recovery_mismatches": by_invariant.get("recovery_mismatch", 0),
            "corruptions_missed": by_invariant.get("corruption_missed", 0),
            "records_lost": self.records_lost,
            "read_repairs": self.read_repairs,
            "digest": self.digest[:16],
        }


def run_chaos(
    num_shards: int = 4,
    seed: int = 0,
    intensity: float = 0.5,
    queries: int = 400,
    revocations: int = 25,
    population: int = 150,
    horizon: float = 8.0,
    drain: float = 4.0,
    config: Optional[ClusterConfig] = None,
    knobs: Optional[ChaosKnobs] = None,
    sabotage: Optional[Callable[[SimulatedCluster], None]] = None,
) -> ChaosReport:
    """One deterministic chaos run; see the module docstring.

    ``sabotage`` (used by the checker self-test) mutates the cluster
    before any traffic flows — e.g. seeding a deliberate LWW bug to
    confirm the checker is not vacuously green.
    """
    if config is None:
        config = ClusterConfig(replication_factor=min(3, num_shards))
    cluster = SimulatedCluster(
        num_shards,
        config=config,
        seed=seed,
        rpc_timeout=0.05,
        rpc_retries=1,
    )
    if sabotage is not None:
        sabotage(cluster)
    sim = cluster.simulator
    recorder = HistoryRecorder(clock=sim.clock().now)
    cluster.frontend.observer = recorder
    pop = cluster.seed_population(population, revoked_fraction=0.2)

    plan = ChaosPlan.generate(
        cluster.rngs.stream("chaos"),
        sorted(cluster.shards),
        horizon=horizon,
        intensity=intensity,
        knobs=knobs,
    )
    controller = ChaosController(cluster, plan)
    controller.install()

    workload = cluster.rngs.stream("workload")

    # Status checks spread across the whole fault window.
    times = sorted(workload.uniform(0.0, horizon, size=queries))
    indices = workload.integers(0, pop.size, size=queries)
    for at, index in zip(times, indices):
        sim.schedule_at(
            at,
            cluster.frontend.status_async,
            pop.identifiers[int(index)],
            lambda answer: None,
        )

    # Live revocations of distinct, not-yet-revoked records, issued
    # while faults are active — the writes the checker holds reads to.
    candidates = [i for i in range(pop.size) if not pop.revoked(i)]
    picks = workload.choice(
        candidates, size=min(revocations, len(candidates)), replace=False
    )
    revoke_times = sorted(
        workload.uniform(0.1 * horizon, 0.7 * horizon, size=len(picks))
    )
    for at, index in zip(revoke_times, picks):
        sim.schedule_at(
            at,
            cluster.frontend.revoke_async,
            pop.identifiers[int(index)],
            pop.owner,
            lambda outcome, error: None,
        )

    # Post-heal convergence pass: read every record once so read repair
    # touches every replica group, then let repairs drain.
    def _final_pass() -> None:
        for identifier in pop.identifiers:
            cluster.frontend.status_async(identifier, lambda answer: None)

    sim.schedule_at(horizon + 0.2, _final_pass)
    # When storage faults are in play, a recovery may have truncated a
    # replica's log back past acknowledged writes; read repair only
    # touches records the final pass reads through that replica, so an
    # anti-entropy sweep backfills whatever the truncation cost.
    if plan.counts().get("storage", 0) > 0:
        sweeper = AntiEntropySweeper(
            cluster.cluster_id,
            cluster.ring,
            cluster.transport,
            config.replication_factor,
            on_result=cluster.frontend._record_result,
        )
        sim.schedule_at(
            horizon + 0.5, sweeper.sweep_async, lambda sweep_report: None
        )
    sim.run(until=horizon + drain)

    # -- measurement ---------------------------------------------------------------
    chaos_status = [
        op
        for op in recorder.of_kind("status")
        if op.invoked_at < horizon
    ]
    revoke_ops = recorder.of_kind("revoke", "unrevoke")
    replication = cluster.frontend.config.replication_factor

    def placement(serial: int) -> List[str]:
        identifier = PhotoIdentifier(cluster.cluster_id, serial)
        return cluster.ring.replicas(identifier.to_compact(), replication)

    states = cluster.replica_states()
    checker = ConsistencyChecker(placement=placement)
    check = checker.check(
        recorder, replica_states=states, live_shards=sorted(cluster.shards)
    )
    checker.check_recovery(
        cluster.recoveries, controller.storage_faults, report=check
    )
    return ChaosReport(
        seed=seed,
        intensity=intensity,
        num_shards=num_shards,
        status_ops=len(chaos_status),
        status_acked=sum(1 for op in chaos_status if op.acked),
        revokes_attempted=len(revoke_ops),
        revokes_acked=sum(1 for op in revoke_ops if op.acked),
        check=check,
        faults=dict(controller.faults_applied),
        records_lost=controller.records_lost,
        read_repairs=cluster.frontend.stats.read_repairs,
        suspicions=cluster.detector.suspicions_raised,
        digest=state_digest(states),
        recoveries=list(cluster.recoveries),
        storage_faults=list(controller.storage_faults),
        history=recorder,
    )
