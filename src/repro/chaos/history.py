"""Client-visible operation history for the consistency checker.

:class:`HistoryRecorder` is a :class:`~repro.cluster.frontend.ClusterFrontend`
observer: the frontend announces each client-visible operation (status
check, claim, revoke/unrevoke) when it is *issued* and again when its
outcome is *decided*, and the recorder timestamps both ends with the
simulation clock.  The resulting list of :class:`Op` intervals is the
only input the checker needs about the run's behaviour — the checker
never inspects in-flight cluster internals, exactly as an external
auditor could not.

Histories are deterministic: operations are numbered in issue order and
timestamped from the discrete-event clock, so two runs with the same
seed produce byte-identical histories (the replay guarantee the
determinism regression test enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["HistoryRecorder", "Op"]


@dataclass
class Op:
    """One client-visible operation, as an invocation/response interval."""

    op_id: int
    kind: str  # 'status' | 'claim' | 'revoke' | 'unrevoke'
    serial: int
    invoked_at: float
    completed_at: Optional[float] = None
    ok: Optional[bool] = None
    revoked: Optional[bool] = None
    epoch: Optional[int] = None
    state: Optional[str] = None
    source: Optional[str] = None  # status only: 'filter' | 'shard' | 'degraded'
    error: Optional[str] = None
    degraded: Optional[bool] = None  # status only: filter-backed fallback answer
    attrs: Dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def acked(self) -> bool:
        """Did the cluster acknowledge this operation as applied?"""
        return self.completed and bool(self.ok)

    def signature(self) -> tuple:
        """A hashable, comparison-friendly projection (determinism tests)."""
        return (
            self.op_id,
            self.kind,
            self.serial,
            round(self.invoked_at, 9),
            None if self.completed_at is None else round(self.completed_at, 9),
            self.ok,
            self.revoked,
            self.epoch,
            self.source,
            self.degraded,
        )


class HistoryRecorder:
    """Collects the frontend's operation announcements into a history.

    Implements the frontend observer protocol: ``begin`` returns an
    opaque op id, ``complete`` closes the interval.  Operations that
    never complete (lost in a partition that outlives the run) stay
    open and are reported as unavailable, not as violations.
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._ops: List[Op] = []

    # -- observer protocol --------------------------------------------------------

    def begin(self, kind: str, serial: int, **attrs) -> int:
        op = Op(
            op_id=len(self._ops),
            kind=kind,
            serial=serial,
            invoked_at=self._clock(),
            attrs=dict(attrs),
        )
        self._ops.append(op)
        return op.op_id

    def complete(self, op_id: int, **attrs) -> None:
        op = self._ops[op_id]
        if op.completed:  # pragma: no cover - frontend completes once
            return
        op.completed_at = self._clock()
        for name in ("ok", "revoked", "epoch", "state", "source", "error", "degraded"):
            if name in attrs:
                setattr(op, name, attrs.pop(name))
        op.attrs.update(attrs)

    # -- queries ------------------------------------------------------------------

    @property
    def ops(self) -> List[Op]:
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def of_kind(self, *kinds: str) -> List[Op]:
        return [op for op in self._ops if op.kind in kinds]

    def acked_writes(self, serial: Optional[int] = None) -> List[Op]:
        """Quorum-acknowledged state changes, in ack-time order."""
        writes = [
            op
            for op in self._ops
            if op.kind in ("revoke", "unrevoke") and op.acked
            and (serial is None or op.serial == serial)
        ]
        return sorted(writes, key=lambda op: (op.completed_at, op.op_id))

    def signature(self) -> tuple:
        """The whole history as a comparable tuple (replay checks)."""
        return tuple(op.signature() for op in self._ops)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        done = sum(1 for op in self._ops if op.completed)
        return f"HistoryRecorder(ops={len(self._ops)}, completed={done})"
