"""Checker self-test: seed a deliberate bug, demand a red report.

A consistency checker that has never caught anything might be green
because the system is correct — or because the checker is vacuous.
This module removes the doubt by *sabotaging* the replication layer
with a classic last-writer-wins mistake and confirming the checker
flags it.

The bug: :meth:`~repro.cluster.shard.ClusterShard.apply_state` drops
its monotonic-epoch guard and becomes **last-arrival-wins** — whatever
``apply_state`` message lands last is adopted, regardless of epoch.
That is exactly the bug duplicated or reordered replication traffic
exposes: a stale duplicate of an old epoch arriving after a newer flip
silently resurrects revoked content.

The scenario is deterministic rather than stochastic (read repair can
mask a randomly-injected regression before the checker looks): claim,
revoke (epoch 1), unrevoke (epoch 2), revoke (epoch 3), then hand the
primary replica a delayed duplicate of the epoch-2 ``apply_state``.
Correct code ignores it; the sabotaged code rolls the primary back to
"valid", and the next primary read returns resurrected content.  The
self-test runs the scenario twice — clean and sabotaged — and passes
only if the clean run is violation-free *and* the sabotaged run trips
both the durability and the convergence invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.chaos.checker import CheckReport, ConsistencyChecker
from repro.chaos.history import HistoryRecorder
from repro.core.errors import RevocationError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.records import RevocationState
from repro.netsim.simulator import ManualClock
from repro.cluster.frontend import ClusterConfig, ClusterFrontend
from repro.cluster.health import FailureDetector
from repro.cluster.replication import LocalShardTransport
from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterShard

__all__ = ["install_lww_bug", "run_selftest", "SelftestResult"]


def _last_arrival_wins(shard: ClusterShard):
    """The buggy ``apply_state``: adopts whatever arrived last."""

    def apply_state(payload: Dict) -> Dict:
        serial = payload["serial"]
        record = shard.ledger.store.get(serial)
        if record is None:
            raise RevocationError(
                f"cannot apply state to unknown serial {serial}"
            )
        # BUG (deliberate): no `epoch <= record.revocation_epoch` guard.
        record.state = RevocationState(payload["state"])
        record.revocation_epoch = payload["epoch"]
        shard.states_applied += 1
        return {"applied": True, "epoch": payload["epoch"]}

    return apply_state


def install_lww_bug(cluster) -> None:
    """Sabotage every shard of ``cluster`` with last-arrival-wins.

    Works on anything exposing ``.shards`` (``SimulatedCluster`` or the
    local-transport rig below).  Netsim endpoints capture bound methods
    at registration time, so when the cluster has ``.endpoints`` the
    handler table is rewired too.
    """
    for shard_id, shard in cluster.shards.items():
        buggy = _last_arrival_wins(shard)
        shard.apply_state = buggy
        endpoints = getattr(cluster, "endpoints", None)
        if endpoints is not None:
            endpoints[shard_id]._handlers["apply_state"] = buggy


@dataclass
class SelftestResult:
    """Clean-vs-sabotaged verdict pair."""

    clean: CheckReport
    buggy: CheckReport

    @property
    def detected(self) -> bool:
        """True iff the checker is discriminating, not vacuous."""
        return (
            self.clean.ok
            and self.buggy.count("revocation_durability") > 0
            and self.buggy.count("divergence") > 0
        )


class _Rig:
    """A tiny synchronous cluster wired for the deterministic scenario."""

    def __init__(self, seed: int, sabotage: bool):
        rng = np.random.default_rng(seed)
        self.clock = ManualClock()
        tsa = TimestampAuthority(
            keypair=KeyPair.generate(bits=512, rng=rng), clock=self.clock.now
        )
        shard_ids = [f"shard-{i}" for i in range(3)]
        self.shards = {
            shard_id: ClusterShard(
                shard_id,
                "selftest",
                tsa,
                keypair=KeyPair.generate(bits=512, rng=rng),
                clock=self.clock.now,
            )
            for shard_id in shard_ids
        }
        self.ring = HashRing(shard_ids)
        self.transport = LocalShardTransport(self.shards)
        self.recorder = HistoryRecorder(clock=self.clock.now)
        # Primary reads (read_quorum=1, unhedged): the weakest read the
        # config allows, which is what lets the resurrected primary
        # answer alone — a quorum read would paper over the bug.
        self.frontend = ClusterFrontend(
            "selftest",
            self.ring,
            self.transport,
            tsa,
            detector=FailureDetector(self.clock.now),
            config=ClusterConfig(
                replication_factor=3, read_quorum=1, hedged_reads=False
            ),
            clock=self.clock.now,
            observer=self.recorder,
        )
        self.owner = KeyPair.generate(bits=512, rng=rng)
        if sabotage:
            install_lww_bug(self)

    def replica_states(self) -> Dict[str, Dict[int, tuple]]:
        return {
            shard_id: {
                record.identifier.serial: (
                    record.state.value,
                    record.revocation_epoch,
                )
                for record in shard.ledger.store.records()
            }
            for shard_id, shard in sorted(self.shards.items())
        }


def _run_scenario(seed: int, sabotage: bool) -> CheckReport:
    rig = _Rig(seed, sabotage)
    frontend, clock = rig.frontend, rig.clock

    content_hash = sha256_hex(b"selftest:photo")
    signature = rig.owner.sign(content_hash.encode("utf-8"))
    identifier = frontend.claim(content_hash, signature, rig.owner.public)

    def _step(action) -> None:
        clock.advance(1.0)
        action()
        clock.advance(1.0)
        frontend.status(identifier)

    _step(lambda: frontend.revoke(identifier, rig.owner))     # epoch 1
    _step(lambda: frontend.unrevoke(identifier, rig.owner))   # epoch 2
    _step(lambda: frontend.revoke(identifier, rig.owner))     # epoch 3

    # The delayed duplicate: a replication message from the epoch-2
    # unrevoke, arriving at the primary long after epoch 3 committed.
    clock.advance(1.0)
    primary = frontend.replicas_for(identifier)[0]
    rig.transport.invoke(
        primary,
        "apply_state",
        {
            "serial": identifier.serial,
            "state": RevocationState.NOT_REVOKED.value,
            "epoch": 2,
        },
        lambda reply: None,
    )

    # The read that matters: a primary read after the duplicate landed.
    clock.advance(1.0)
    frontend.status(identifier)

    def placement(serial: int) -> List[str]:
        ident = PhotoIdentifier("selftest", serial)
        return rig.ring.replicas(ident.to_compact(), 3)

    return ConsistencyChecker(placement=placement).check(
        rig.recorder,
        replica_states=rig.replica_states(),
        live_shards=sorted(rig.shards),
    )


def run_selftest(seed: int = 0) -> SelftestResult:
    """Run the scenario clean and sabotaged; see :class:`SelftestResult`."""
    return SelftestResult(
        clean=_run_scenario(seed, sabotage=False),
        buggy=_run_scenario(seed, sabotage=True),
    )
