"""Fault-injection primitives over the netsim fabric.

Thin, group-aware helpers on top of the per-link fault surface that
:class:`~repro.netsim.link.Link` exposes (loss, duplication, reorder,
sever): a :class:`LinkFaultProfile` applies one message-level fault mix
to every link of a network, and :func:`partition` severs exactly the
links that cross a group boundary — the classic "split the cluster into
islands" fault, healable as a unit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Sequence

from repro.netsim.link import Link, Network

__all__ = ["LinkFaultProfile", "partition", "heal_all_links"]


@dataclass(frozen=True)
class LinkFaultProfile:
    """A message-level fault mix, applied uniformly to a network's links."""

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 0.01

    def scaled(self, intensity: float) -> "LinkFaultProfile":
        """The profile with every probability scaled by ``intensity``."""
        if not 0.0 <= intensity:
            raise ValueError("intensity cannot be negative")
        return replace(
            self,
            loss=min(self.loss * intensity, 0.99),
            duplicate=min(self.duplicate * intensity, 0.99),
            reorder=min(self.reorder * intensity, 0.99),
        )

    @property
    def quiet(self) -> bool:
        return self.loss == self.duplicate == self.reorder == 0.0

    def apply(self, network: Network) -> None:
        for link in network.links():
            link.set_faults(
                loss=self.loss,
                duplicate=self.duplicate,
                reorder=self.reorder,
                reorder_delay=self.reorder_delay,
            )

    @staticmethod
    def clear(network: Network) -> None:
        for link in network.links():
            link.set_faults(loss=0.0, duplicate=0.0, reorder=0.0)


def partition(network: Network, groups: Sequence[Iterable[str]]) -> List[Link]:
    """Sever every link joining nodes in *different* groups.

    Nodes absent from every group keep all their links — a partition
    plan only needs to name the islands it cares about.  Returns the
    severed links so the caller can heal exactly this partition.
    """
    membership = {}
    for index, group in enumerate(groups):
        for name in group:
            if name in membership:
                raise ValueError(f"node {name!r} appears in two groups")
            membership[name] = index
    severed = []
    for link in network.links():
        side_a = membership.get(link.a)
        side_b = membership.get(link.b)
        if side_a is not None and side_b is not None and side_a != side_b:
            link.sever()
            severed.append(link)
    return severed


def heal_all_links(network: Network) -> int:
    """Heal every severed link; returns how many were severed."""
    healed = 0
    for link in network.links():
        if link.severed:
            link.heal()
            healed += 1
    return healed
