"""Durability self-test: sabotage recovery, demand a red report.

The storage-fault chaos gate rests on two checker invariants —
``corruption_missed`` (every injected disk fault must surface detection
evidence) and ``recovery_mismatch`` (the state a shard adopts must equal
an independent replay of its snapshot + verified tail).  A green run
proves nothing if those invariants are vacuous, so this module runs the
same storage-heavy chaos plan three times:

* **clean** — stock recovery; must inject faults, recover, and come
  back violation-free;
* **blind** — every shard's ``recover`` is wrapped to *discard its
  evidence*, modelling a recovery path that silently accepts damaged
  logs; the checker must trip ``corruption_missed``;
* **diverged** — every recovery silently bumps one record's epoch
  after restore, modelling replay drift; the checker must trip
  ``recovery_mismatch``.

The self-test passes only if the clean run is green *and* both
sabotaged runs go red — the checker discriminates, it is not merely
quiet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.plan import ChaosKnobs
from repro.chaos.runner import ChaosReport, run_chaos

__all__ = [
    "DurabilitySelftestResult",
    "install_blind_recovery",
    "install_replay_divergence",
    "run_durability_selftest",
]

#: Storage-heavy knobs: a fault on every non-wipe crash, crash-dense
#: schedule, no wipes — every restart exercises the recovery scan.
SELFTEST_KNOBS = ChaosKnobs(
    storage_fault_probability=1.0,
    wipe_probability=0.0,
    crash_rate=1.2,
)


def install_blind_recovery(cluster) -> None:
    """Sabotage: recoveries swallow their corruption evidence.

    The recovery still truncates and replays correctly, but reports a
    clean bill of health — exactly the failure mode of a restart path
    that "handles" a bad checksum by ignoring it.  With no evidence on
    record, every injected fault must show up as ``corruption_missed``.
    """
    for shard in cluster.shards.values():
        original = shard.recover

        def recover(original=original):
            report = original()
            report.evidence = ()
            return report

        shard.recover = recover


def install_replay_divergence(cluster) -> None:
    """Sabotage: recovered in-memory state drifts from the replayed log.

    After each restore the shard silently bumps one record's epoch, so
    the installed state digest no longer equals the independent
    snapshot+tail replay — the ``recovery_mismatch`` invariant's one
    job is to notice.
    """
    for shard in cluster.shards.values():
        original = shard.recover

        def recover(shard=shard, original=original):
            report = original()
            for record in shard.ledger.store.records():
                record.revocation_epoch += 1
                break
            return report

        shard.recover = recover


@dataclass
class DurabilitySelftestResult:
    """Clean / blind / diverged verdict triple."""

    clean: ChaosReport
    blind: ChaosReport
    diverged: ChaosReport

    @property
    def detected(self) -> bool:
        """True iff the durability invariants discriminate."""
        return (
            self.clean.check.ok
            and self.clean.faults.get("storage", 0) > 0
            and len(self.clean.recoveries) > 0
            and self.blind.check.count("corruption_missed") > 0
            and self.diverged.check.count("recovery_mismatch") > 0
        )


def run_durability_selftest(seed: int = 0) -> DurabilitySelftestResult:
    """One seed, three runs; see the module docstring."""
    return DurabilitySelftestResult(
        clean=run_chaos(seed=seed, intensity=0.7, knobs=SELFTEST_KNOBS),
        blind=run_chaos(
            seed=seed,
            intensity=0.7,
            knobs=SELFTEST_KNOBS,
            sabotage=install_blind_recovery,
        ),
        diverged=run_chaos(
            seed=seed,
            intensity=0.7,
            knobs=SELFTEST_KNOBS,
            sabotage=install_replay_divergence,
        ),
    )
