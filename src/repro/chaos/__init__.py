"""Deterministic chaos engineering for the cluster subsystem.

Everything here is seed-reproducible: a :class:`ChaosPlan` is drawn up
front from a named RNG stream, installed onto a simulated cluster as
plain simulator timers, and the resulting client-visible history is
audited by a :class:`ConsistencyChecker` against the invariants global
revocation lives by — monotonic epochs, revocation durability, and
post-heal convergence.  :func:`run_chaos` is the one-call driver; the
:mod:`~repro.chaos.selftest` proves the checker is not vacuous.
"""

from repro.chaos.checker import (
    CheckReport,
    ConsistencyChecker,
    Violation,
    state_digest,
)
from repro.chaos.faults import LinkFaultProfile, heal_all_links, partition
from repro.chaos.history import HistoryRecorder, Op
from repro.chaos.plan import ChaosController, ChaosEvent, ChaosKnobs, ChaosPlan
from repro.chaos.runner import ChaosReport, run_chaos
from repro.chaos.resilience import (
    POLICIES,
    REFERENCE_DEADLINE,
    ResilienceReport,
    RevocationBloom,
    resilience_config,
    run_resilient_chaos,
)
from repro.chaos.selftest import SelftestResult, install_lww_bug, run_selftest
from repro.chaos.durability import (
    DurabilitySelftestResult,
    install_blind_recovery,
    install_replay_divergence,
    run_durability_selftest,
)

__all__ = [
    "CheckReport",
    "ConsistencyChecker",
    "Violation",
    "state_digest",
    "LinkFaultProfile",
    "heal_all_links",
    "partition",
    "HistoryRecorder",
    "Op",
    "ChaosController",
    "ChaosEvent",
    "ChaosKnobs",
    "ChaosPlan",
    "ChaosReport",
    "run_chaos",
    "POLICIES",
    "REFERENCE_DEADLINE",
    "ResilienceReport",
    "RevocationBloom",
    "resilience_config",
    "run_resilient_chaos",
    "SelftestResult",
    "install_lww_bug",
    "run_selftest",
    "DurabilitySelftestResult",
    "install_blind_recovery",
    "install_replay_divergence",
    "run_durability_selftest",
]
