"""E19: the resilience layer under chaos — fail degraded, never open.

:func:`run_resilient_chaos` is :func:`~repro.chaos.runner.run_chaos`
with a *policy* axis: the same deterministic fault plan and workload
(identical named RNG streams, so rows are comparable across policies)
is driven against a frontend configured with

* ``none``  — the PR-1 baseline: quorum reads, failover, nothing else;
* ``retry`` — request deadlines, bounded failover and backoff retries;
* ``full``  — ``retry`` plus circuit breakers, degraded filter-backed
  reads, hinted handoff, and a post-heal anti-entropy sweep.

Beyond the E18 invariants (now including the ``fail_open`` rule for
degraded answers) the run measures what resilience *buys* and what it
*costs*: availability, the fraction of queries answered within the
reference deadline, p50/p99 answer latency, how many answers were
degraded, how many degraded answers were conservatively wrong (said
"revoked" for a valid record — the stale-answer rate), hinted-handoff
queue traffic and drain time.  The headline claim E19 exists to commit
to a CSV: at every fault intensity the ``full`` policy keeps the
checker green with zero fail-open answers while meeting the deadline
bar the baseline measurably misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.chaos.checker import CheckReport, ConsistencyChecker, state_digest
from repro.chaos.history import HistoryRecorder
from repro.chaos.plan import ChaosController, ChaosKnobs, ChaosPlan
from repro.cluster.antientropy import AntiEntropySweeper, SweepReport
from repro.cluster.frontend import ClusterConfig
from repro.cluster.simnet import SimulatedCluster
from repro.core.identifiers import PhotoIdentifier
from repro.filters.bloom import BloomFilter

__all__ = [
    "POLICIES",
    "REFERENCE_DEADLINE",
    "ResilienceReport",
    "RevocationBloom",
    "resilience_config",
    "run_resilient_chaos",
]

POLICIES = ("none", "retry", "full")

# Every policy is measured against the same answer-latency bar, whether
# or not its config enforces one — that is what makes "answered within
# deadline" comparable across the sweep.
REFERENCE_DEADLINE = 0.25


class RevocationBloom:
    """A frontend-side Bloom filter of revoked identifiers.

    The degraded-read fallback: seeded with the initially revoked
    population and *learning* — the frontend inserts every revocation
    it acks via its ``add`` hook, which is what keeps degraded answers
    fail-closed with respect to acknowledged revocations.  False
    positives err toward "revoked" (safe); false negatives are bounded
    by the sizing formula and by the checker's ``fail_open`` invariant.
    """

    def __init__(self, capacity: int = 4096, target_fpr: float = 0.01):
        self._filter = BloomFilter.for_capacity(capacity, target_fpr)
        self.added = 0

    def might_be_revoked(self, compact_identifier: bytes) -> bool:
        return compact_identifier in self._filter

    def might_be_revoked_many(self, compact_identifiers) -> np.ndarray:
        """Batch verdicts (entry ``i`` == the scalar probe for key ``i``)."""
        return self._filter.query_many(compact_identifiers)

    def add(self, compact_identifier: bytes) -> None:
        self._filter.add(compact_identifier)
        self.added += 1


def resilience_config(policy: str, num_shards: int = 4) -> ClusterConfig:
    """The frontend configuration one E19 policy tier stands for."""
    r = min(3, num_shards)
    if policy == "none":
        return ClusterConfig(replication_factor=r)
    retry = dict(
        replication_factor=r,
        request_deadline=REFERENCE_DEADLINE,
        max_retries=3,
        max_failover_depth=2,
        backoff_base=0.01,
        backoff_multiplier=2.0,
        backoff_cap=0.08,
        backoff_jitter=0.5,
    )
    if policy == "retry":
        return ClusterConfig(**retry)
    if policy == "full":
        return ClusterConfig(
            **retry,
            breaker_threshold=3,
            breaker_reset_timeout=0.4,
            degraded_reads=True,
            hinted_handoff=True,
            hint_replay_interval=0.2,
        )
    raise ValueError(f"unknown resilience policy {policy!r} (want {POLICIES})")


@dataclass
class ResilienceReport:
    """One (intensity, policy) cell of the E19 sweep."""

    seed: int
    intensity: float
    num_shards: int
    policy: str
    status_ops: int = 0
    status_acked: int = 0
    deadline_met: int = 0
    latencies: List[float] = field(default_factory=list)
    degraded_answers: int = 0
    stale_degraded: int = 0  # degraded 'revoked' verdicts for valid records
    revokes_attempted: int = 0
    revokes_acked: int = 0
    retries: int = 0
    breaker_opens: int = 0
    hints_queued: int = 0
    hints_replayed: int = 0
    hints_dropped: int = 0
    hint_drain_time: Optional[float] = None  # seconds past the heal barrier
    sweep: Optional[SweepReport] = None
    check: CheckReport = field(default_factory=CheckReport)
    faults: Dict[str, int] = field(default_factory=dict)
    records_lost: int = 0
    digest: str = ""
    history: Optional[HistoryRecorder] = None

    @property
    def availability(self) -> float:
        """Fraction of chaos-phase status checks answered successfully."""
        if self.status_ops == 0:
            return 1.0
        return self.status_acked / self.status_ops

    @property
    def deadline_rate(self) -> float:
        """Fraction answered successfully within the reference deadline."""
        if self.status_ops == 0:
            return 1.0
        return self.deadline_met / self.status_ops

    @property
    def stale_rate(self) -> float:
        """Stale degraded verdicts as a fraction of chaos-phase queries."""
        if self.status_ops == 0:
            return 0.0
        return self.stale_degraded / self.status_ops

    @property
    def fail_open(self) -> int:
        return self.check.count("fail_open")

    @property
    def violations(self) -> int:
        return self.check.count()

    def _percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def row(self) -> Dict[str, object]:
        """One flat, reproducible CSV row for the E19 sweep."""
        by_invariant = self.check.by_invariant()
        return {
            "seed": self.seed,
            "intensity": f"{self.intensity:.2f}",
            "shards": self.num_shards,
            "policy": self.policy,
            "status_ops": self.status_ops,
            "availability": f"{self.availability:.4f}",
            "deadline_met": f"{self.deadline_rate:.4f}",
            "p50_latency": f"{self._percentile(50):.6f}",
            "p99_latency": f"{self._percentile(99):.6f}",
            "degraded_answers": self.degraded_answers,
            "stale_rate": f"{self.stale_rate:.4f}",
            "fail_open": self.fail_open,
            "violations": self.violations,
            "durability_violations": by_invariant.get("revocation_durability", 0),
            "stale_reads": by_invariant.get("stale_read", 0),
            "divergence": by_invariant.get("divergence", 0),
            "lost_writes": by_invariant.get("lost_write", 0),
            "revokes_acked": self.revokes_acked,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "hints_queued": self.hints_queued,
            "hints_replayed": self.hints_replayed,
            "hints_dropped": self.hints_dropped,
            "hint_drain_s": (
                "" if self.hint_drain_time is None
                else f"{self.hint_drain_time:.3f}"
            ),
            "records_pushed": 0 if self.sweep is None else self.sweep.records_pushed,
            "records_lost": self.records_lost,
            "digest": self.digest[:16],
        }


def run_resilient_chaos(
    num_shards: int = 4,
    seed: int = 0,
    intensity: float = 0.5,
    policy: str = "full",
    queries: int = 400,
    revocations: int = 25,
    population: int = 150,
    horizon: float = 8.0,
    drain: float = 4.0,
    knobs: Optional[ChaosKnobs] = None,
) -> ResilienceReport:
    """One deterministic chaos run under a resilience policy.

    Workload and fault schedule draw from the same named streams in the
    same order as :func:`run_chaos`, so for a given ``(seed,
    intensity)`` every policy faces the *identical* adversary.  Status
    queries bypass the Bloom pre-check (``use_filter=False``): the
    filter serves only the degraded fallback, keeping the policy
    comparison about the read path, not about filter hit rates.
    """
    config = resilience_config(policy, num_shards)
    filterset = RevocationBloom(capacity=max(4 * population, 256))
    cluster = SimulatedCluster(
        num_shards,
        config=config,
        seed=seed,
        rpc_timeout=0.05,
        rpc_retries=1,
        filterset=filterset,
    )
    sim = cluster.simulator
    recorder = HistoryRecorder(clock=sim.clock().now)
    cluster.frontend.observer = recorder
    pop = cluster.seed_population(population, revoked_fraction=0.2)
    for index, identifier in enumerate(pop.identifiers):
        if pop.revoked(index):
            filterset.add(identifier.to_compact())

    plan = ChaosPlan.generate(
        cluster.rngs.stream("chaos"),
        sorted(cluster.shards),
        horizon=horizon,
        intensity=intensity,
        knobs=knobs,
    )
    controller = ChaosController(cluster, plan)
    controller.install()

    workload = cluster.rngs.stream("workload")

    times = sorted(workload.uniform(0.0, horizon, size=queries))
    indices = workload.integers(0, pop.size, size=queries)
    for at, index in zip(times, indices):
        sim.schedule_at(
            at,
            cluster.frontend.status_async,
            pop.identifiers[int(index)],
            lambda answer: None,
            False,  # use_filter: the filter is fallback-only here
        )

    candidates = [i for i in range(pop.size) if not pop.revoked(i)]
    picks = workload.choice(
        candidates, size=min(revocations, len(candidates)), replace=False
    )
    revoke_times = sorted(
        workload.uniform(0.1 * horizon, 0.7 * horizon, size=len(picks))
    )
    for at, index in zip(revoke_times, picks):
        sim.schedule_at(
            at,
            cluster.frontend.revoke_async,
            pop.identifiers[int(index)],
            pop.owner,
            lambda outcome, error: None,
        )

    # Post-heal: one full read pass (read repair rides on reads), and —
    # under the full policy — an anti-entropy sweep to restore records
    # on replicas that reads and hints could not reach or re-create.
    def _final_pass() -> None:
        for identifier in pop.identifiers:
            cluster.frontend.status_async(
                identifier, lambda answer: None, False
            )

    sim.schedule_at(horizon + 0.2, _final_pass)

    sweep_box: List[SweepReport] = []
    if policy == "full":
        sweeper = AntiEntropySweeper(
            cluster.cluster_id,
            cluster.ring,
            cluster.transport,
            config.replication_factor,
            on_result=cluster.frontend._record_result,
        )
        sim.schedule_at(horizon + 0.5, sweeper.sweep_async, sweep_box.append)
    sim.run(until=horizon + drain)

    # -- measurement ---------------------------------------------------------------
    chaos_status = [
        op for op in recorder.of_kind("status") if op.invoked_at < horizon
    ]
    revoke_ops = recorder.of_kind("revoke", "unrevoke")
    replication = cluster.frontend.config.replication_factor

    def placement(serial: int) -> List[str]:
        identifier = PhotoIdentifier(cluster.cluster_id, serial)
        return cluster.ring.replicas(identifier.to_compact(), replication)

    states = cluster.replica_states()
    check = ConsistencyChecker(placement=placement).check(
        recorder, replica_states=states, live_shards=sorted(cluster.shards)
    )

    # Ground truth for the stale-degraded metric: when did each record
    # *actually* become revoked (seeded, or first acknowledged revoke)?
    initially_revoked = {
        identifier.serial: pop.revoked(index)
        for index, identifier in enumerate(pop.identifiers)
    }
    first_revoke_ack: Dict[int, float] = {}
    for op in recorder.of_kind("revoke"):
        if op.acked:
            prior = first_revoke_ack.get(op.serial)
            if prior is None or op.completed_at < prior:
                first_revoke_ack[op.serial] = op.completed_at

    def _revoked_by(when: float, serial: int) -> bool:
        if initially_revoked.get(serial, False):
            return True
        acked_at = first_revoke_ack.get(serial)
        return acked_at is not None and acked_at <= when

    report = ResilienceReport(
        seed=seed,
        intensity=intensity,
        num_shards=num_shards,
        policy=policy,
        status_ops=len(chaos_status),
        revokes_attempted=len(revoke_ops),
        revokes_acked=sum(1 for op in revoke_ops if op.acked),
        retries=cluster.frontend.stats.retries,
        check=check,
        faults=dict(controller.faults_applied),
        records_lost=controller.records_lost,
        digest=state_digest(states),
        history=recorder,
    )
    for op in chaos_status:
        if not op.acked:
            continue
        report.status_acked += 1
        latency = op.completed_at - op.invoked_at
        report.latencies.append(latency)
        if latency <= REFERENCE_DEADLINE + 1e-9:
            report.deadline_met += 1
        if op.degraded:
            report.degraded_answers += 1
            if op.revoked and not _revoked_by(op.completed_at, op.serial):
                report.stale_degraded += 1
    frontend = cluster.frontend
    if frontend.breakers is not None:
        report.breaker_opens = frontend.breakers.times_opened
    if frontend.hints is not None:
        report.hints_queued = frontend.hints.hints_queued
        report.hints_replayed = frontend.hints.hints_replayed
        report.hints_dropped = frontend.hints.hints_dropped
        if frontend.hints.hints_queued and frontend.hints.drained_at is not None:
            report.hint_drain_time = max(
                0.0, frontend.hints.drained_at - horizon
            )
    if sweep_box:
        report.sweep = sweep_box[0]
    return report
