"""Deterministic chaos schedules: one seed, one byte-identical run.

A :class:`ChaosPlan` is a fully materialized fault schedule — partition
windows, crash-restart windows (state kept or wiped), per-node clock
skews, plus a message-level :class:`~repro.chaos.faults.LinkFaultProfile`
— generated up front from a single :mod:`repro.netsim.rand` stream.
Because every random choice is drawn *before* the simulation starts,
the plan is a value: print it, diff it, and replay it byte-identically
from its seed, no matter how the faults perturb the run itself.

The :class:`ChaosController` installs a plan onto a
:class:`~repro.cluster.simnet.SimulatedCluster`: each event becomes a
pair of simulator timers (start, end), overlapping faults on the same
shard are reference-counted so one partition healing does not
prematurely reconnect a shard still isolated by another, and a final
heal barrier at the horizon guarantees the post-chaos convergence phase
starts from a fully connected cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.faults import LinkFaultProfile

__all__ = ["ChaosEvent", "ChaosKnobs", "ChaosPlan", "ChaosController"]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: a window ``[at, at + duration)`` on targets."""

    kind: str  # 'partition' | 'crash' | 'skew'
    at: float
    duration: float
    targets: Tuple[str, ...]
    wipe: bool = False  # crash only: lose the replica's disk on restart
    offset: float = 0.0  # skew only: seconds of clock drift
    # Crash only: damage the surviving disk before the restart recovers
    # from it — '' (none) | 'torn' | 'corrupt' | 'snapshot'.
    storage_fault: str = ""

    @property
    def ends_at(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class ChaosKnobs:
    """Fault intensities at ``intensity=1.0``; scaled linearly below.

    Rates are events per second of simulated time; durations are means
    of exponential draws (clipped to the horizon).
    """

    partition_rate: float = 0.5
    partition_duration: float = 0.4
    max_partition_fraction: float = 0.5  # largest isolatable shard share
    crash_rate: float = 0.5
    crash_duration: float = 0.3
    wipe_probability: float = 0.3
    # The fault model's tolerance contract: at most this many restarts
    # lose their disk per run.  Quorum writes survive any w-1 wipes
    # (w replicas hold an acknowledged write); wiping a full write
    # quorum annihilates data no leaderless protocol could keep, which
    # would be a statement about the fault injector, not the cluster.
    max_wipes: int = 1
    # Probability that a non-wipe crash restarts against a *damaged*
    # disk (torn final record, corrupted segment, or corrupted
    # snapshot, equally likely).  Unscaled by intensity, like
    # ``wipe_probability``.  Torn/corrupt faults truncate acknowledged
    # log suffix on recovery, so they share the ``max_wipes`` budget;
    # draws past the budget degrade to snapshot corruption.  Default 0
    # keeps legacy plans byte-stable.
    storage_fault_probability: float = 0.0
    skew_rate: float = 0.3
    max_clock_skew: float = 30.0
    link_faults: LinkFaultProfile = field(
        default_factory=lambda: LinkFaultProfile(
            loss=0.02, duplicate=0.05, reorder=0.10, reorder_delay=0.02
        )
    )


@dataclass
class ChaosPlan:
    """A materialized fault schedule plus its message-level fault mix."""

    events: List[ChaosEvent]
    link_faults: LinkFaultProfile
    horizon: float
    intensity: float

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        shard_ids: Sequence[str],
        horizon: float,
        intensity: float,
        knobs: Optional[ChaosKnobs] = None,
    ) -> "ChaosPlan":
        """Draw a schedule from ``rng`` — same stream, same plan.

        ``intensity`` in [0, 1] scales event rates and message fault
        probabilities together; 0 yields an empty plan (the control run
        every sweep anchors on).
        """
        if not 0.0 <= intensity:
            raise ValueError("intensity cannot be negative")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        knobs = knobs or ChaosKnobs()
        shard_ids = list(shard_ids)
        events: List[ChaosEvent] = []
        # Faults start after a short warm-up and end early enough that
        # their windows close before the horizon's heal barrier.
        window = (0.05 * horizon, 0.75 * horizon)

        def _window_times(rate: float) -> np.ndarray:
            count = rng.poisson(rate * intensity * horizon)
            return np.sort(rng.uniform(window[0], window[1], size=count))

        max_island = max(1, int(len(shard_ids) * knobs.max_partition_fraction))
        for at in _window_times(knobs.partition_rate):
            size = int(rng.integers(1, max_island + 1))
            targets = tuple(
                sorted(rng.choice(shard_ids, size=size, replace=False))
            )
            duration = min(
                float(rng.exponential(knobs.partition_duration)) + 1e-3,
                horizon - at,
            )
            events.append(
                ChaosEvent("partition", float(at), duration, targets)
            )
        wipes = 0
        for at in _window_times(knobs.crash_rate):
            victim = str(rng.choice(shard_ids))
            duration = min(
                float(rng.exponential(knobs.crash_duration)) + 1e-3,
                horizon - at,
            )
            # Always draw the coin (stream stability), then clamp to the
            # tolerance contract.
            wipe = bool(rng.uniform() < knobs.wipe_probability)
            wipe = wipe and wipes < knobs.max_wipes
            wipes += int(wipe)
            events.append(
                ChaosEvent("crash", float(at), duration, (victim,), wipe=wipe)
            )
        for at in _window_times(knobs.skew_rate):
            victim = str(rng.choice(shard_ids))
            offset = float(
                rng.uniform(-knobs.max_clock_skew, knobs.max_clock_skew)
            )
            events.append(
                ChaosEvent(
                    "skew", float(at), horizon - at, (victim,), offset=offset
                )
            )
        # Storage faults ride on crash events: always draw both coins
        # per crash, in event-creation order, *after* every legacy draw
        # (stream stability — old seeds reproduce old schedules
        # exactly, with or without storage faults enabled).  Torn and
        # corrupted segments shed acknowledged log suffix on recovery,
        # so they draw from the same tolerance budget as wipes —
        # otherwise correlated corruption could annihilate a full write
        # quorum, which no recovery protocol could survive.  Snapshot
        # corruption is detection-only (the log itself survives) and is
        # never budgeted; over-budget destructive draws degrade to it.
        fault_kinds = ("torn", "corrupt", "snapshot")
        lossy = wipes
        for index, event in enumerate(events):
            if event.kind != "crash":
                continue
            hit = bool(rng.uniform() < knobs.storage_fault_probability)
            kind_index = int(rng.integers(0, len(fault_kinds)))
            if not hit or event.wipe:
                continue
            kind = fault_kinds[kind_index]
            if kind in ("torn", "corrupt"):
                if lossy >= knobs.max_wipes:
                    kind = "snapshot"
                else:
                    lossy += 1
            events[index] = replace(event, storage_fault=kind)
        events.sort(key=lambda e: (e.at, e.kind, e.targets))
        return cls(
            events=events,
            link_faults=knobs.link_faults.scaled(intensity),
            horizon=float(horizon),
            intensity=float(intensity),
        )

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {
            "partition": 0, "crash": 0, "wipe": 0, "skew": 0, "storage": 0
        }
        for event in self.events:
            tally[event.kind] += 1
            if event.kind == "crash" and event.wipe:
                tally["wipe"] += 1
            if event.kind == "crash" and event.storage_fault:
                tally["storage"] += 1
        return tally

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChaosPlan(intensity={self.intensity}, horizon={self.horizon}, "
            f"events={self.counts()})"
        )


class ChaosController:
    """Installs a :class:`ChaosPlan` onto a simulated cluster.

    Faults on the same shard are reference-counted: a shard isolated by
    two overlapping partitions reconnects only when both heal, and a
    shard crashed twice restarts only when the later window closes.
    """

    def __init__(self, cluster, plan: ChaosPlan):
        self.cluster = cluster
        self.plan = plan
        self._severed: Dict[str, int] = {}
        self._down: Dict[str, int] = {}
        self._pending_wipe: Dict[str, bool] = {}
        self._pending_fault: Dict[str, str] = {}
        self.records_lost = 0
        self.faults_applied: Dict[str, int] = {
            "partition": 0, "crash": 0, "wipe": 0, "skew": 0, "storage": 0
        }
        # Storage faults that actually landed, as (shard_id, kind, at)
        # — the checker demands detection evidence for exactly these.
        self.storage_faults: List[Tuple[str, str, float]] = []

    def install(self) -> None:
        sim = self.cluster.simulator
        if not self.plan.link_faults.quiet:
            self.plan.link_faults.apply(self.cluster.network)
        for event in self.plan.events:
            if event.kind == "partition":
                sim.schedule_at(event.at, self._start_partition, event)
                sim.schedule_at(event.ends_at, self._end_partition, event)
            elif event.kind == "crash":
                sim.schedule_at(event.at, self._start_crash, event)
                sim.schedule_at(event.ends_at, self._end_crash, event)
            elif event.kind == "skew":
                sim.schedule_at(event.at, self._start_skew, event)
            else:  # pragma: no cover - plan generation is exhaustive
                raise ValueError(f"unknown chaos event kind {event.kind!r}")
        sim.schedule_at(self.plan.horizon, self.heal_everything)

    # -- event application ---------------------------------------------------------

    def _start_partition(self, event: ChaosEvent) -> None:
        self.faults_applied["partition"] += 1
        for shard_id in event.targets:
            if self._severed.get(shard_id, 0) == 0:
                self.cluster.isolate_shards([shard_id])
            self._severed[shard_id] = self._severed.get(shard_id, 0) + 1

    def _end_partition(self, event: ChaosEvent) -> None:
        for shard_id in event.targets:
            remaining = self._severed.get(shard_id, 0) - 1
            self._severed[shard_id] = max(remaining, 0)
            if remaining <= 0:
                self.cluster.reconnect_shards([shard_id])

    def _start_crash(self, event: ChaosEvent) -> None:
        (shard_id,) = event.targets
        self.faults_applied["crash"] += 1
        if event.wipe:
            self.faults_applied["wipe"] += 1
        if self._down.get(shard_id, 0) == 0:
            self.cluster.kill_shard(shard_id)
        self._down[shard_id] = self._down.get(shard_id, 0) + 1
        # A wipe anywhere in an overlapping pile-up still loses the disk.
        self._pending_wipe[shard_id] = (
            self._pending_wipe.get(shard_id, False) or event.wipe
        )
        if event.storage_fault:
            self._pending_fault[shard_id] = event.storage_fault

    def _restart(self, shard_id: str) -> None:
        """Restart one shard, applying any pending storage damage first."""
        wipe = self._pending_wipe.pop(shard_id, False)
        fault = self._pending_fault.pop(shard_id, "")
        if fault and not wipe:
            if self.cluster.inject_storage_fault(shard_id, fault):
                self.faults_applied["storage"] += 1
                self.storage_faults.append(
                    (shard_id, fault, self.cluster.simulator.now)
                )
        self.records_lost += self.cluster.restart_shard(shard_id, wipe=wipe)

    def _end_crash(self, event: ChaosEvent) -> None:
        (shard_id,) = event.targets
        remaining = self._down.get(shard_id, 0) - 1
        self._down[shard_id] = max(remaining, 0)
        if remaining <= 0:
            self._restart(shard_id)

    def _start_skew(self, event: ChaosEvent) -> None:
        (shard_id,) = event.targets
        self.faults_applied["skew"] += 1
        self.cluster.skew_clock(shard_id, event.offset)

    # -- the heal barrier -----------------------------------------------------------

    def heal_everything(self) -> None:
        """Reconnect, restart and de-skew everything; lift link faults.

        Scheduled at the plan horizon so the convergence phase measures
        the *system's* repair machinery, not lingering injected faults.
        """
        LinkFaultProfile.clear(self.cluster.network)
        self.cluster.reconnect_shards(list(self.cluster.shards))
        for shard_id in self.cluster.shards:
            if self._down.get(shard_id, 0) > 0:
                self._restart(shard_id)
            self.cluster.skew_clock(shard_id, 0.0)
        self._severed.clear()
        self._down.clear()
