"""Structured trace spans over an injected clock.

A :class:`Span` is one timed stage of a request — ``frontend.status``,
``replication.read``, ``proxy.ledger_query`` — carrying a
``trace_id``/``span_id``/``parent_id`` triple, free-form tags, and
timestamped events.  A :class:`Tracer` mints spans with sequential ids
and timestamps them from the clock it was constructed with, which in
every simulation is the discrete-event clock: **no wall time ever
enters a trace**, so two runs of the same seeded workload produce
byte-identical span streams (the determinism rule DESIGN.md §8
records).

Two parenting styles coexist because the codebase mixes synchronous
call chains with callback-driven ones:

* ``with tracer.span("proxy.status") as sp:`` — context-manager spans
  maintain an active-span stack, so nested ``with`` blocks (extension →
  proxy → ledger query) parent automatically, and an exception
  propagating through the block still closes the span (tagged
  ``status='error'``) and pops the stack.
* ``sp = tracer.start("frontend.status"); ... sp.end()`` — manual
  spans for callback code, where the span lives in a closure and
  children name their parent explicitly
  (``tracer.start("replication.read", parent=sp)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed stage of a request, with tags and events."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    started_at: float
    ended_at: Optional[float] = None
    status: str = "ok"  # 'ok' | 'error'
    tags: Dict[str, object] = field(default_factory=dict)
    events: List[Tuple[float, str, Dict[str, object]]] = field(
        default_factory=list
    )
    _tracer: Optional["Tracer"] = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.ended_at is not None

    @property
    def duration(self) -> float:
        if self.ended_at is None:
            raise ValueError(f"span {self.name!r} has not ended")
        return self.ended_at - self.started_at

    def set_tag(self, **tags) -> "Span":
        self.tags.update(tags)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time annotation (retry, failover, shed)."""
        if self._tracer is None:
            raise ValueError("span is detached from its tracer")
        self.events.append((self._tracer.now(), name, dict(attrs)))

    def end(self, **tags) -> "Span":
        """Close the span; idempotent so racing finishers are safe."""
        if self._tracer is None:
            raise ValueError("span is detached from its tracer")
        if self.ended_at is None:
            self.tags.update(tags)
            self._tracer._finish(self)
        return self


class _SpanContext:
    """Context-manager wrapper: stack discipline + error tagging."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack
        # Pop back to (and including) our span even if an inner manual
        # span was pushed and leaked — the stack must never be left
        # pointing at a span from an unwound frame.
        while stack:
            top = stack.pop()
            if top is self._span:
                break
        if exc_type is not None:
            self._span.status = "error"
            self._span.set_tag(error=f"{exc_type.__name__}: {exc}")
        self._span.end()
        return False  # never swallow the exception


class Tracer:
    """Mints spans with sequential ids over one injected clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self._next_span_id = 1
        self._next_trace_id = 1
        self._stack: List[Span] = []
        self._finished: List[Span] = []
        self._open = 0

    def now(self) -> float:
        return self._clock()

    # -- span creation ------------------------------------------------------------

    def start(
        self, name: str, parent: Optional[Span] = None, **tags
    ) -> Span:
        """Begin a manual span (caller must ``end()`` it).

        ``parent`` defaults to the innermost context-manager span, so
        manual spans opened inside a ``with tracer.span(...)`` block
        still join that trace.
        """
        if parent is None:
            parent = self.current()
        if parent is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            started_at=self._clock(),
            tags=dict(tags),
            _tracer=self,
        )
        self._next_span_id += 1
        self._open += 1
        return span

    def span(self, name: str, parent: Optional[Span] = None, **tags):
        """Context-manager span: auto-parented, exception-safe."""
        return _SpanContext(self, self.start(name, parent=parent, **tags))

    def current(self) -> Optional[Span]:
        """The innermost active context-manager span, if any."""
        return self._stack[-1] if self._stack else None

    # -- bookkeeping --------------------------------------------------------------

    def _finish(self, span: Span) -> None:
        span.ended_at = self._clock()
        self._open -= 1
        self._finished.append(span)

    @property
    def finished(self) -> List[Span]:
        """Finished spans in completion order (the export order)."""
        return list(self._finished)

    @property
    def open_spans(self) -> int:
        return self._open

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self._finished if s.name == name]

    def __len__(self) -> int:
        return len(self._finished)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(finished={len(self._finished)}, open={self._open})"
