"""Exporters: JSON-lines spans, Prometheus text, human tables.

Three read-side formats over one write side
(:class:`~repro.obs.metrics.MetricsRegistry` +
:class:`~repro.obs.tracing.Tracer`):

* :func:`spans_to_jsonl` — one canonical JSON object per finished
  span, sorted keys, compact separators.  Byte-identical across
  identical seeded runs (the determinism regression test's artifact).
* :func:`prometheus_text` — Prometheus-style exposition (``# TYPE``
  headers, ``name{label="..."} value`` samples, cumulative ``le``
  histogram buckets) so a real scrape endpoint could serve it verbatim.
* :func:`metrics_tables` / :func:`stage_breakdown` /
  :func:`slowest_spans_table` — human tables reusing
  :mod:`repro.metrics.reporting`, which is what ``python -m repro obs``
  prints.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence

from repro.metrics.reporting import Table
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span

__all__ = [
    "canonical_jsonl",
    "spans_to_jsonl",
    "span_to_dict",
    "prometheus_text",
    "metrics_tables",
    "stage_breakdown",
    "slowest_spans_table",
]


def canonical_jsonl(records: Iterable[dict]) -> str:
    """One canonical JSON line per record: sorted keys, compact
    separators, trailing newline iff non-empty.

    The byte-determinism contract every JSONL artifact in this repo
    shares (span exports, lint reports): identical inputs produce
    identical bytes.
    """
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- spans --------------------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    """Canonical JSON-safe projection of one finished span."""
    return {
        "trace": span.trace_id,
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start": span.started_at,
        "end": span.ended_at,
        "duration": span.duration,
        "status": span.status,
        "tags": {k: span.tags[k] for k in sorted(span.tags)},
        "events": [
            {"at": at, "name": name, "attrs": {k: attrs[k] for k in sorted(attrs)}}
            for at, name, attrs in span.events
        ],
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON line per finished span, in completion order."""
    return canonical_jsonl(span_to_dict(s) for s in spans)


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (no numpy)."""
    if not ordered:
        return 0.0
    rank = max(1, round(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def stage_breakdown(spans: Iterable[Span], title: str = "") -> Table:
    """Aggregate spans by name: where did the request path spend time?"""
    by_name: dict = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    table = Table(
        headers=["span", "count", "p50 (ms)", "p99 (ms)", "total (ms)"],
        title=title or "per-stage span breakdown",
    )
    for name in sorted(by_name):
        durations = sorted(by_name[name])
        table.add(
            name,
            len(durations),
            f"{_percentile(durations, 50) * 1e3:.3f}",
            f"{_percentile(durations, 99) * 1e3:.3f}",
            f"{sum(durations) * 1e3:.3f}",
        )
    return table


def slowest_spans_table(
    spans: Iterable[Span], limit: int = 10, title: str = ""
) -> Table:
    """The ``limit`` longest spans with enough context to chase them."""
    ranked = sorted(
        spans, key=lambda s: (-s.duration, s.span_id)
    )[: max(limit, 0)]
    table = Table(
        headers=["ms", "span", "trace", "start (s)", "tags"],
        title=title or f"slowest {limit} spans",
    )
    for span in ranked:
        tags = ",".join(f"{k}={span.tags[k]}" for k in sorted(span.tags))
        table.add(
            f"{span.duration * 1e3:.3f}",
            span.name,
            span.trace_id,
            f"{span.started_at:.4f}",
            tags or "-",
        )
    return table


# -- metrics ------------------------------------------------------------------------


def _label_text(labels) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus-style text exposition of the whole registry."""
    lines: List[str] = []
    typed: set = set()

    def _type_header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for metric in registry.all_metrics():
        if isinstance(metric, Counter):
            _type_header(metric.name, "counter")
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} {metric.value:g}"
            )
        elif isinstance(metric, Gauge):
            _type_header(metric.name, "gauge")
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} {metric.value:g}"
            )
        elif isinstance(metric, Histogram):
            _type_header(metric.name, "histogram")
            cumulative = metric.cumulative()
            bounds = [f"{b:g}" for b in metric.buckets] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                labels = tuple(metric.labels) + (("le", bound),)
                lines.append(
                    f"{metric.name}_bucket{_label_text(labels)} {count}"
                )
            lines.append(
                f"{metric.name}_sum{_label_text(metric.labels)} "
                f"{metric.total:g}"
            )
            lines.append(
                f"{metric.name}_count{_label_text(metric.labels)} "
                f"{metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_tables(registry: MetricsRegistry) -> List[Table]:
    """Human tables: one for counters+gauges, one for histograms."""
    tables: List[Table] = []
    scalars = registry.counters() + registry.gauges()
    if scalars:
        table = Table(
            headers=["metric", "labels", "value"], title="counters and gauges"
        )
        for metric in sorted(scalars, key=lambda m: (m.name, m.labels)):
            labels = ",".join(f"{k}={v}" for k, v in metric.labels)
            table.add(metric.name, labels or "-", f"{metric.value:g}")
        tables.append(table)
    histograms = registry.histograms()
    if histograms:
        table = Table(
            headers=["histogram", "labels", "count", "p50", "p99", "mean"],
            title="histograms",
        )
        for metric in histograms:
            labels = ",".join(f"{k}={v}" for k, v in metric.labels)
            table.add(
                metric.name,
                labels or "-",
                metric.count,
                f"{metric.percentile(50):g}",
                f"{metric.percentile(99):g}",
                f"{metric.mean:.6g}",
            )
        tables.append(table)
    return tables
