"""The :class:`Observability` facade instrumented components hold.

One object bundles the metrics registry and the tracer behind the tiny
surface the instrumentation sites use (``obs.counter(...)``,
``obs.span(...)``, ``obs.start(...)``), so a component needs exactly
one nullable ``obs=`` constructor argument and one ``if self.obs is
not None`` guard per site — the uninstrumented hot path stays
allocation-free.

The clock is injected once, here, and shared by every span and
timestamped event: in simulations it is the discrete-event clock, so
exports are deterministic (see DESIGN.md §8).  Components never pass
their own clocks to the observability layer — one run, one time base.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.obs.export import prometheus_text, spans_to_jsonl
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span, Tracer

__all__ = ["Observability"]


class Observability:
    """Metrics + tracing over one injected clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self._clock)

    def now(self) -> float:
        return self._clock()

    # -- metrics shorthand --------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        return self.metrics.histogram(name, buckets=buckets, **labels)

    # -- tracing shorthand --------------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None, **tags):
        """Context-manager span (sync call chains)."""
        return self.tracer.span(name, parent=parent, **tags)

    def start(self, name: str, parent: Optional[Span] = None, **tags) -> Span:
        """Manual span (callback chains); caller must ``end()`` it."""
        return self.tracer.start(name, parent=parent, **tags)

    @property
    def spans(self) -> List[Span]:
        return self.tracer.finished

    # -- exports ------------------------------------------------------------------

    def export_spans_jsonl(self) -> str:
        return spans_to_jsonl(self.tracer.finished)

    def export_prometheus(self) -> str:
        return prometheus_text(self.metrics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Observability(metrics={len(self.metrics)}, "
            f"spans={len(self.tracer)})"
        )
