"""The ``python -m repro obs`` workload: a fully traced cluster run.

Stands up an instrumented :class:`~repro.cluster.SimulatedCluster`
(``instrument=True``), drives a mixed status/revocation workload
through it, and returns everything the CLI needs to show where time
goes: the :class:`~repro.obs.Observability` with every span and metric,
the client-visible history, and a consistency verdict that includes the
span-vs-history cross-validation
(:meth:`~repro.chaos.ConsistencyChecker.check_spans`).

The run is deterministic end to end — same seed, byte-identical
JSON-lines span export — because every timestamp is simulation time and
every random draw comes from the cluster's seeded
:class:`~repro.netsim.rand.RngRegistry`.  That property is asserted by
the determinism regression test and is what makes traces diffable
across runs: a changed span stream *is* a changed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chaos.checker import CheckReport, ConsistencyChecker
from repro.chaos.history import HistoryRecorder
from repro.cluster.frontend import ClusterConfig
from repro.cluster.simnet import SimulatedCluster
from repro.core.identifiers import PhotoIdentifier
from repro.obs.obs import Observability

__all__ = ["TracedRunReport", "run_traced_workload"]


@dataclass
class TracedRunReport:
    """Everything one traced demo run produced."""

    num_shards: int
    seed: int
    queries: int
    revocations_attempted: int
    revocations_acked: int
    answered: int
    obs: Observability
    history: HistoryRecorder
    check: CheckReport

    @property
    def availability(self) -> float:
        return self.answered / self.queries if self.queries else 1.0


def run_traced_workload(
    num_shards: int = 4,
    seed: int = 0,
    queries: int = 400,
    revocations: int = 12,
    revoked_fraction: float = 0.3,
    kill_shard: bool = False,
    config: Optional[ClusterConfig] = None,
) -> TracedRunReport:
    """Run a traced status/revocation workload; return the evidence.

    The default config exercises the resilience layer (deadline,
    retries, breakers, degraded reads, hinted handoff) so the trace
    contains retry/failover/degraded events worth looking at;
    ``kill_shard`` crashes one replica mid-run to guarantee some.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if queries < 1:
        raise ValueError("need at least one query")
    if config is None:
        config = ClusterConfig(
            replication_factor=min(3, num_shards),
            request_deadline=0.25,
            max_retries=1,
            breaker_threshold=3,
            degraded_reads=True,
            hinted_handoff=True,
        )
    cluster = SimulatedCluster(
        num_shards, config=config, seed=seed, rpc_timeout=0.1, instrument=True
    )
    sim = cluster.simulator
    recorder = HistoryRecorder(sim.clock().now)
    cluster.frontend.observer = recorder
    population = cluster.seed_population(
        max(queries, 200), revoked_fraction=revoked_fraction
    )
    rng = cluster.rngs.stream("obs-demo")
    indices = rng.integers(0, population.size, size=queries)
    answers: Dict[int, object] = {}

    def ask(slot: int, identifier: PhotoIdentifier) -> None:
        cluster.frontend.status_async(
            identifier, lambda answer: answers.__setitem__(slot, answer)
        )

    window = queries * 0.001
    for slot, index in enumerate(indices):
        sim.schedule(slot * 0.001, ask, slot, population.identifiers[index])

    revocations = min(revocations, population.size)
    acked: List[bool] = []
    victims = rng.choice(population.size, size=revocations, replace=False)
    for i, index in enumerate(sorted(victims)):
        identifier = population.identifiers[int(index)]
        at = (i + 1) * window / (revocations + 1)
        sim.schedule(
            at,
            cluster.frontend.revoke_async,
            identifier,
            population.owner,
            lambda outcome, error: acked.append(error is None),
        )
    if kill_shard:
        sim.schedule(window / 2, cluster.kill_shard, f"shard-{num_shards - 1}")
    sim.run(until=max(60.0, window * 2))

    r = cluster.frontend.config.replication_factor

    def placement(serial: int) -> List[str]:
        identifier = PhotoIdentifier(cluster.cluster_id, serial)
        return cluster.ring.replicas(identifier.to_compact(), r)

    checker = ConsistencyChecker(placement=placement)
    live = None
    if kill_shard:
        live = [s for s in cluster.shards if s != f"shard-{num_shards - 1}"]
    check = checker.check(recorder, cluster.replica_states(), live_shards=live)
    checker.check_spans(recorder, cluster.obs.spans, report=check)
    return TracedRunReport(
        num_shards=num_shards,
        seed=seed,
        queries=queries,
        revocations_attempted=revocations,
        revocations_acked=sum(acked),
        answered=len(answers),
        obs=cluster.obs,
        history=recorder,
        check=check,
    )
