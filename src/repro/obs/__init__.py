"""Deterministic observability: metrics registry + request tracing.

The paper's quantitative story (§4.3 viewing latency, §4.4 ledger
load) is about *where time and load go* in the revocation pipeline.
This package makes that question answerable inside any run — bench,
chaos harness, or demo — without changing the run's behaviour:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms in a :class:`MetricsRegistry`.
* :mod:`repro.obs.tracing` — ``trace_id``/``span_id``/parent spans
  with tags and timestamped events, threaded through extension →
  proxy → frontend → replication → shard.
* :mod:`repro.obs.export` — JSON-lines span dumps, Prometheus-style
  text exposition, and human tables via
  :mod:`repro.metrics.reporting`.
* :mod:`repro.obs.obs` — the :class:`Observability` facade components
  take as a nullable ``obs=`` hook; with ``obs=None`` the hot path
  allocates nothing (the E20 bench holds the overhead under 5% p50).

**The determinism rule:** every timestamp comes from the injected
clock (the discrete-event simulator's in every experiment), never from
wall time, and ids are sequential — so two runs of the same seeded
workload export byte-identical JSON-lines.  That rule is what lets the
chaos checker cross-validate spans against the client-visible history
(:meth:`repro.chaos.ConsistencyChecker.check_spans`).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Tracer
from repro.obs.export import (
    metrics_tables,
    prometheus_text,
    slowest_spans_table,
    span_to_dict,
    spans_to_jsonl,
    stage_breakdown,
)
from repro.obs.obs import Observability

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "metrics_tables",
    "prometheus_text",
    "slowest_spans_table",
    "span_to_dict",
    "spans_to_jsonl",
    "stage_breakdown",
    "Observability",
]
