"""Deterministic metric primitives: counters, gauges, histograms.

The registry is the write side of the observability layer
(:mod:`repro.obs`): instrumented components look up a metric by name
plus labels and mutate it in place.  Three rules keep the layer honest:

* **Determinism** — metrics hold pure accumulations of what the caller
  observed; nothing here reads a clock or an RNG.  Two runs of the same
  seeded workload produce identical registries (the regression test in
  ``tests/obs`` enforces byte-identical exports).
* **Fixed buckets** — histograms are declared with their bucket upper
  bounds up front (Prometheus-style cumulative-le semantics), so
  exports never depend on the order or range of observations.
* **No dependencies** — plain Python only; the registry must be
  importable from the innermost layers (cluster, resilience) without
  dragging anything along.

Identity is ``(name, sorted labels)``.  Registering the same name with
a different metric type (or a histogram with different buckets) is a
programming error and raises immediately.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bounds for request latencies, in seconds.  Spans
#: the sub-millisecond LAN hop up through multi-second chaos stalls.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, open breakers)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative-``le`` export semantics.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest.  ``counts[i]`` is the
    number of observations ``<= buckets[i]`` minus those in earlier
    buckets (i.e. per-bucket, not cumulative, internally); exporters
    accumulate.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: LabelItems = (),
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[int]:
        """Counts as cumulative ``<= bound`` values, +Inf last."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile from bucket boundaries.

        Returns the upper bound of the bucket holding the target rank
        (the last finite bound for the +Inf bucket) — a conservative,
        deterministic estimate that never interpolates, so identical
        runs report identical values.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(q / 100.0 * self.count)))
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= rank:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]  # pragma: no cover - rank <= count


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by name and labels."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._types: Dict[str, type] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    def _get(self, cls: type, name: str, labels: Dict[str, object], **kwargs):
        seen = self._types.get(name)
        if seen is not None and seen is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {seen.__name__}, "
                f"cannot re-register as {cls.__name__}"
            )
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        seen = self._buckets.get(name)
        if seen is not None and seen != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with buckets {seen}"
            )
        metric = self._get(Histogram, name, labels, buckets=bounds)
        self._buckets[name] = metric.buckets
        return metric

    # -- read side ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def all_metrics(self) -> List[object]:
        """Every metric, sorted by (name, labels) — the export order."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def counters(self) -> List[Counter]:
        return [m for m in self.all_metrics() if isinstance(m, Counter)]

    def gauges(self) -> List[Gauge]:
        return [m for m in self.all_metrics() if isinstance(m, Gauge)]

    def histograms(self) -> List[Histogram]:
        return [m for m in self.all_metrics() if isinstance(m, Histogram)]

    def get(self, name: str, **labels):
        """Fetch a metric if it exists (test/report convenience)."""
        return self._metrics.get((name, _label_items(labels)))

    def value(self, name: str, **labels) -> float:
        """A counter/gauge's value, or 0.0 when never touched."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(
            m.value
            for (n, _), m in self._metrics.items()
            if n == name and isinstance(m, Counter)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry(metrics={len(self._metrics)})"
