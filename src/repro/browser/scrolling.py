"""Scroll-session model: does IRS validation cause visible jank?

Section 4.3's prototype evidence is about *scrolling*: "we did not
notice additional delay when scrolling through a variety of web sites
containing claimed images."  The page-load model answers the initial-
render question; this model answers the scrolling one.

An infinite-feed page lays images out in rows.  The viewport moves down
at a constant scroll speed; the browser prefetches images a margin
ahead of the viewport (as real lazy-loading browsers do) over a
connection pool, and IRS checks are issued at metadata arrival.  An
image *janks* if it is not ready (downloaded + validated) when its row
enters the viewport.

Outputs: jank rate and jank durations, with and without IRS, as a
function of scroll speed and check latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.netsim.latency import LatencyModel

__all__ = ["ScrollFeed", "ScrollSession", "ScrollResult"]


@dataclass
class ScrollFeed:
    """An infinite-scroll feed of images.

    Attributes
    ----------
    image_sizes:
        Transfer size per image, in feed order.
    labeled:
        Per-image flag: does it carry an IRS label (=> needs a check)?
    images_per_row / row_height_px:
        Grid geometry.
    metadata_prefix_bytes:
        Bytes into each transfer where IRS metadata is readable.
    """

    image_sizes: List[int]
    labeled: List[bool]
    images_per_row: int = 3
    row_height_px: float = 300.0
    metadata_prefix_bytes: int = 2048

    def __post_init__(self) -> None:
        if len(self.image_sizes) != len(self.labeled):
            raise ValueError("image_sizes and labeled must align")
        if self.images_per_row < 1 or self.row_height_px <= 0:
            raise ValueError("invalid grid geometry")

    @property
    def num_images(self) -> int:
        return len(self.image_sizes)

    def row_of(self, index: int) -> int:
        return index // self.images_per_row

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        num_images: int = 300,
        labeled_fraction: float = 1.0,
        median_bytes: float = 150_000,
    ) -> "ScrollFeed":
        sizes = np.clip(
            rng.lognormal(np.log(median_bytes), 0.5, size=num_images),
            5_000,
            2_000_000,
        ).astype(int)
        labeled = (rng.uniform(size=num_images) < labeled_fraction).tolist()
        return cls(image_sizes=sizes.tolist(), labeled=labeled)


@dataclass
class ScrollResult:
    """Per-session jank metrics."""

    visible_times: List[float] = field(default_factory=list)
    ready_times: List[float] = field(default_factory=list)
    checks_issued: int = 0

    @property
    def jank_durations(self) -> np.ndarray:
        visible = np.asarray(self.visible_times)
        ready = np.asarray(self.ready_times)
        return np.maximum(0.0, ready - visible)

    @property
    def jank_rate(self) -> float:
        """Fraction of images not ready when they entered the viewport.

        Sub-10ms lateness is counted as ready: it is within one frame.
        """
        jank = self.jank_durations
        return float((jank > 0.010).mean()) if jank.size else 0.0

    @property
    def mean_jank_ms(self) -> float:
        jank = self.jank_durations
        return float(jank.mean() * 1000) if jank.size else 0.0

    @property
    def p99_jank_ms(self) -> float:
        jank = self.jank_durations
        return float(np.percentile(jank, 99) * 1000) if jank.size else 0.0


class ScrollSession:
    """Simulates one user scrolling a feed.

    Parameters
    ----------
    scroll_speed_px_s:
        Viewport speed; ~800 px/s is brisk continuous scrolling.
    viewport_px / prefetch_margin_px:
        Viewport height and how far ahead the browser starts fetches
        (lazy-loading browsers use ~1-3 viewport heights).
    bandwidth_bps / connections / rtt:
        Transfer model (per-connection bandwidth, pool, per-fetch RTT).
    check_latency:
        IRS check latency model; None disables checks entirely.
    start_delay_s:
        Dwell time on the initial screen before scrolling begins.  The
        first screenful's readiness is page *load* (the E1/E2 models),
        not scroll jank, so its deadline is the start of scrolling.
    """

    def __init__(
        self,
        rtt: LatencyModel,
        check_latency: Optional[LatencyModel] = None,
        scroll_speed_px_s: float = 800.0,
        viewport_px: float = 900.0,
        prefetch_margin_px: float = 1800.0,
        bandwidth_bps: float = 25e6 / 6,
        connections: int = 6,
        start_delay_s: float = 2.0,
    ):
        if scroll_speed_px_s <= 0 or viewport_px <= 0 or prefetch_margin_px < 0:
            raise ValueError("invalid scroll geometry")
        if bandwidth_bps <= 0 or connections < 1:
            raise ValueError("invalid transfer model")
        if start_delay_s < 0:
            raise ValueError("start delay cannot be negative")
        self.rtt = rtt
        self.check_latency = check_latency
        self.scroll_speed = float(scroll_speed_px_s)
        self.viewport_px = float(viewport_px)
        self.prefetch_margin_px = float(prefetch_margin_px)
        self.bandwidth_bps = float(bandwidth_bps)
        self.connections = int(connections)
        self.start_delay_s = float(start_delay_s)

    def _transfer(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps

    def run(self, feed: ScrollFeed, rng: np.random.Generator) -> ScrollResult:
        """Scroll the whole feed; returns jank metrics.

        Time 0 is when scrolling starts with the viewport at the top.
        Images in the first viewport+margin are fetchable immediately.
        """
        result = ScrollResult()
        # Check latencies draw from a child stream (seeded from the
        # main one unconditionally) so checks-on and checks-off runs
        # of the same seed see identical RTT sequences.
        check_rng = np.random.default_rng(int(rng.integers(2**63)))
        # Per-connection next-free time.
        pool = [0.0] * self.connections
        for index in range(feed.num_images):
            row_top = feed.row_of(index) * feed.row_height_px
            # Visible when the viewport bottom reaches the row top;
            # scrolling starts after the dwell on the first screen.
            visible_at = self.start_delay_s + max(
                0.0, (row_top - self.viewport_px) / self.scroll_speed
            )
            # Fetch eligible when within the prefetch margin (fetching
            # begins immediately at t=0, during the dwell).
            fetch_eligible = max(
                0.0,
                (row_top - self.viewport_px - self.prefetch_margin_px)
                / self.scroll_speed,
            )
            start = max(fetch_eligible, heapq.heappop(pool))
            rtt = self.rtt.sample(rng)
            metadata_at = start + rtt + self._transfer(feed.metadata_prefix_bytes)
            download_done = start + rtt + self._transfer(feed.image_sizes[index])
            heapq.heappush(pool, download_done)
            ready = download_done
            if self.check_latency is not None and feed.labeled[index]:
                result.checks_issued += 1
                check_done = metadata_at + self.check_latency.sample(check_rng)
                ready = max(ready, check_done)
            result.visible_times.append(visible_at)
            result.ready_times.append(ready)
        return result

    def compare(
        self, feed: ScrollFeed, seed: int
    ) -> tuple[ScrollResult, ScrollResult]:
        """(with_checks, without_checks) under identical network draws.

        RTT draws are consumed identically in both runs; check draws
        come from an independent stream.
        """
        with_checks = self.run(feed, np.random.default_rng(seed))
        bare = ScrollSession(
            rtt=self.rtt,
            check_latency=None,
            scroll_speed_px_s=self.scroll_speed,
            viewport_px=self.viewport_px,
            prefetch_margin_px=self.prefetch_margin_px,
            bandwidth_bps=self.bandwidth_bps,
            connections=self.connections,
            start_delay_s=self.start_delay_s,
        )
        without = bare.run(feed, np.random.default_rng(seed))
        return with_checks, without
