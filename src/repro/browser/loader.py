"""Critical-rendering-path page-load model (section 4.3, experiments E1/E2).

The model reproduces the mechanics behind the paper's latency argument:

* The browser fetches HTML first, then render-blocking CSS/JS, then
  images over a fixed-size connection pool (6 parallel connections,
  like HTTP/1.1 browsers; the conclusions are insensitive to this).
* Each fetch costs one RTT plus transfer time at per-connection
  bandwidth.
* With IRS enabled, every *labeled* image needs a revocation check
  before rendering.  Two scheduling modes:

  - ``BLOCKING``: the check starts only after the image fully
    downloads (a naive extension) — check latency adds directly.
  - ``PIPELINED``: the check is issued as soon as the metadata prefix
    arrives ("one can generally check a photo as soon as its metadata
    has been downloaded").  The check overlaps the remaining transfer,
    so it delays rendering only when check latency exceeds the
    remaining download time — the paper's pinterest observation that
    checks under ~250 ms add **zero** render delay.

The model is analytic/deterministic given sampled latencies, which
keeps E1/E2 fast while preserving the overlap structure that the claim
is actually about.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.browser.page import Page
from repro.netsim.latency import LatencyModel

__all__ = ["PageLoadModel", "PageLoadResult", "CheckMode", "ImageTiming"]


class CheckMode(enum.Enum):
    """When revocation checks are issued relative to image transfers."""

    OFF = "off"
    BLOCKING = "blocking"
    PIPELINED = "pipelined"


@dataclass
class ImageTiming:
    """Per-image milestones (seconds from navigation start)."""

    name: str
    fetch_start: float
    metadata_at: float
    download_done: float
    check_done: Optional[float]
    rendered_at: float

    @property
    def check_delay(self) -> float:
        """Render delay attributable to the revocation check."""
        return max(0.0, self.rendered_at - self.download_done)


@dataclass
class PageLoadResult:
    """Milestones for a whole page load."""

    first_contentful_paint: float
    images: List[ImageTiming] = field(default_factory=list)
    page_complete: float = 0.0
    checks_issued: int = 0

    @property
    def total_check_delay(self) -> float:
        return sum(img.check_delay for img in self.images)

    @property
    def max_check_delay(self) -> float:
        return max((img.check_delay for img in self.images), default=0.0)


class PageLoadModel:
    """Simulates one page load.

    Parameters
    ----------
    bandwidth_bps:
        Per-connection bandwidth (25 Mbps default: fixed-broadband
        median of the Web Almanac era).
    rtt:
        Round-trip latency model to the content server.
    connections:
        Parallel connection pool size.
    check_latency:
        Latency model for one revocation check (browser->proxy->maybe
        ledger and back).  Ignored when ``mode`` is OFF.
    mode:
        Check scheduling mode.
    """

    def __init__(
        self,
        rtt: LatencyModel,
        bandwidth_bps: float = 25e6,
        connections: int = 6,
        check_latency: Optional[LatencyModel] = None,
        mode: CheckMode = CheckMode.OFF,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if connections < 1:
            raise ValueError("need at least one connection")
        if mode is not CheckMode.OFF and check_latency is None:
            raise ValueError("check_latency required when checks are enabled")
        self.rtt = rtt
        self.bandwidth_bps = float(bandwidth_bps)
        self.connections = int(connections)
        self.check_latency = check_latency
        self.mode = mode

    def _transfer_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps

    def load(self, page: Page, rng: np.random.Generator) -> PageLoadResult:
        """Simulate loading ``page``; returns all milestones.

        All fetch RTTs are pre-sampled in document order *before* any
        check latencies, so a checks-on run and a checks-off run from
        the same seed see identical network conditions and differ only
        by the checks themselves.
        """
        fetch_rtts = self.rtt.sample_many(rng, 1 + len(page.aux) + len(page.images))
        rtt_iter = iter(fetch_rtts)

        # 1. HTML (one connection, blocking everything).
        html_done = next(rtt_iter) + self._transfer_time(page.html_bytes)

        # 2. Render-blocking CSS/JS over the pool.
        pool = [html_done] * self.connections  # per-connection free time
        aux_done = html_done
        for resource in page.aux:
            start = heapq.heappop(pool)
            done = start + next(rtt_iter) + self._transfer_time(
                resource.size_bytes
            )
            heapq.heappush(pool, done)
            aux_done = max(aux_done, done)
        fcp = aux_done  # first paint once blocking resources are in

        # 3. Images over the pool, greedy in document order.
        pool = [aux_done] * self.connections
        timings: List[ImageTiming] = []
        checks_issued = 0
        for image in page.images:
            start = heapq.heappop(pool)
            rtt = next(rtt_iter)
            metadata_at = start + rtt + self._transfer_time(
                image.metadata_prefix_bytes
            )
            download_done = start + rtt + self._transfer_time(image.size_bytes)
            heapq.heappush(pool, download_done)

            check_done: Optional[float] = None
            if self.mode is not CheckMode.OFF and image.labeled:
                checks_issued += 1
                latency = self.check_latency.sample(rng)
                if self.mode is CheckMode.PIPELINED:
                    check_done = metadata_at + latency
                else:
                    check_done = download_done + latency
            rendered_at = (
                max(download_done, check_done)
                if check_done is not None
                else download_done
            )
            timings.append(
                ImageTiming(
                    name=image.name,
                    fetch_start=start,
                    metadata_at=metadata_at,
                    download_done=download_done,
                    check_done=check_done,
                    rendered_at=rendered_at,
                )
            )

        page_complete = max(
            [fcp] + [t.rendered_at for t in timings], default=fcp
        )
        return PageLoadResult(
            first_contentful_paint=fcp,
            images=timings,
            page_complete=page_complete,
            checks_issued=checks_issued,
        )

    def compare_against_baseline(
        self, page: Page, rng_seed: int
    ) -> tuple[PageLoadResult, PageLoadResult, float]:
        """Load with checks and without, using identical network draws.

        Returns (with_checks, baseline, added_page_time).  The two runs
        share a seed so fetch times are identical and any difference is
        attributable to checks alone.
        """
        with_checks = self.load(page, np.random.default_rng(rng_seed))
        baseline_model = PageLoadModel(
            rtt=self.rtt,
            bandwidth_bps=self.bandwidth_bps,
            connections=self.connections,
            mode=CheckMode.OFF,
        )
        baseline = baseline_model.load(page, np.random.default_rng(rng_seed))
        added = with_checks.page_complete - baseline.page_complete
        return with_checks, baseline, added
