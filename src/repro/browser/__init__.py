"""Browser-side IRS: the bootstrap phase's first-mover component.

Section 4.1 proposes that privacy-focused browser vendors adopt IRS by
shipping extension support and running a ledger.  This package models
the browser side:

* :mod:`repro.browser.page` -- web pages as resource graphs, with a
  pinterest-like photo-heavy page generator hook.
* :mod:`repro.browser.loader` -- a critical-rendering-path page-load
  model that answers section 4.3's latency questions: what do
  revocation checks add to render time, blocking vs pipelined?
* :mod:`repro.browser.extension` -- the IRS browser extension: a
  viewing-posture validator with a local result cache and an optional
  in-browser Bloom filter (section 4.4's early-adoption variant).
* :mod:`repro.browser.indicator` -- site marking ("browsers could mark
  such sites (as they do with TLS icons)", section 4.4).
"""

from repro.browser.page import ImageResource, AuxResource, Page
from repro.browser.loader import PageLoadModel, PageLoadResult, CheckMode
from repro.browser.extension import IrsBrowserExtension, ExtensionStats
from repro.browser.indicator import SiteIndicator, SiteRating, SiteReputation

__all__ = [
    "ImageResource",
    "AuxResource",
    "Page",
    "PageLoadModel",
    "PageLoadResult",
    "CheckMode",
    "IrsBrowserExtension",
    "ExtensionStats",
    "SiteIndicator",
    "SiteRating",
    "SiteReputation",
]
