"""Site marking and reputation.

Section 4.4: "Not all sites will adopt IRS after the bootstrap phase,
but their decision to not respect owner-privacy will be known because
browsers could mark such sites (as they do with TLS icons), third-party
rating services could publicize their lack of adoption, and search
engines might lower their rankings."

:class:`SiteIndicator` is the browser-side icon logic (per-site rating
derived from observed behaviour); :class:`SiteReputation` is the
third-party rating service aggregating reports from many browsers.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["SiteRating", "SiteIndicator", "SiteReputation"]


class SiteRating(enum.Enum):
    """The icon shown next to the address bar."""

    SUPPORTS_IRS = "supports_irs"  # green: preserves labels, honors revocation
    PARTIAL = "partial"  # yellow: labels sometimes stripped
    NO_SUPPORT = "no_support"  # grey/red: strips labels / serves revoked
    UNKNOWN = "unknown"  # not enough observations


@dataclass
class _SiteObservations:
    labeled_served: int = 0
    labels_stripped: int = 0
    revoked_served: int = 0


class SiteIndicator:
    """Derives a per-site rating from what the extension observes.

    Observations come from the extension: when a photo known to be
    claimed arrives without its label, the site stripped it; when a
    photo the ledger says is revoked is served at all, the site is not
    rechecking.
    """

    def __init__(self, min_observations: int = 5):
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.min_observations = int(min_observations)
        self._sites: Dict[str, _SiteObservations] = defaultdict(_SiteObservations)

    def observe_labeled_photo(self, site: str) -> None:
        self._sites[site].labeled_served += 1

    def observe_stripped_label(self, site: str) -> None:
        self._sites[site].labels_stripped += 1

    def observe_revoked_served(self, site: str) -> None:
        self._sites[site].revoked_served += 1

    def observations(self, site: str) -> int:
        obs = self._sites[site]
        return obs.labeled_served + obs.labels_stripped + obs.revoked_served

    def rating(self, site: str) -> SiteRating:
        obs = self._sites[site]
        total = self.observations(site)
        if total < self.min_observations:
            return SiteRating.UNKNOWN
        strip_rate = obs.labels_stripped / total
        revoked_rate = obs.revoked_served / total
        if revoked_rate > 0.02 or strip_rate > 0.5:
            return SiteRating.NO_SUPPORT
        if strip_rate > 0.05:
            return SiteRating.PARTIAL
        return SiteRating.SUPPORTS_IRS


class SiteReputation:
    """Third-party rating service: aggregates many browsers' indicators."""

    def __init__(self):
        self._votes: Dict[str, Dict[SiteRating, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def report(self, site: str, rating: SiteRating) -> None:
        """One browser reports its local rating for a site."""
        if rating is SiteRating.UNKNOWN:
            return  # unknowns carry no information
        self._votes[site][rating] += 1

    def consensus(self, site: str) -> SiteRating:
        """Majority rating, UNKNOWN when nobody reported."""
        votes = self._votes.get(site)
        if not votes:
            return SiteRating.UNKNOWN
        return max(votes.items(), key=lambda item: (item[1], item[0].value))[0]

    def sites_rated(self) -> int:
        return len(self._votes)

    def search_ranking_penalty(self, site: str) -> float:
        """Ranking multiplier a search engine might apply (1.0 = none)."""
        rating = self.consensus(site)
        return {
            SiteRating.SUPPORTS_IRS: 1.0,
            SiteRating.PARTIAL: 0.9,
            SiteRating.NO_SUPPORT: 0.7,
            SiteRating.UNKNOWN: 1.0,
        }[rating]
