"""The IRS browser extension (sections 4.1-4.4).

"We built a prototype ledger and browser extension that performed
revocation checks" — this class is that prototype's logic:

* viewing-posture validation (metadata-driven, fail-open);
* a local TTL cache of check results (repeat views of the same photo,
  e.g. while scrolling, cost nothing);
* an optional in-browser Bloom filter ("during early adoption ... one
  could use the same strategy to reduce the load on the proxies by
  inserting a Bloom filter in browsers themselves", section 4.4);
* site marking via :mod:`repro.browser.indicator`.

The extension talks to a *status source* — a proxy in the bootstrap
deployment, or a registry directly in the naive/private-unfriendly
configuration — through one callable, so experiments swap wiring
freely.

When the status source is unreachable the extension can degrade
instead of raising (``on_unavailable='degrade'``).  Degradation is
fail-closed: a check is only issued after the local filter said
"might be revoked", so the degraded decision blocks the image rather
than letting an outage imply "valid".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import LedgerUnavailableError
from repro.core.identifiers import IdentifierError, PhotoIdentifier
from repro.core.labeling import read_label
from repro.media.image import Photo
from repro.media.watermark import WatermarkCodec
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet

__all__ = ["IrsBrowserExtension", "ExtensionStats", "DisplayDecision"]


@dataclass
class ExtensionStats:
    images_seen: int = 0
    unlabeled: int = 0
    cache_hits: int = 0
    filter_short_circuits: int = 0
    checks_sent: int = 0
    blocked: int = 0
    freshness_proofs_accepted: int = 0
    degraded_blocks: int = 0


@dataclass(frozen=True)
class DisplayDecision:
    """Whether to display an image, and why."""

    display: bool
    reason: str
    identifier: Optional[PhotoIdentifier] = None


#: Status source: identifier -> object with a boolean ``revoked`` field
#: (a StatusProof from a registry or a ProxyAnswer from a proxy).
StatusFn = Callable[[PhotoIdentifier], object]


class IrsBrowserExtension:
    """Per-browser IRS support.

    Parameters
    ----------
    status_source:
        Where checks go (proxy or registry adapter).
    cache:
        Local TTL cache of (identifier -> revoked) results.
    local_filter:
        Optional in-browser Bloom filter set (early-adoption variant).
    watermark_codec:
        Used only when ``check_watermarks`` is True; the default
        viewing path trusts metadata (cheap) per section 4.3's
        performance goals.
    check_watermarks:
        Extract watermarks on metadata-less images.  Slower, but
        catches labels that survived metadata stripping; requires a
        registry for compact-identifier resolution.
    registry:
        Needed to resolve watermark-only labels and to verify
        aggregator freshness proofs.
    accept_freshness_proofs:
        Trust a valid, fresh aggregator-attached status proof
        (section 3.2) instead of issuing a check.  Requires a registry
        (to find the signing ledger's key) and a clock.
    freshness_max_age:
        Maximum accepted proof age, seconds.
    clock:
        Time source for freshness evaluation.
    on_unavailable:
        ``'raise'`` (default) propagates
        :class:`~repro.core.errors.LedgerUnavailableError` from the
        status source; ``'degrade'`` converts it into a fail-closed
        block (the check only ran because the filter said "might be
        revoked").
    obs:
        Optional :class:`~repro.obs.Observability`.  Opens an
        ``extension.check`` span per decision (the root of the
        extension → proxy → ledger trace when the proxy shares the
        same obs) and mirrors the stats counters into
        ``extension_*`` metrics.  None (default) disables all
        instrumentation.
    """

    def __init__(
        self,
        status_source: StatusFn,
        cache: Optional[TtlLruCache] = None,
        local_filter: Optional[ProxyFilterSet] = None,
        watermark_codec: Optional[WatermarkCodec] = None,
        check_watermarks: bool = False,
        registry=None,
        accept_freshness_proofs: bool = False,
        freshness_max_age: float = 3600.0,
        clock=None,
        on_unavailable: str = "raise",
        obs=None,
    ):
        if on_unavailable not in ("raise", "degrade"):
            raise ValueError(
                "on_unavailable must be 'raise' or 'degrade', "
                f"got {on_unavailable!r}"
            )
        self._status = status_source
        self.cache = cache
        self.local_filter = local_filter
        self.codec = watermark_codec or WatermarkCodec(payload_len=12)
        self.check_watermarks = check_watermarks
        self._registry = registry
        self.accept_freshness_proofs = accept_freshness_proofs
        self.freshness_max_age = float(freshness_max_age)
        self._clock = clock or (lambda: 0.0)
        self.on_unavailable = on_unavailable
        self.obs = obs
        self.stats = ExtensionStats()
        if accept_freshness_proofs and registry is None:
            raise ValueError(
                "accepting freshness proofs requires a registry to verify them"
            )

    # -- identifier discovery ----------------------------------------------------

    def _identify(self, photo: Photo) -> Optional[PhotoIdentifier]:
        raw = photo.metadata.irs_identifier
        if raw is not None:
            try:
                return PhotoIdentifier.from_string(raw)
            except IdentifierError:
                pass
        if self.check_watermarks:
            label = read_label(photo, self.codec, registry=self._registry)
            if label.watermark_identifier is not None:
                return label.watermark_identifier
        return None

    # -- the display hook -----------------------------------------------------------

    def on_image(self, photo: Photo) -> DisplayDecision:
        """Called for every image the page wants to render."""
        self.stats.images_seen += 1
        identifier = self._identify(photo)
        if identifier is None:
            self.stats.unlabeled += 1
            return DisplayDecision(display=True, reason="unlabeled")
        if self.accept_freshness_proofs:
            verdict = self._try_freshness_proof(photo, identifier)
            if verdict is not None:
                return verdict
        return self._decide(identifier)

    def _try_freshness_proof(
        self, photo: Photo, identifier: PhotoIdentifier
    ) -> Optional[DisplayDecision]:
        """Accept an aggregator-attached proof when valid and fresh.

        Returns None (fall through to a real check) when the proof is
        missing, malformed, for a different photo, stale, or fails
        signature verification -- a forged proof must never *weaken*
        the outcome.
        """
        from repro.ledger.proofs import StatusProof
        from repro.media.metadata import IRS_FRESHNESS_FIELD

        wire = photo.metadata.get(IRS_FRESHNESS_FIELD)
        if wire is None:
            return None
        try:
            proof = StatusProof.from_wire(wire)
        except (ValueError, TypeError):
            return None
        if proof.identifier != identifier.to_string():
            return None
        if not proof.is_fresh(self._clock(), self.freshness_max_age):
            return None
        ledger = self._registry.get(identifier.ledger_id)
        if ledger is None or proof.ledger_fingerprint != ledger.fingerprint:
            return None
        if not proof.verify(ledger.public_key):
            return None
        self.stats.freshness_proofs_accepted += 1
        return self._verdict(identifier, proof.revoked, "freshness proof")

    def check_identifier(self, identifier: PhotoIdentifier) -> DisplayDecision:
        """Check a known identifier (loader-integration fast path)."""
        self.stats.images_seen += 1
        return self._decide(identifier)

    def _decide(self, identifier: PhotoIdentifier) -> DisplayDecision:
        if self.obs is None:
            return self._decide_impl(identifier)
        self.obs.counter("extension_checks_total").inc()
        with self.obs.span(
            "extension.check", serial=identifier.serial
        ) as span:
            decision = self._decide_impl(identifier)
            span.set_tag(display=decision.display, reason=decision.reason)
            if not decision.display:
                self.obs.counter("extension_blocked_total").inc()
            self.obs.histogram("extension_check_latency_seconds").observe(
                self.obs.now() - span.started_at
            )
            return decision

    def _decide_impl(self, identifier: PhotoIdentifier) -> DisplayDecision:
        key = identifier.to_string()

        if self.local_filter is not None and not self.local_filter.might_be_revoked(
            identifier.to_compact()
        ):
            self.stats.filter_short_circuits += 1
            if self.obs is not None:
                self.obs.counter("extension_filter_short_circuits_total").inc()
            return DisplayDecision(
                display=True, reason="local filter miss", identifier=identifier
            )

        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                if self.obs is not None:
                    self.obs.counter("extension_cache_hits_total").inc()
                return self._verdict(identifier, bool(cached), "cache")

        self.stats.checks_sent += 1
        if self.obs is not None:
            self.obs.counter("extension_status_queries_total").inc()
        try:
            answer = self._status(identifier)
        except LedgerUnavailableError:
            if self.on_unavailable != "degrade":
                raise
            return self._degraded_block(identifier)
        revoked = bool(getattr(answer, "revoked"))
        if getattr(answer, "degraded", False):
            # A degraded upstream answer is conservative, not a real
            # verdict: surface it as a fail-closed block and keep it
            # out of the cache so recovery is observed promptly.
            if self.on_unavailable != "degrade":
                raise LedgerUnavailableError(
                    f"status source degraded for {key}"
                )
            return self._degraded_block(identifier)
        if self.cache is not None:
            self.cache.put(key, revoked)
        return self._verdict(identifier, revoked, "check")

    def _degraded_block(self, identifier: PhotoIdentifier) -> DisplayDecision:
        self.stats.degraded_blocks += 1
        self.stats.blocked += 1
        if self.obs is not None:
            self.obs.counter("extension_degraded_blocks_total").inc()
        return DisplayDecision(
            display=False,
            reason="ledger unreachable (degraded, fail-closed)",
            identifier=identifier,
        )

    def _verdict(
        self, identifier: PhotoIdentifier, revoked: bool, how: str
    ) -> DisplayDecision:
        if revoked:
            self.stats.blocked += 1
            return DisplayDecision(
                display=False,
                reason=f"revoked by owner ({how})",
                identifier=identifier,
            )
        return DisplayDecision(
            display=True, reason=f"not revoked ({how})", identifier=identifier
        )
