"""Web pages as resource collections.

The loader model needs sizes and label flags, not actual markup.  A
:class:`Page` is an HTML document plus auxiliary resources (CSS/JS,
render-blocking) plus images (each possibly IRS-labeled).  Image
metadata — where the IRS identifier lives — arrives within the first
``metadata_prefix_bytes`` of the transfer, which is what makes
pipelined revocation checks possible (section 4.3: "one can generally
check a photo as soon as its metadata has been downloaded").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.identifiers import PhotoIdentifier

__all__ = ["ImageResource", "AuxResource", "Page"]

#: Bytes of an image transfer that carry headers + metadata.  JPEG APP
#: segments (where EXIF/XMP live) precede scan data, so metadata is
#: available almost immediately.
DEFAULT_METADATA_PREFIX = 2048


@dataclass
class ImageResource:
    """One image on a page.

    Attributes
    ----------
    name:
        Resource identity (URL stand-in).
    size_bytes:
        Transfer size.
    identifier:
        IRS identifier when the image is labeled, else None.
    metadata_prefix_bytes:
        How much of the transfer must arrive before the IRS metadata is
        readable.
    """

    name: str
    size_bytes: int
    identifier: Optional[PhotoIdentifier] = None
    metadata_prefix_bytes: int = DEFAULT_METADATA_PREFIX

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("image size must be positive")
        self.metadata_prefix_bytes = min(self.metadata_prefix_bytes, self.size_bytes)

    @property
    def labeled(self) -> bool:
        return self.identifier is not None


@dataclass
class AuxResource:
    """A render-blocking auxiliary resource (CSS or JS)."""

    name: str
    size_bytes: int
    kind: str = "css"  # 'css' | 'js'

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("resource size must be positive")
        if self.kind not in ("css", "js"):
            raise ValueError("kind must be 'css' or 'js'")


@dataclass
class Page:
    """A page: HTML + blocking resources + images."""

    name: str
    html_bytes: int
    aux: List[AuxResource] = field(default_factory=list)
    images: List[ImageResource] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.html_bytes <= 0:
            raise ValueError("html size must be positive")

    @property
    def num_images(self) -> int:
        return len(self.images)

    @property
    def num_labeled_images(self) -> int:
        return sum(1 for img in self.images if img.labeled)

    @property
    def total_bytes(self) -> int:
        return (
            self.html_bytes
            + sum(r.size_bytes for r in self.aux)
            + sum(i.size_bytes for i in self.images)
        )
