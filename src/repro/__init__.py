"""repro: a reproduction of the Internet Revocation System (IRS).

Paper: "Global Content Revocation on the Internet: A Case Study in
Technology Ecosystem Transformation", Galstyan, McCauley, Farid,
Ratnasamy, Shenker -- HotNets '22.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` -- the IRS public API: claim / label / revoke /
  validate, plus one-call deployments.
* :mod:`repro.crypto` -- per-photo key pairs, timestamps, Merkle logs,
  payment tokens.
* :mod:`repro.filters` -- Bloom / counting / xor / binary-fuse filters,
  delta updates, analytic sizing.
* :mod:`repro.media` -- synthetic photos, metadata, DCT codec,
  transforms, QIM watermarks, perceptual hashing.
* :mod:`repro.ledger` -- ledgers, registry, proofs, filter export,
  appeals, honesty probes.
* :mod:`repro.netsim` -- discrete-event simulator, latency models.
* :mod:`repro.browser` -- page-load model, IRS extension, site marking.
* :mod:`repro.proxy` -- anonymizing/caching/filter-fronted proxies.
* :mod:`repro.aggregator` -- upload pipeline, robust-hash DB, periodic
  recheck.
* :mod:`repro.workload` -- populations, Zipf traffic, traces, pages.
* :mod:`repro.ecosystem` -- TET adoption dynamics.
* :mod:`repro.attacks` -- section-5 attackers, malicious ledgers,
  censorship scenarios.
* :mod:`repro.metrics` -- summaries and table reporting.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
