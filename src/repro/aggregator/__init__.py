"""Content aggregators: the eventual solution's adopters (section 3.2).

"Whenever a photo is uploaded to a content aggregator, the aggregator
checks with the associated ledger to make sure that the photo is not
revoked, and thereafter periodically rechecks the revocation status."

This package implements an IRS-supporting aggregator:

* :mod:`repro.aggregator.uploads` -- the upload pipeline: label
  agreement checks, revocation check, custodial claiming of unlabeled
  photos, derivative detection via the robust-hash database.
* :mod:`repro.aggregator.hashdb` -- "Aggregators could also keep a
  database of robust hashes of their current content and check all
  newly uploaded photos against this database."
* :mod:`repro.aggregator.recheck` -- periodic revalidation of hosted
  content, with signed freshness proofs attached to served photos.
* :mod:`repro.aggregator.aggregator` -- the site itself: hosting,
  serving, takedowns.
"""

from repro.aggregator.aggregator import ContentAggregator, AggregatorConfig, HostedPhoto
from repro.aggregator.uploads import UploadPipeline, UploadOutcome, UploadDecision
from repro.aggregator.hashdb import RobustHashDatabase, HashMatch
from repro.aggregator.recheck import PeriodicRechecker, RecheckReport

__all__ = [
    "ContentAggregator",
    "AggregatorConfig",
    "HostedPhoto",
    "UploadPipeline",
    "UploadOutcome",
    "UploadDecision",
    "RobustHashDatabase",
    "HashMatch",
    "PeriodicRechecker",
    "RecheckReport",
]
