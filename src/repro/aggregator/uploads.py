"""The upload pipeline: section 3.2's rules, step by step.

1. Inspect metadata and watermark.  "If they agree, the site then
   checks with the ledger (using the identifier); if the image has been
   revoked, the upload is denied."
2. "If the explicit metadata or watermark disagree or one of them is
   missing ... the upload is also denied."
3. "If a photo has neither a watermark or metadata indicating it has
   been claimed, the aggregator can either reject the photo or claim it
   (and watermark it) in a custodial role."
4. Robust-hash database check: a new upload perceptually matching
   hosted content must carry the matched original's label, "so that
   revoking the original will also remove images derived from it."

Legacy (non-IRS) aggregators accept everything and strip metadata.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.aggregator.aggregator import ContentAggregator, HostedPhoto
from repro.aggregator.hashdb import RobustHashDatabase
from repro.core.identifiers import PhotoIdentifier
from repro.core.labeling import LabelState, label_photo, read_label
from repro.core.owner import OwnerToolkit
from repro.ledger.ledger import Ledger
from repro.media.image import Photo
from repro.media.watermark import WatermarkCodec

__all__ = ["UploadPipeline", "UploadOutcome", "UploadDecision"]


class UploadDecision(enum.Enum):
    ACCEPTED = "accepted"
    ACCEPTED_CUSTODIAL = "accepted_custodial"
    DENIED_REVOKED = "denied_revoked"
    DENIED_LABEL_CONFLICT = "denied_label_conflict"
    DENIED_LABEL_PARTIAL = "denied_label_partial"
    DENIED_UNLABELED = "denied_unlabeled"
    DENIED_DERIVATIVE = "denied_derivative"

    @property
    def accepted(self) -> bool:
        return self in (UploadDecision.ACCEPTED, UploadDecision.ACCEPTED_CUSTODIAL)


@dataclass
class UploadOutcome:
    decision: UploadDecision
    detail: str
    hosted: Optional[HostedPhoto] = None
    identifier: Optional[PhotoIdentifier] = None


class UploadPipeline:
    """Processes uploads for one aggregator.

    Parameters
    ----------
    aggregator:
        The hosting site.
    custodial_ledger:
        Where custodial claims are registered (the aggregator's own
        ledger relationship).  Required when the aggregator's config
        enables custodial claims.
    custodial_toolkit:
        Owner toolkit acting for the aggregator when claiming
        custodially (holds the aggregator's keys).
    hash_database:
        Robust-hash database of hosted content; filled on accept.
    """

    def __init__(
        self,
        aggregator: ContentAggregator,
        watermark_codec: Optional[WatermarkCodec] = None,
        custodial_ledger: Optional[Ledger] = None,
        custodial_toolkit: Optional[OwnerToolkit] = None,
        hash_database: Optional[RobustHashDatabase] = None,
    ):
        self.aggregator = aggregator
        self.codec = watermark_codec or WatermarkCodec(payload_len=12)
        self.custodial_ledger = custodial_ledger
        self.custodial_toolkit = custodial_toolkit
        self.hash_database = hash_database
        self.uploads_processed = 0
        # Receipts for custodial claims, kept so the aggregator can
        # honour later revocation requests (the whole point of claiming
        # "in a custodial role so that it can later be revoked").
        self.custodial_receipts: dict = {}
        if aggregator.config.custodial_claims and (
            custodial_ledger is None or custodial_toolkit is None
        ):
            raise ValueError(
                "custodial claims enabled but no custodial ledger/toolkit given"
            )

    def upload(self, name: str, photo: Photo) -> UploadOutcome:
        """Run one upload through the pipeline."""
        self.uploads_processed += 1
        config = self.aggregator.config

        if not config.supports_irs:
            # Legacy site: accept everything, strip everything.
            hosted = self.aggregator.host(name, photo, identifier=None)
            return UploadOutcome(
                UploadDecision.ACCEPTED, "legacy aggregator, no checks", hosted
            )

        label = read_label(photo, self.codec, registry=self.aggregator.registry)

        if label.state is LabelState.DISAGREE:
            return UploadOutcome(
                UploadDecision.DENIED_LABEL_CONFLICT,
                "metadata and watermark identify different claims",
            )
        if label.state in (LabelState.METADATA_ONLY, LabelState.WATERMARK_ONLY):
            return UploadOutcome(
                UploadDecision.DENIED_LABEL_PARTIAL,
                f"one label channel missing ({label.state.value}); "
                "photo was modified in a way that lost labeling",
            )

        if label.state is LabelState.BOTH_AGREE:
            return self._handle_labeled(name, photo, label.identifier)

        return self._handle_unlabeled(name, photo)

    # -- labeled uploads -------------------------------------------------------------

    def _handle_labeled(
        self, name: str, photo: Photo, identifier: PhotoIdentifier
    ) -> UploadOutcome:
        proof = self.aggregator.registry.status(identifier)
        if proof.revoked:
            return UploadOutcome(
                UploadDecision.DENIED_REVOKED,
                "owner has revoked this photo",
                identifier=identifier,
            )
        hosted = self.aggregator.host(name, photo, identifier, proof=proof)
        if self.hash_database is not None:
            self.hash_database.add_photo(identifier, photo)
        return UploadOutcome(
            UploadDecision.ACCEPTED, "label verified, not revoked", hosted, identifier
        )

    # -- unlabeled uploads ---------------------------------------------------------------

    def _handle_unlabeled(self, name: str, photo: Photo) -> UploadOutcome:
        config = self.aggregator.config

        # Derivative check first: an unlabeled photo that perceptually
        # matches hosted labeled content is a stripped derivative; deny
        # and point at the original (uploader should carry its label).
        if config.check_hash_database and self.hash_database is not None:
            match = self.hash_database.find_match(photo)
            if match is not None:
                return UploadOutcome(
                    UploadDecision.DENIED_DERIVATIVE,
                    f"perceptually matches hosted claim {match.identifier} "
                    f"(distance {match.distance:.3f}); re-upload with the "
                    "original's label",
                    identifier=match.identifier,
                )

        if not config.custodial_claims:
            return UploadOutcome(
                UploadDecision.DENIED_UNLABELED,
                "unlabeled uploads are rejected by this site's policy",
            )

        # Custodial claim: the site claims and labels the photo itself
        # so it can be revoked later (e.g. via appeals).
        receipt, labeled = self.custodial_toolkit.claim_and_label(
            photo, self.custodial_ledger
        )
        record = self.custodial_ledger.record(receipt.identifier)
        record.custodial = True
        proof = self.aggregator.registry.status(receipt.identifier)
        hosted = self.aggregator.host(name, labeled, receipt.identifier, proof=proof)
        if self.hash_database is not None:
            self.hash_database.add_photo(receipt.identifier, labeled)
        self.custodial_receipts[name] = receipt
        return UploadOutcome(
            UploadDecision.ACCEPTED_CUSTODIAL,
            "unlabeled upload claimed custodially",
            hosted,
            receipt.identifier,
        )

    # -- custodial takedowns -------------------------------------------------------

    def revoke_custodial(self, name: str) -> None:
        """Honour a takedown request for a custodially claimed upload.

        The aggregator, holding the custodial key pair, revokes its own
        claim -- so the photo comes down here *and* anywhere else IRS
        participants encounter copies of it (they all resolve to the
        same custodial claim via the embedded label).
        """
        receipt = self.custodial_receipts.get(name)
        if receipt is None:
            raise KeyError(f"no custodial claim held for {name!r}")
        self.custodial_toolkit.revoke(receipt, self.custodial_ledger)
        self.aggregator.take_down(name, reason="custodial claim revoked on request")
