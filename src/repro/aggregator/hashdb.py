"""Robust-hash database of an aggregator's hosted content.

Section 3.2: aggregators "keep a database of robust hashes of their
current content and check all newly uploaded photos against this
database to ensure that they use the original metadata (so that
revoking the original will also remove images derived from it)."

Lookups are nearest-neighbour in Hamming space over 512-bit signatures.
The store keeps signatures in a packed numpy matrix so a lookup is one
vectorized XOR + popcount pass -- linear scan, but at ~10^6 hashes that
is milliseconds, and real deployments would swap in an ANN index behind
the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.identifiers import PhotoIdentifier
from repro.media.image import Photo
from repro.media.perceptual import (
    DEFAULT_MATCH_THRESHOLD,
    RobustHash,
    hamming_many,
    robust_hash,
)

__all__ = ["RobustHashDatabase", "HashMatch"]

_SIGNATURE_BYTES = 64  # 512 bits


@dataclass(frozen=True)
class HashMatch:
    """A database entry within threshold of a queried photo."""

    identifier: PhotoIdentifier
    distance: float


class RobustHashDatabase:
    """Maps robust hashes to the identifiers of hosted photos.

    One identifier may map to several rows: derivatives share their
    source's label (section 3.2's metadata-transfer convention), so an
    original and its memes are distinct signatures under one claim.
    """

    def __init__(self, match_threshold: float = DEFAULT_MATCH_THRESHOLD):
        self.match_threshold = float(match_threshold)
        self._matrix = np.zeros((0, _SIGNATURE_BYTES), dtype=np.uint8)
        self._identifiers: List[PhotoIdentifier] = []

    def __len__(self) -> int:
        return len(self._identifiers)

    def add(self, identifier: PhotoIdentifier, signature: RobustHash) -> None:
        row = np.frombuffer(signature.bits, dtype=np.uint8)[None, :]
        self._matrix = np.vstack([self._matrix, row])
        self._identifiers.append(identifier)

    def add_photo(self, identifier: PhotoIdentifier, photo: Photo) -> None:
        self.add(identifier, robust_hash(photo))

    def entries_for(self, identifier: PhotoIdentifier) -> int:
        """How many signatures are registered under an identifier."""
        return sum(1 for i in self._identifiers if i == identifier)

    def remove(self, identifier: PhotoIdentifier) -> None:
        """Remove *all* rows for an identifier (original + derivatives:
        they stand and fall together)."""
        keep = [i for i, ident in enumerate(self._identifiers) if ident != identifier]
        if len(keep) == len(self._identifiers):
            return
        self._matrix = self._matrix[keep, :]
        self._identifiers = [self._identifiers[i] for i in keep]

    def _distances(self, signature: RobustHash) -> np.ndarray:
        if len(self._identifiers) == 0:
            return np.zeros(0)
        # Popcount-table batch path; RobustHash.distance is the oracle
        # (tests/perf/test_vectorized_vs_scalar.py keeps them equal).
        return hamming_many(signature, self._matrix)

    def nearest(self, photo: Photo) -> Optional[HashMatch]:
        """Closest entry regardless of threshold, or None when empty."""
        distances = self._distances(robust_hash(photo))
        if distances.size == 0:
            return None
        best = int(np.argmin(distances))
        return HashMatch(
            identifier=self._identifiers[best], distance=float(distances[best])
        )

    def find_match(self, photo: Photo) -> Optional[HashMatch]:
        """Closest entry within the match threshold, or None."""
        match = self.nearest(photo)
        if match is None or match.distance > self.match_threshold:
            return None
        return match

    def matches(self, photo: Photo) -> List[HashMatch]:
        """All entries within threshold, nearest first."""
        distances = self._distances(robust_hash(photo))
        hits = np.nonzero(distances <= self.match_threshold)[0]
        results = [
            HashMatch(
                identifier=self._identifiers[int(i)], distance=float(distances[int(i)])
            )
            for i in hits
        ]
        results.sort(key=lambda m: m.distance)
        return results
