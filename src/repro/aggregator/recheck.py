"""Periodic revalidation of hosted content.

Section 3.2: aggregators check at upload "and thereafter periodically
recheck the revocation status".  Periodic rechecking is what gives IRS
its post-upload teeth -- a photo revoked *after* it was shared comes
down at the next sweep.  Nongoal #4 (no instantaneous revocation) is
the flip side: the recheck interval bounds revocation latency.

:class:`PeriodicRechecker` sweeps an aggregator's live labeled photos,
refreshes their status proofs, and takes down anything revoked.  It can
run standalone (tests call :meth:`run_sweep`) or scheduled inside the
discrete-event simulator (:meth:`schedule_on`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.aggregator.aggregator import ContentAggregator
from repro.netsim.simulator import Simulator

__all__ = ["PeriodicRechecker", "RecheckReport"]


@dataclass
class RecheckReport:
    """Outcome of one sweep."""

    swept: int = 0
    queries: int = 0
    takedowns: List[str] = field(default_factory=list)
    completed_at: float = 0.0

    @property
    def takedown_count(self) -> int:
        return len(self.takedowns)


class PeriodicRechecker:
    """Sweeps one aggregator's content against the ledgers."""

    def __init__(self, aggregator: ContentAggregator):
        self.aggregator = aggregator
        self.reports: List[RecheckReport] = []

    @property
    def total_takedowns(self) -> int:
        return sum(r.takedown_count for r in self.reports)

    def run_sweep(self) -> RecheckReport:
        """Check every live labeled photo; take down revoked ones.

        Queries are batched per hosting ledger (one
        :meth:`~repro.ledger.ledger.Ledger.status_batch` call each),
        the shape an aggregator-scale recheck would actually use.
        """
        report = RecheckReport(completed_at=self.aggregator.now())
        by_ledger: dict = {}
        for hosted in self.aggregator.live_photos():
            report.swept += 1
            if hosted.identifier is None:
                continue
            by_ledger.setdefault(hosted.identifier.ledger_id, []).append(hosted)
        for ledger_id, entries in sorted(by_ledger.items()):
            ledger = self.aggregator.registry.require(ledger_id)
            proofs = ledger.status_batch([h.identifier for h in entries])
            report.queries += len(proofs)
            for hosted, proof in zip(entries, proofs):
                hosted.last_proof = proof
                if proof.revoked:
                    self.aggregator.take_down(
                        hosted.name, reason="revoked by owner (periodic recheck)"
                    )
                    report.takedowns.append(hosted.name)
        self.reports.append(report)
        return report

    def schedule_on(
        self,
        simulator: Simulator,
        interval: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run sweeps every ``interval`` seconds of simulated time.

        ``interval`` defaults to the aggregator's configured
        ``recheck_interval``; sweeps stop after ``until`` when given.
        """
        period = interval if interval is not None else (
            self.aggregator.config.recheck_interval
        )
        if period <= 0:
            raise ValueError("recheck interval must be positive")

        def _sweep():
            self.run_sweep()
            next_time = simulator.now + period
            if until is None or next_time <= until:
                simulator.schedule(period, _sweep)

        simulator.schedule(period, _sweep)
