"""The content aggregator: hosting, serving, takedowns.

An IRS-supporting aggregator (section 3.2):

* accepts uploads through the :class:`~repro.aggregator.uploads.UploadPipeline`;
* preserves IRS metadata on hosted photos (stripping only non-IRS EXIF);
* attaches a signed freshness proof to every served photo ("it includes
  in metadata cryptographic proof that it has recently verified the
  non-revoked status of the photo");
* takes revoked photos down when the periodic recheck finds them.

A *non-supporting* aggregator -- today's behaviour, the bootstrap
phase's counterfactual -- is the same class with
``AggregatorConfig.legacy()``: strips all metadata, never checks,
serves everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.identifiers import PhotoIdentifier
from repro.ledger.proofs import StatusProof
from repro.ledger.registry import LedgerRegistry
from repro.media.image import Photo
from repro.media.metadata import IRS_FRESHNESS_FIELD

__all__ = ["ContentAggregator", "AggregatorConfig", "HostedPhoto", "ServeResult"]


@dataclass
class AggregatorConfig:
    """Aggregator policy.

    Attributes
    ----------
    supports_irs:
        Master switch: False models today's aggregators.
    custodial_claims:
        Claim unlabeled uploads in a custodial role (vs rejecting them).
    check_hash_database:
        Compare uploads against hosted content's robust hashes and
        force derivative uploads to carry the original's label.
    recheck_interval:
        Seconds between revocation rechecks of hosted content.
    preserve_irs_metadata:
        Keep ``irs:`` fields when stripping EXIF on upload.
    """

    supports_irs: bool = True
    custodial_claims: bool = True
    check_hash_database: bool = True
    recheck_interval: float = 3600.0
    preserve_irs_metadata: bool = True

    @classmethod
    def legacy(cls) -> "AggregatorConfig":
        """Today's aggregator: no IRS anywhere."""
        return cls(
            supports_irs=False,
            custodial_claims=False,
            check_hash_database=False,
            preserve_irs_metadata=False,
        )


@dataclass
class HostedPhoto:
    """One photo as hosted by the aggregator."""

    name: str
    photo: Photo
    identifier: Optional[PhotoIdentifier]
    uploaded_at: float
    last_proof: Optional[StatusProof] = None
    taken_down: bool = False
    takedown_reason: str = ""


@dataclass(frozen=True)
class ServeResult:
    """Outcome of a serve request."""

    served: bool
    photo: Optional[Photo] = None
    reason: str = ""


class ContentAggregator:
    """One content-hosting site."""

    def __init__(
        self,
        name: str,
        registry: LedgerRegistry,
        config: Optional[AggregatorConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.registry = registry
        self.config = config or AggregatorConfig()
        self._clock = clock or (lambda: 0.0)
        self._hosted: Dict[str, HostedPhoto] = {}
        self.serves = 0
        self.serves_denied = 0

    def now(self) -> float:
        return self._clock()

    # -- hosting ------------------------------------------------------------------

    def host(
        self,
        name: str,
        photo: Photo,
        identifier: Optional[PhotoIdentifier],
        proof: Optional[StatusProof] = None,
    ) -> HostedPhoto:
        """Store an accepted upload (called by the upload pipeline)."""
        if name in self._hosted:
            raise KeyError(f"photo name {name!r} already hosted")
        stored = photo.copy()
        stored.metadata = photo.metadata.stripped(
            preserve_irs=self.config.preserve_irs_metadata
        )
        if self.config.preserve_irs_metadata and identifier is not None:
            stored.metadata.irs_identifier = identifier.to_string()
        hosted = HostedPhoto(
            name=name,
            photo=stored,
            identifier=identifier,
            uploaded_at=self.now(),
            last_proof=proof,
        )
        self._hosted[name] = hosted
        return hosted

    def hosted(self, name: str) -> Optional[HostedPhoto]:
        return self._hosted.get(name)

    def hosted_photos(self) -> List[HostedPhoto]:
        return [self._hosted[name] for name in sorted(self._hosted)]

    def live_photos(self) -> List[HostedPhoto]:
        return [h for h in self.hosted_photos() if not h.taken_down]

    def __len__(self) -> int:
        return len(self._hosted)

    # -- serving -------------------------------------------------------------------

    def serve(self, name: str) -> ServeResult:
        """Serve a hosted photo to a viewer.

        IRS-supporting aggregators attach the latest freshness proof in
        the served photo's metadata.
        """
        hosted = self._hosted.get(name)
        if hosted is None:
            return ServeResult(served=False, reason="not found")
        if hosted.taken_down:
            self.serves_denied += 1
            return ServeResult(
                served=False, reason=f"taken down: {hosted.takedown_reason}"
            )
        self.serves += 1
        served = hosted.photo.copy()
        if self.config.supports_irs and hosted.last_proof is not None:
            # Section 3.2: "it includes in metadata cryptographic proof
            # that it has recently verified the non-revoked status".
            served.metadata.set(IRS_FRESHNESS_FIELD, hosted.last_proof.to_wire())
        return ServeResult(served=True, photo=served, reason="ok")

    # -- takedowns -------------------------------------------------------------------

    def take_down(self, name: str, reason: str) -> None:
        hosted = self._hosted.get(name)
        if hosted is None:
            raise KeyError(f"no hosted photo {name!r}")
        hosted.taken_down = True
        hosted.takedown_reason = reason

    def counts(self) -> Dict[str, int]:
        hosted = list(self._hosted.values())
        return {
            "hosted": len(hosted),
            "live": sum(1 for h in hosted if not h.taken_down),
            "taken_down": sum(1 for h in hosted if h.taken_down),
            "labeled": sum(1 for h in hosted if h.identifier is not None),
        }
