"""IRS core: the public API of the Internet Revocation System.

The four operations of section 3.1, as a library surface:

* **Claiming** -- :meth:`repro.core.owner.OwnerToolkit.claim` enters a
  photo into a ledger with cryptographic proof-of-ownership material.
* **Labeling** -- :meth:`repro.core.owner.OwnerToolkit.label` attaches
  the ledger identifier as explicit metadata *and* a robust watermark.
* **Revoking** -- :meth:`repro.core.owner.OwnerToolkit.revoke` flips the
  ledger flag after proving ownership.
* **Validating** -- :class:`repro.core.validation.Validator` checks a
  photo before display/save/share, implementing the section 3.2 policy
  (metadata and watermark must agree; disagreement or partial loss
  denies the action).

Quick start::

    from repro.core import IrsDeployment

    irs = IrsDeployment.create(seed=0)
    photo = irs.new_photo()
    receipt = irs.owner_toolkit.claim(photo, irs.ledger)
    labeled = irs.owner_toolkit.label(photo, receipt)
    irs.owner_toolkit.revoke(receipt, irs.ledger)
    result = irs.validator.validate(labeled)   # -> denied, photo revoked

Exports resolve lazily (PEP 562): ``repro.ledger`` imports
``repro.core.identifiers``, and eager re-exports here would close an
import cycle (core -> owner -> ledger -> core).
"""

from repro.core.identifiers import PhotoIdentifier, IdentifierError
from repro.core.errors import (
    IrsError,
    ClaimError,
    RevocationError,
    ValidationError,
)

__all__ = [
    "PhotoIdentifier",
    "IdentifierError",
    "IrsError",
    "ClaimError",
    "RevocationError",
    "ValidationError",
    "OwnerToolkit",
    "ClaimReceipt",
    "label_photo",
    "read_label",
    "LabelReadResult",
    "Validator",
    "ValidationResult",
    "ValidationDecision",
    "ValidationOutcome",
    "IrsDeployment",
    "VideoOwnerToolkit",
    "judge_video_appeal",
]

# Lazy exports: name -> (module, attribute).
_LAZY = {
    "OwnerToolkit": ("repro.core.owner", "OwnerToolkit"),
    "ClaimReceipt": ("repro.core.owner", "ClaimReceipt"),
    "label_photo": ("repro.core.labeling", "label_photo"),
    "read_label": ("repro.core.labeling", "read_label"),
    "LabelReadResult": ("repro.core.labeling", "LabelReadResult"),
    "Validator": ("repro.core.validation", "Validator"),
    "ValidationResult": ("repro.core.validation", "ValidationResult"),
    "ValidationDecision": ("repro.core.validation", "ValidationDecision"),
    "ValidationOutcome": ("repro.core.validation", "ValidationOutcome"),
    "IrsDeployment": ("repro.core.deployment", "IrsDeployment"),
    "VideoOwnerToolkit": ("repro.core.video_owner", "VideoOwnerToolkit"),
    "judge_video_appeal": ("repro.core.video_owner", "judge_video_appeal"),
}


def __getattr__(name: str):
    entry = _LAZY.get(name)
    if entry is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(entry[0])
    value = getattr(module, entry[1])
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
