"""The owner toolkit: camera-side software.

Section 3.2: "When taking a photo, the camera (or owner-controlled
software) generates a unique key pair for the photo, hashes the photo,
and then encrypts the hash with the private key.  The owner then claims
the photo with a ledger ... The owner safely stores the original photo,
the private key, and the identifier, and then labels the photo."

:class:`OwnerToolkit` implements that flow: per-photo key pairs, claim,
label, revoke/unrevoke, and preparing appeals.  The toolkit never
reveals the owner's identity to anyone -- ownership is purely key
possession (Goal #1(iv)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.errors import ClaimError
from repro.core.identifiers import PhotoIdentifier
from repro.core.labeling import label_photo
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampToken
from repro.crypto.tokens import PaymentToken
from repro.ledger.appeals import Appeal, AppealsProcess
from repro.ledger.ledger import Ledger
from repro.media.image import Photo
from repro.media.watermark import WatermarkCodec

__all__ = ["OwnerToolkit", "ClaimReceipt"]


@dataclass
class ClaimReceipt:
    """What the owner stores after claiming: identifier, key pair,
    content hash and the authenticated timestamp.

    The private key inside ``keypair`` is the sole proof of ownership;
    losing it forfeits control, leaking it transfers control.
    """

    identifier: PhotoIdentifier
    keypair: KeyPair
    content_hash: str
    timestamp: TimestampToken

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClaimReceipt({self.identifier})"


class OwnerToolkit:
    """Owner-side operations: claim, label, revoke, unrevoke, appeal.

    Parameters
    ----------
    rng:
        Seeded generator for reproducible key generation.
    key_bits:
        RSA modulus size for per-photo keys (512 keeps tests fast).
    watermark_codec:
        Codec used by :meth:`label`; defaults to the deployment-standard
        12-byte-payload codec matching compact identifiers.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        key_bits: int = 512,
        watermark_codec: Optional[WatermarkCodec] = None,
    ):
        self._rng = rng or np.random.default_rng(0)
        self._key_bits = int(key_bits)
        self.watermark_codec = watermark_codec or WatermarkCodec(payload_len=12)

    # -- claiming ------------------------------------------------------------

    def claim(
        self,
        photo: Photo,
        ledger: Ledger,
        payment: Optional[PaymentToken] = None,
        initially_revoked: bool = False,
    ) -> ClaimReceipt:
        """Claim ownership of ``photo`` on ``ledger``.

        Generates the per-photo key pair, signs the content hash, and
        registers the claim.  ``initially_revoked=True`` implements the
        register-revoked-by-default usage of section 4.4.
        """
        keypair = KeyPair.generate(bits=self._key_bits, rng=self._rng)
        content_hash = photo.content_hash()
        signature = keypair.sign(content_hash.encode("utf-8"))
        record = ledger.claim(
            content_hash=content_hash,
            content_signature=signature,
            public_key=keypair.public,
            payment=payment,
            initially_revoked=initially_revoked,
        )
        return ClaimReceipt(
            identifier=record.identifier,
            keypair=keypair,
            content_hash=content_hash,
            timestamp=record.timestamp,
        )

    # -- labeling --------------------------------------------------------------

    def label(self, photo: Photo, receipt: ClaimReceipt) -> Photo:
        """Attach the identifier as metadata and watermark.

        Returns the labeled copy; the owner keeps the original unlabeled
        photo private (it is the appeals evidence).
        """
        return label_photo(photo, receipt.identifier, self.watermark_codec)

    def claim_and_label(
        self,
        photo: Photo,
        ledger: Ledger,
        payment: Optional[PaymentToken] = None,
        initially_revoked: bool = False,
    ) -> tuple[ClaimReceipt, Photo]:
        """Claim then label in one step (the camera-software hot path)."""
        receipt = self.claim(
            photo, ledger, payment=payment, initially_revoked=initially_revoked
        )
        return receipt, self.label(photo, receipt)

    # -- revocation -------------------------------------------------------------

    def revoke(self, receipt: ClaimReceipt, ledger: Ledger) -> None:
        """Revoke the photo via challenge-response ownership proof."""
        self._flip(receipt, ledger, "revoke")

    def unrevoke(self, receipt: ClaimReceipt, ledger: Ledger) -> None:
        """Clear the revoked flag."""
        self._flip(receipt, ledger, "unrevoke")

    def _flip(self, receipt: ClaimReceipt, ledger: Ledger, action: str) -> None:
        if receipt.identifier.ledger_id != ledger.ledger_id:
            raise ClaimError(
                f"receipt is for ledger {receipt.identifier.ledger_id!r}, "
                f"not {ledger.ledger_id!r}"
            )
        nonce = ledger.make_challenge(receipt.identifier)
        payload = Ledger.ownership_payload(action, receipt.identifier, nonce)
        signature = receipt.keypair.sign_struct(payload)
        if action == "revoke":
            ledger.revoke(receipt.identifier, nonce, signature)
        else:
            ledger.unrevoke(receipt.identifier, nonce, signature)

    # -- appeals -------------------------------------------------------------------

    def prepare_appeal(
        self,
        receipt: ClaimReceipt,
        original_photo: Photo,
        process: AppealsProcess,
        copy_identifier: PhotoIdentifier,
        copy_photo: Photo,
    ) -> Appeal:
        """Assemble an appeal against a re-claimed copy.

        ``original_photo`` must be the exact photo that was claimed (the
        stored original), since its hash must match the receipt.
        """
        if original_photo.content_hash() != receipt.content_hash:
            raise ClaimError(
                "presented original does not match the claimed content hash"
            )
        nonce = process.make_challenge()
        payload = AppealsProcess.ownership_payload(nonce, receipt.content_hash)
        signature = receipt.keypair.sign_struct(payload)
        return Appeal(
            original_photo=original_photo,
            original_content_hash=receipt.content_hash,
            original_public_key=receipt.keypair.public,
            original_timestamp=receipt.timestamp,
            ownership_nonce=nonce,
            ownership_signature=signature,
            copy_identifier=copy_identifier,
            copy_photo=copy_photo,
        )
