"""Exception hierarchy for the IRS public API."""

from __future__ import annotations

__all__ = [
    "IrsError",
    "ClaimError",
    "RevocationError",
    "ValidationError",
    "AppealError",
    "LedgerUnavailableError",
]


class IrsError(Exception):
    """Base class for all IRS errors."""


class ClaimError(IrsError):
    """Claiming a photo failed (duplicate, payment, malformed record)."""


class RevocationError(IrsError):
    """Revoking/unrevoking failed (bad ownership proof, unknown photo)."""


class ValidationError(IrsError):
    """Validation could not be carried out (as opposed to a deny verdict,
    which is a normal :class:`repro.core.validation.ValidationResult`)."""


class AppealError(IrsError):
    """The appeals process rejected or could not process an appeal."""


class LedgerUnavailableError(IrsError):
    """The ledger for an identifier cannot be reached/resolved."""
