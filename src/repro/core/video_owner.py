"""Owner-side operations for personal videos.

Section 2 extends the IRS design to "other digital media (such as
personal videos)".  :class:`VideoOwnerToolkit` mirrors
:class:`repro.core.owner.OwnerToolkit` for :class:`repro.media.video.Video`:

* **claim** — the ledger records the hash over all frames;
* **label** — metadata on the container plus the identifier
  watermarked into every frame (clip-resistant);
* **revoke/unrevoke** — identical challenge-response protocol (the
  ledger does not care what media type a claim covers);
* **appeals** — the copy-vs-original comparison uses per-frame robust
  hashes with a coverage threshold
  (:func:`repro.media.video.video_match_coverage`), so clipped and
  recompressed copies are still recognized as derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.errors import ClaimError
from repro.core.identifiers import IdentifierError, PhotoIdentifier
from repro.core.owner import ClaimReceipt
from repro.crypto.signatures import KeyPair
from repro.ledger.ledger import Ledger
from repro.media.video import Video, VideoWatermarkCodec, video_match_coverage

__all__ = ["VideoOwnerToolkit", "VideoAppealJudgement", "judge_video_appeal"]


class VideoOwnerToolkit:
    """Camera-side video operations."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        key_bits: int = 512,
        video_codec: Optional[VideoWatermarkCodec] = None,
    ):
        self._rng = rng or np.random.default_rng(0)
        self._key_bits = int(key_bits)
        self.video_codec = video_codec or VideoWatermarkCodec()

    def claim(
        self,
        video: Video,
        ledger: Ledger,
        initially_revoked: bool = False,
    ) -> ClaimReceipt:
        """Claim a video: the content hash covers every frame."""
        keypair = KeyPair.generate(bits=self._key_bits, rng=self._rng)
        content_hash = video.content_hash()
        signature = keypair.sign(content_hash.encode("utf-8"))
        record = ledger.claim(
            content_hash=content_hash,
            content_signature=signature,
            public_key=keypair.public,
            initially_revoked=initially_revoked,
        )
        return ClaimReceipt(
            identifier=record.identifier,
            keypair=keypair,
            content_hash=content_hash,
            timestamp=record.timestamp,
        )

    def label(self, video: Video, receipt: ClaimReceipt) -> Video:
        """Metadata + per-frame watermark carrying the identifier."""
        compact = receipt.identifier.to_compact()
        if len(compact) != self.video_codec.payload_len:
            raise ClaimError(
                "video codec payload length does not match identifier encoding"
            )
        labeled = self.video_codec.embed(video, compact)
        labeled.metadata.irs_identifier = receipt.identifier.to_string()
        return labeled

    def claim_and_label(
        self, video: Video, ledger: Ledger, initially_revoked: bool = False
    ) -> tuple[ClaimReceipt, Video]:
        receipt = self.claim(video, ledger, initially_revoked=initially_revoked)
        return receipt, self.label(video, receipt)

    def revoke(self, receipt: ClaimReceipt, ledger: Ledger) -> None:
        self._flip(receipt, ledger, "revoke")

    def unrevoke(self, receipt: ClaimReceipt, ledger: Ledger) -> None:
        self._flip(receipt, ledger, "unrevoke")

    def _flip(self, receipt: ClaimReceipt, ledger: Ledger, action: str) -> None:
        if receipt.identifier.ledger_id != ledger.ledger_id:
            raise ClaimError(
                f"receipt is for ledger {receipt.identifier.ledger_id!r}, "
                f"not {ledger.ledger_id!r}"
            )
        nonce = ledger.make_challenge(receipt.identifier)
        payload = Ledger.ownership_payload(action, receipt.identifier, nonce)
        signature = receipt.keypair.sign_struct(payload)
        if action == "revoke":
            ledger.revoke(receipt.identifier, nonce, signature)
        else:
            ledger.unrevoke(receipt.identifier, nonce, signature)

    def identify(self, video: Video, registry=None) -> Optional[PhotoIdentifier]:
        """Recover a video's identifier from metadata or watermark."""
        raw = video.metadata.irs_identifier
        if raw is not None:
            try:
                return PhotoIdentifier.from_string(raw)
            except IdentifierError:  # malformed => try watermark
                pass
        try:
            payload = self.video_codec.extract(video)
        except Exception:  # noqa: BLE001 - no watermark
            return None
        if registry is None:
            return None
        try:
            return registry.resolve_compact(payload)
        except Exception:  # noqa: BLE001 - unknown tag
            return None


@dataclass(frozen=True)
class VideoAppealJudgement:
    """Outcome of the video derivation check used in appeals."""

    derived: bool
    coverage: float
    threshold: float


def judge_video_appeal(
    original: Video,
    copy: Video,
    coverage_threshold: float = 0.6,
    frame_threshold: float = 0.25,
) -> VideoAppealJudgement:
    """Is ``copy`` derived from ``original``?

    ``coverage`` is the fraction of the copy's frames perceptually
    matching some original frame; a clipped/recompressed copy scores
    near 1.0, unrelated footage near 0.0.  The 0.6 default tolerates
    copies that interleave derived and novel material.
    """
    coverage = video_match_coverage(original, copy, threshold=frame_threshold)
    return VideoAppealJudgement(
        derived=coverage >= coverage_threshold,
        coverage=coverage,
        threshold=coverage_threshold,
    )
