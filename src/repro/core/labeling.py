"""Labeling photos and reading labels back.

A label is the photo's ledger identifier carried redundantly:

* **explicit metadata** -- the string encoding in the
  ``irs:identifier`` field, trivially readable and trivially strippable;
* **watermark** -- the 12-byte compact encoding embedded in pixels,
  robust to benign edits.

Section 3.2's upload rule: "If the explicit metadata or watermark
disagree or one of them is missing (indicating that the photo has been
modified in some way that has lost metadata), the upload is also
denied."  :func:`read_label` produces the evidence that rule needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.identifiers import IdentifierError, PhotoIdentifier
from repro.media.image import Photo
from repro.media.watermark import WatermarkCodec, WatermarkError

__all__ = ["label_photo", "read_label", "LabelReadResult", "LabelState"]


class LabelState(enum.Enum):
    """Joint state of the two label channels."""

    BOTH_AGREE = "both_agree"
    DISAGREE = "disagree"
    METADATA_ONLY = "metadata_only"
    WATERMARK_ONLY = "watermark_only"
    UNLABELED = "unlabeled"


@dataclass(frozen=True)
class LabelReadResult:
    """What was found in each channel.

    ``metadata_identifier`` is fully resolved (the string form names the
    ledger).  The watermark carries only the compact form; resolving it
    to a ledger needs the registry (``watermark_identifier`` is filled
    when a registry was supplied to :func:`read_label`).
    """

    metadata_identifier: Optional[PhotoIdentifier]
    watermark_payload: Optional[bytes]
    watermark_identifier: Optional[PhotoIdentifier]
    state: LabelState

    @property
    def identifier(self) -> Optional[PhotoIdentifier]:
        """The agreed identifier, when the channels agree; else whichever
        single channel is present; None when unlabeled or conflicting."""
        if self.state is LabelState.BOTH_AGREE:
            return self.metadata_identifier
        if self.state is LabelState.METADATA_ONLY:
            return self.metadata_identifier
        if self.state is LabelState.WATERMARK_ONLY:
            return self.watermark_identifier
        return None

    @property
    def is_labeled(self) -> bool:
        return self.state is not LabelState.UNLABELED


def label_photo(
    photo: Photo, identifier: PhotoIdentifier, codec: WatermarkCodec
) -> Photo:
    """Return a copy of ``photo`` labeled with ``identifier``.

    Embeds the watermark first, then writes the metadata field, so the
    metadata travels on the watermarked pixels.
    """
    compact = identifier.to_compact()
    if len(compact) != codec.payload_len:
        raise ValueError(
            f"watermark codec payload length {codec.payload_len} does not "
            f"match compact identifier length {len(compact)}"
        )
    labeled = codec.embed(photo, compact)
    labeled.metadata.irs_identifier = identifier.to_string()
    return labeled


def read_label(
    photo: Photo,
    codec: WatermarkCodec,
    registry=None,
    search_offsets: bool = True,
    try_flip: bool = False,
) -> LabelReadResult:
    """Inspect both label channels of ``photo``.

    Parameters
    ----------
    registry:
        Optional :class:`repro.ledger.registry.LedgerRegistry`; when
        given, a surviving watermark is resolved to a full identifier
        even if metadata is gone.
    search_offsets / try_flip:
        Passed through to watermark extraction (crop/flip recovery).
    """
    metadata_id: Optional[PhotoIdentifier] = None
    raw = photo.metadata.irs_identifier
    if raw is not None:
        try:
            metadata_id = PhotoIdentifier.from_string(raw)
        except IdentifierError:
            metadata_id = None  # malformed metadata counts as absent

    watermark_payload: Optional[bytes] = None
    try:
        extraction = codec.extract(
            photo, search_offsets=search_offsets, try_flip=try_flip
        )
        watermark_payload = extraction.payload
    except WatermarkError:
        watermark_payload = None

    watermark_id: Optional[PhotoIdentifier] = None
    if watermark_payload is not None and registry is not None:
        try:
            watermark_id = registry.resolve_compact(watermark_payload)
        except Exception:  # noqa: BLE001 - unknown tag => unresolvable
            watermark_id = None

    state = _classify(metadata_id, watermark_payload)
    return LabelReadResult(
        metadata_identifier=metadata_id,
        watermark_payload=watermark_payload,
        watermark_identifier=watermark_id,
        state=state,
    )


def _classify(
    metadata_id: Optional[PhotoIdentifier], watermark_payload: Optional[bytes]
) -> LabelState:
    if metadata_id is None and watermark_payload is None:
        return LabelState.UNLABELED
    if metadata_id is None:
        return LabelState.WATERMARK_ONLY
    if watermark_payload is None:
        return LabelState.METADATA_ONLY
    if metadata_id.matches_compact(watermark_payload):
        return LabelState.BOTH_AGREE
    return LabelState.DISAGREE
