"""Derivative images that inherit the original's label.

Section 3.2: denying uploads with broken labels "does not prohibit
common (and potentially valid) cases of modifying and reusing photos,
such as adding text to create memes; rather, the intention is to
encourage those making derivative images to transfer the metadata to
the modified version so that it is also revoked if the original is
revoked."

:func:`make_derivative` is that transfer: apply an edit, then re-label
the result with the *original's* identifier (fresh watermark over the
edited pixels + metadata field).  The derivative then behaves exactly
like the original under validation: one revocation takes down the meme
along with the source photo.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.identifiers import PhotoIdentifier
from repro.core.labeling import label_photo, read_label
from repro.media.image import Photo
from repro.media.watermark import WatermarkCodec

__all__ = ["make_derivative", "derive_with_label", "DerivativeError"]


class DerivativeError(Exception):
    """Raised when the source photo's label cannot be established."""


def derive_with_label(
    edited: Photo,
    source_identifier: PhotoIdentifier,
    codec: Optional[WatermarkCodec] = None,
) -> Photo:
    """Label an already-edited photo with its source's identifier."""
    codec = codec or WatermarkCodec(payload_len=12)
    return label_photo(edited, source_identifier, codec)


def make_derivative(
    source: Photo,
    transform: Callable[[Photo], Photo],
    codec: Optional[WatermarkCodec] = None,
    registry=None,
) -> Photo:
    """Apply ``transform`` to a labeled photo and transfer its label.

    The source's identifier is read from its label (either channel);
    the transformed pixels are then re-labeled with it, so the
    derivative validates — and revokes — with the original.

    Raises :class:`DerivativeError` when the source carries no
    resolvable label (an unlabeled source has nothing to transfer;
    editors should claim the result themselves instead).
    """
    codec = codec or WatermarkCodec(payload_len=12)
    label = read_label(source, codec, registry=registry)
    identifier = label.identifier
    if identifier is None:
        raise DerivativeError(
            "source photo carries no resolvable label; claim the edited "
            "photo as new work instead"
        )
    edited = transform(source)
    # Strip any stale label state the transform carried through, then
    # re-label cleanly over the edited pixels.
    edited = edited.copy()
    edited.metadata = edited.metadata.stripped(preserve_irs=False)
    return derive_with_label(edited, identifier, codec)
