"""One-call IRS deployment wiring, for examples and tests.

:class:`IrsDeployment` assembles a working IRS instance: a timestamp
authority, one or more ledgers, the registry, an owner toolkit, a
validator, and a photo generator — all seeded from a single integer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.owner import OwnerToolkit
from repro.core.validation import ValidationPolicy, Validator
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.ledger import Ledger, LedgerConfig
from repro.ledger.registry import LedgerRegistry
from repro.media.image import Photo, PhotoGenerator
from repro.media.watermark import WatermarkCodec
from repro.netsim.rand import RngRegistry

__all__ = ["IrsDeployment"]


class IrsDeployment:
    """A self-contained IRS instance.

    Build with :meth:`create`; every component shares one RNG registry,
    so two deployments created with the same seed behave identically.
    """

    def __init__(
        self,
        rngs: RngRegistry,
        timestamp_authority: TimestampAuthority,
        ledgers: List[Ledger],
        registry: LedgerRegistry,
        owner_toolkit: OwnerToolkit,
        validator: Validator,
        photo_generator: PhotoGenerator,
        watermark_codec: WatermarkCodec,
    ):
        self.rngs = rngs
        self.timestamp_authority = timestamp_authority
        self.ledgers = ledgers
        self.registry = registry
        self.owner_toolkit = owner_toolkit
        self.validator = validator
        self.photo_generator = photo_generator
        self.watermark_codec = watermark_codec

    @classmethod
    def create(
        cls,
        seed: int = 0,
        num_ledgers: int = 1,
        ledger_config: Optional[LedgerConfig] = None,
        policy: Optional[ValidationPolicy] = None,
        key_bits: int = 512,
    ) -> "IrsDeployment":
        """Assemble a deployment.

        Parameters
        ----------
        seed:
            Root seed for all randomness.
        num_ledgers:
            How many commercial ledgers to stand up (``ledger-0`` ...).
        ledger_config / policy:
            Applied to every ledger / to the validator.
        key_bits:
            RSA size for all generated keys.
        """
        if num_ledgers < 1:
            raise ValueError("need at least one ledger")
        rngs = RngRegistry(seed=seed)
        tsa = TimestampAuthority(
            keypair=KeyPair.generate(bits=key_bits, rng=rngs.stream("tsa"))
        )
        registry = LedgerRegistry()
        ledgers = []
        for i in range(num_ledgers):
            ledger = Ledger(
                ledger_id=f"ledger-{i}",
                timestamp_authority=tsa,
                keypair=KeyPair.generate(
                    bits=key_bits, rng=rngs.stream(f"ledger-{i}")
                ),
                config=ledger_config,
            )
            registry.add(ledger)
            ledgers.append(ledger)
        codec = WatermarkCodec(payload_len=12)
        toolkit = OwnerToolkit(
            rng=rngs.stream("owner"), key_bits=key_bits, watermark_codec=codec
        )
        validator = Validator.for_registry(
            registry, policy=policy, watermark_codec=codec
        )
        generator = PhotoGenerator(rngs.stream("photos"))
        return cls(
            rngs=rngs,
            timestamp_authority=tsa,
            ledgers=ledgers,
            registry=registry,
            owner_toolkit=toolkit,
            validator=validator,
            photo_generator=generator,
            watermark_codec=codec,
        )

    @property
    def ledger(self) -> Ledger:
        """The first ledger (convenience for single-ledger deployments)."""
        return self.ledgers[0]

    def new_photo(self, height: int = 128, width: int = 128) -> Photo:
        """Generate a fresh synthetic photo."""
        return self.photo_generator.generate(height=height, width=width)
