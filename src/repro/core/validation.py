"""Validation: "checking that a photo has not been revoked; this is
required before a photo can be displayed, saved to disk, or shared"
(section 3.1).

Two validation postures exist in the paper:

* **Upload posture** (aggregators, section 3.2): metadata and watermark
  must both be present and agree; disagreement or partial loss denies
  the upload.  Strict, because uploads gate wide redistribution.
* **Viewing posture** (browser extension, section 4): photos arrive
  from sites that may or may not preserve labels; the extension checks
  whatever label channel is available.  Cheap, because it runs per
  rendered image.  The default viewing configuration trusts metadata
  without extracting the watermark (extraction costs ~ms per photo and
  the threat model for *viewing* is benign users, Nongoal #1).

:class:`Validator` implements both through :class:`ValidationPolicy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import LedgerUnavailableError
from repro.core.identifiers import PhotoIdentifier
from repro.core.labeling import LabelReadResult, LabelState, read_label
from repro.ledger.proofs import StatusProof
from repro.media.image import Photo
from repro.media.watermark import WatermarkCodec

__all__ = [
    "Validator",
    "ValidationPolicy",
    "ValidationResult",
    "ValidationDecision",
    "ValidationOutcome",
]


class ValidationDecision(enum.Enum):
    """Verdict on the requested action (display/save/share)."""

    ALLOW = "allow"
    DENY_REVOKED = "deny_revoked"
    DENY_LABEL_CONFLICT = "deny_label_conflict"
    DENY_LABEL_PARTIAL = "deny_label_partial"
    DENY_UNLABELED = "deny_unlabeled"
    DENY_LEDGER_UNAVAILABLE = "deny_ledger_unavailable"

    @property
    def allowed(self) -> bool:
        return self is ValidationDecision.ALLOW


# Backwards-friendly alias used in docs/examples.
ValidationOutcome = ValidationDecision


@dataclass
class ValidationPolicy:
    """Knobs selecting the posture.

    Attributes
    ----------
    check_watermark:
        Extract the watermark and require channel agreement (upload
        posture) vs trust metadata alone (viewing posture).
    allow_unlabeled:
        What to do with photos carrying no label at all.  True for
        viewing (most of the web is unclaimed); False for aggregators
        that reject or custodially claim unlabeled uploads.
    allow_partial_label:
        Whether a single surviving channel is acceptable.  Section 3.2
        denies uploads on partial labels; viewing-posture deployments
        may choose to validate on the surviving channel instead of
        refusing to render.
    fail_closed:
        When the ledger is unreachable, deny (True) or allow (False).
        Uploads fail closed; rendering fails open so a ledger outage
        does not blank the web.
    """

    check_watermark: bool = True
    allow_unlabeled: bool = True
    allow_partial_label: bool = False
    fail_closed: bool = True

    @classmethod
    def upload(cls) -> "ValidationPolicy":
        """Aggregator upload posture (section 3.2 rules, verbatim)."""
        return cls(
            check_watermark=True,
            allow_unlabeled=False,
            allow_partial_label=False,
            fail_closed=True,
        )

    @classmethod
    def viewing(cls) -> "ValidationPolicy":
        """Browser extension posture: fast, fail-open, metadata-driven."""
        return cls(
            check_watermark=False,
            allow_unlabeled=True,
            allow_partial_label=True,
            fail_closed=False,
        )


@dataclass
class ValidationResult:
    """Outcome of validating one photo."""

    decision: ValidationDecision
    label: LabelReadResult
    identifier: Optional[PhotoIdentifier] = None
    proof: Optional[StatusProof] = None
    detail: str = ""

    @property
    def allowed(self) -> bool:
        return self.decision.allowed


#: A status source maps an identifier to a signed status proof.  The
#: registry provides the direct implementation; proxies and caches wrap
#: it.  It may raise ``LedgerUnavailableError``.
StatusSource = Callable[[PhotoIdentifier], StatusProof]


class Validator:
    """Validates photos against ledgers under a policy."""

    def __init__(
        self,
        status_source: StatusSource,
        watermark_codec: Optional[WatermarkCodec] = None,
        policy: Optional[ValidationPolicy] = None,
        registry=None,
    ):
        self._status_source = status_source
        self.codec = watermark_codec or WatermarkCodec(payload_len=12)
        self.policy = policy or ValidationPolicy()
        self._registry = registry
        self.validations_performed = 0

    @classmethod
    def for_registry(
        cls,
        registry,
        policy: Optional[ValidationPolicy] = None,
        watermark_codec: Optional[WatermarkCodec] = None,
    ) -> "Validator":
        """Validator querying ledgers directly through a registry."""
        return cls(
            status_source=registry.status,
            watermark_codec=watermark_codec,
            policy=policy,
            registry=registry,
        )

    def validate(self, photo: Photo) -> ValidationResult:
        """Validate one photo for display/save/share."""
        self.validations_performed += 1
        label = read_label(
            photo,
            self.codec,
            registry=self._registry,
            search_offsets=self.policy.check_watermark,
        ) if self.policy.check_watermark else self._metadata_only_label(photo)

        if label.state is LabelState.UNLABELED:
            if self.policy.allow_unlabeled:
                return ValidationResult(
                    ValidationDecision.ALLOW, label, detail="no label present"
                )
            return ValidationResult(
                ValidationDecision.DENY_UNLABELED,
                label,
                detail="unlabeled photos are not accepted under this policy",
            )

        if label.state is LabelState.DISAGREE:
            return ValidationResult(
                ValidationDecision.DENY_LABEL_CONFLICT,
                label,
                detail="metadata and watermark identify different claims",
            )

        if (
            label.state in (LabelState.METADATA_ONLY, LabelState.WATERMARK_ONLY)
            and self.policy.check_watermark
            and not self.policy.allow_partial_label
        ):
            return ValidationResult(
                ValidationDecision.DENY_LABEL_PARTIAL,
                label,
                detail=f"only one label channel present ({label.state.value})",
            )

        identifier = label.identifier
        if identifier is None:
            # WATERMARK_ONLY without a registry to resolve the compact
            # form: treat as partial-label denial under strict policy,
            # unlabeled-allow otherwise.
            if self.policy.allow_partial_label and self.policy.allow_unlabeled:
                return ValidationResult(
                    ValidationDecision.ALLOW,
                    label,
                    detail="watermark present but unresolvable; fail-open",
                )
            return ValidationResult(
                ValidationDecision.DENY_LABEL_PARTIAL,
                label,
                detail="watermark present but no registry to resolve it",
            )

        try:
            proof = self._status_source(identifier)
        except LedgerUnavailableError as exc:
            if self.policy.fail_closed:
                return ValidationResult(
                    ValidationDecision.DENY_LEDGER_UNAVAILABLE,
                    label,
                    identifier=identifier,
                    detail=str(exc),
                )
            return ValidationResult(
                ValidationDecision.ALLOW,
                label,
                identifier=identifier,
                detail=f"ledger unavailable, fail-open: {exc}",
            )

        if proof.revoked:
            return ValidationResult(
                ValidationDecision.DENY_REVOKED,
                label,
                identifier=identifier,
                proof=proof,
                detail="owner has revoked this photo",
            )
        return ValidationResult(
            ValidationDecision.ALLOW,
            label,
            identifier=identifier,
            proof=proof,
            detail="not revoked",
        )

    def _metadata_only_label(self, photo: Photo) -> LabelReadResult:
        """Viewing fast path: read metadata, skip watermark extraction."""
        from repro.core.identifiers import IdentifierError

        raw = photo.metadata.irs_identifier
        metadata_id = None
        if raw is not None:
            try:
                metadata_id = PhotoIdentifier.from_string(raw)
            except IdentifierError:
                metadata_id = None
        state = (
            LabelState.METADATA_ONLY if metadata_id is not None else LabelState.UNLABELED
        )
        return LabelReadResult(
            metadata_identifier=metadata_id,
            watermark_payload=None,
            watermark_identifier=None,
            state=state,
        )
