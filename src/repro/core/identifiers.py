"""Photo identifiers: "a unique identifier that refers to both the
ledger and the specific photo" (section 3.2).

An identifier is a (ledger, serial) pair with two encodings:

* **String form** ``irs1:<ledger-id>:<serial>`` carried in explicit
  metadata; human-readable and unambiguous.
* **Compact form** (12 bytes): a 4-byte ledger tag (SHA-256 prefix of
  the ledger id) plus an 8-byte big-endian serial, sized for the
  watermark payload ("the identifier has relatively few bits").

The ledger registry (:mod:`repro.ledger.registry`) resolves ledger tags
back to ledgers when only the compact form survives (e.g. metadata was
stripped but the watermark persisted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256_bytes

__all__ = ["PhotoIdentifier", "IdentifierError", "COMPACT_LENGTH", "ledger_tag"]

_PREFIX = "irs1"
#: Compact encoding length in bytes (watermark payload size).
COMPACT_LENGTH = 12
_TAG_LENGTH = 4
_SERIAL_LENGTH = 8


class IdentifierError(Exception):
    """Raised on malformed identifiers."""


def ledger_tag(ledger_id: str) -> bytes:
    """4-byte tag identifying a ledger in compact encodings."""
    if not ledger_id:
        raise IdentifierError("ledger id must be non-empty")
    return sha256_bytes(ledger_id.encode("utf-8"))[:_TAG_LENGTH]


@dataclass(frozen=True)
class PhotoIdentifier:
    """A (ledger, serial) pair naming one claim record."""

    ledger_id: str
    serial: int

    def __post_init__(self) -> None:
        if not self.ledger_id:
            raise IdentifierError("ledger id must be non-empty")
        # ':' is the string-encoding separator; '|' is its escape in
        # the status-proof wire format.  Both are reserved.
        if ":" in self.ledger_id or "|" in self.ledger_id:
            raise IdentifierError("ledger id must not contain ':' or '|'")
        if not 0 <= self.serial < 2 ** (8 * _SERIAL_LENGTH):
            raise IdentifierError(f"serial {self.serial} out of range")

    # -- string encoding (metadata) -------------------------------------------

    def to_string(self) -> str:
        return f"{_PREFIX}:{self.ledger_id}:{self.serial}"

    @staticmethod
    def from_string(value: str) -> "PhotoIdentifier":
        parts = value.split(":")
        if len(parts) != 3 or parts[0] != _PREFIX:
            raise IdentifierError(f"malformed identifier string {value!r}")
        prefix, ledger_id, serial_text = parts
        try:
            serial = int(serial_text)
        except ValueError:
            raise IdentifierError(f"non-integer serial in {value!r}") from None
        return PhotoIdentifier(ledger_id=ledger_id, serial=serial)

    # -- compact encoding (watermark) ------------------------------------------

    def to_compact(self) -> bytes:
        """12-byte form: ledger tag + serial."""
        return ledger_tag(self.ledger_id) + self.serial.to_bytes(
            _SERIAL_LENGTH, "big"
        )

    @staticmethod
    def tag_and_serial_from_compact(data: bytes) -> tuple[bytes, int]:
        """Split a compact encoding into (ledger_tag, serial).

        Resolving the tag to a ledger id requires the registry; see
        :meth:`repro.ledger.registry.LedgerRegistry.resolve_compact`.
        """
        if len(data) != COMPACT_LENGTH:
            raise IdentifierError(
                f"compact identifier must be {COMPACT_LENGTH} bytes, "
                f"got {len(data)}"
            )
        return data[:_TAG_LENGTH], int.from_bytes(data[_TAG_LENGTH:], "big")

    def matches_compact(self, data: bytes) -> bool:
        """True iff ``data`` is the compact encoding of this identifier."""
        try:
            tag, serial = self.tag_and_serial_from_compact(data)
        except IdentifierError:
            return False
        return tag == ledger_tag(self.ledger_id) and serial == self.serial

    def __str__(self) -> str:
        return self.to_string()
