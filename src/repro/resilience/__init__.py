"""Reusable resilience policies: backoff, deadlines, breakers, shedding.

The cluster's first line of defense against the chaos harness is
*policy*, not protocol: retries must be bounded and jittered (or a
partition turns into a retry storm), requests must carry deadlines (or
one dead shard stalls a page render), persistently failing replicas
must be circuit-broken (or every request pays a timeout to re-discover
the same dead node), and overload must be shed early (or queues grow
without bound and everyone times out).  This package holds those
policies as small, clock-driven, seed-deterministic values so the
cluster frontend, the proxy, and the browser extension can share one
implementation — and so the chaos determinism tests can replay them
byte-identically.

* :class:`BackoffPolicy` — capped exponential backoff with seeded
  downward jitter (deterministic per RNG stream).
* :class:`Deadline` — an absolute-time request budget that propagates
  through batched sub-calls.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-target
  closed/open/half-open state machines over any clock.
* :class:`TokenBucket` — deterministic token-bucket admission control
  for load shedding.
"""

from repro.resilience.policy import BackoffPolicy, Deadline
from repro.resilience.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.resilience.shedding import TokenBucket

__all__ = [
    "BackoffPolicy",
    "Deadline",
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "TokenBucket",
]
