"""Backoff schedules and request deadlines.

Both are *values over an external clock*: nothing here sleeps, spawns
timers, or reads wall time.  The caller (frontend, proxy, extension)
asks for a delay or a remaining budget and decides what to do with it,
which is what lets the identical policy run under the discrete-event
simulator and in synchronous unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BackoffPolicy", "Deadline"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with downward jitter.

    The undithered schedule is ``min(base * multiplier**attempt, cap)``
    — non-decreasing in ``attempt`` and never above ``cap``.  Jitter
    multiplies a draw from ``[1 - jitter, 1]`` onto the base delay, so
    jittered delays stay within ``(0, cap]``: retries de-synchronize
    (the thundering-herd fix) without ever exceeding the cap a deadline
    budget was provisioned against.  Determinism comes from the caller:
    pass a seeded ``numpy`` generator and the jitter sequence is a pure
    function of that stream.
    """

    base: float = 0.01
    multiplier: float = 2.0
    cap: float = 0.25
    jitter: float = 0.5

    def __post_init__(self):
        if self.base <= 0:
            raise ValueError("backoff base must be positive")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be at least 1")
        if self.cap < self.base:
            raise ValueError("backoff cap cannot be below the base delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("backoff jitter must lie in [0, 1]")

    def base_delay(self, attempt: int) -> float:
        """The undithered delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt cannot be negative")
        # Compute in log space to avoid overflow on absurd attempt counts.
        delay = self.base
        for _ in range(attempt):
            delay *= self.multiplier
            if delay >= self.cap:
                return self.cap
        return min(delay, self.cap)

    def delay(self, attempt: int, rng=None) -> float:
        """The jittered delay before retry number ``attempt`` (0-based).

        ``rng`` is any object with ``uniform()`` (a ``numpy`` Generator
        stream); None disables jitter, returning the base schedule.
        """
        raw = self.base_delay(attempt)
        if rng is None or self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * float(rng.uniform()))


class Deadline:
    """An absolute-time budget for one request and its sub-calls.

    Created once at request admission (``Deadline.after(now, budget)``)
    and handed down through retries, failovers and batched RPCs: every
    layer asks ``remaining(now)`` and shrinks its own timeout to fit,
    so the client-visible latency bound survives any amount of internal
    retrying — the "deadline propagation" half of the resilience layer.
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = float(at)

    @classmethod
    def after(cls, now: float, budget: float) -> "Deadline":
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(now + budget)

    def remaining(self, now: float) -> float:
        """Seconds left, clamped at zero."""
        return max(self.at - now, 0.0)

    def expired(self, now: float) -> bool:
        return now >= self.at

    def allows(self, now: float, delay: float) -> bool:
        """Would waiting ``delay`` seconds still leave budget?"""
        return now + delay < self.at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(at={self.at:.6f})"
