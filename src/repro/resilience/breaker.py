"""Per-target circuit breakers: stop paying timeouts to dead nodes.

The failure detector (:mod:`repro.cluster.health`) answers "who do I
*prefer*"; the breaker answers "who do I refuse to call at all".  The
distinction matters under chaos: a suspected shard still receives
hedged reads (suspicion is advisory), but an *open* breaker removes the
shard from the candidate set entirely, so a partitioned replica costs
one timeout per reset window instead of one per request — which is the
difference between a latency blip and a cluster-wide stall when a
partition takes out a whole replica group.

States follow the classic machine:

* **closed** — traffic flows; ``failure_threshold`` consecutive
  failures trip it open.
* **open** — all traffic refused until ``reset_timeout`` elapses.
* **half-open** — up to ``half_open_probes`` trial requests are
  admitted; one success recloses, one failure re-opens (and restarts
  the reset clock).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

__all__ = ["BreakerState", "CircuitBreaker", "BreakerBoard"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One target's closed/open/half-open state machine over a clock.

    ``on_transition(new_state)``, when given, fires on every state
    *change* — trip, half-open expiry, reclose — which is how the
    observability layer counts transitions without the breaker knowing
    anything about metrics.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        on_transition: Optional[Callable[[BreakerState], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("breaker failure threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("breaker reset timeout must be positive")
        if half_open_probes < 1:
            raise ValueError("breaker must admit at least one half-open probe")
        self._clock = clock
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self._on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_admitted = 0
        # Counters for experiment reporting.
        self.times_opened = 0
        self.times_reclosed = 0
        self.calls_refused = 0

    def _transition(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._state = state
        if self._on_transition is not None:
            self._on_transition(state)

    @property
    def state(self) -> BreakerState:
        """Current state, accounting for reset-timeout expiry."""
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_admitted = 0

    # -- admission ---------------------------------------------------------------

    def allow(self) -> bool:
        """May a request be sent to this target right now?

        In half-open state each ``allow() == True`` *consumes* one of
        the probe slots, so callers must only ask when they are about
        to send — the probe budget is the admission, not a preview.
        """
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_admitted < self.half_open_probes:
                self._probes_admitted += 1
                return True
            self.calls_refused += 1
            return False
        self.calls_refused += 1
        return False

    # -- evidence ----------------------------------------------------------------

    def record_success(self) -> None:
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            self.times_reclosed += 1
        self._transition(BreakerState.CLOSED)
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            self._trip()  # failed probe: back to open, restart the clock
            return
        if self._state is BreakerState.OPEN:
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._transition(BreakerState.OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.times_opened += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitBreaker({self._state.value})"


class BreakerBoard:
    """A lazily populated breaker per target (shard, ledger, ...).

    ``on_transition(target, new_state)`` observes every per-target
    state change (the board-level twin of the breaker hook).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        on_transition: Optional[Callable[[str, BreakerState], None]] = None,
    ):
        self._clock = clock
        self._kwargs = dict(
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            half_open_probes=half_open_probes,
        )
        self._on_transition = on_transition
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, target: str) -> CircuitBreaker:
        if target not in self._breakers:
            hook = None
            if self._on_transition is not None:
                board_hook = self._on_transition
                hook = lambda state, t=target: board_hook(t, state)  # noqa: E731
            self._breakers[target] = CircuitBreaker(
                self._clock, on_transition=hook, **self._kwargs
            )
        return self._breakers[target]

    def allow(self, target: str) -> bool:
        return self.breaker(target).allow()

    def record(self, target: str, ok: bool) -> None:
        if ok:
            self.breaker(target).record_success()
        else:
            self.breaker(target).record_failure()

    def state(self, target: str) -> BreakerState:
        return self.breaker(target).state

    def open_targets(self) -> List[str]:
        return sorted(
            t
            for t, b in self._breakers.items()
            if b.state is not BreakerState.CLOSED
        )

    @property
    def times_opened(self) -> int:
        return sum(b.times_opened for b in self._breakers.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BreakerBoard(open={self.open_targets()})"
