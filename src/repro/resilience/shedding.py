"""Token-bucket load shedding: refuse early, answer degraded.

Under overload, the worst thing a revocation frontend can do is accept
every query and let them all time out — the browser then blocks on a
dead deadline instead of falling back to the Bloom verdict.  A token
bucket admits a sustained ``rate`` with bursts up to ``burst``; queries
refused here are answered immediately from the degraded path, keeping
the shards inside their capacity region.  Refill is computed lazily
from the clock (no timers), so admission decisions are a deterministic
function of the query arrival times — chaos replay safe.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["TokenBucket"]


class TokenBucket:
    """Deterministic token-bucket admission control.

    ``obs`` (any :class:`~repro.obs.Observability`-shaped object, duck
    typed so this module stays import-free) mirrors admissions and
    refusals into ``shed_admitted_total`` / ``shed_refused_total`` and
    keeps a ``shed_tokens`` gauge of the bucket level.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float],
        obs: Optional[object] = None,
    ):
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("burst must admit at least one request")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self.obs = obs
        self._tokens = self.burst
        self._refilled_at = clock()
        self.admitted = 0
        self.refused = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Admit one request iff a token is available right now."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            self.admitted += 1
            if self.obs is not None:
                self.obs.counter("shed_admitted_total").inc()
                self.obs.gauge("shed_tokens").set(self._tokens)
            return True
        self.refused += 1
        if self.obs is not None:
            self.obs.counter("shed_refused_total").inc()
            self.obs.gauge("shed_tokens").set(self._tokens)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TokenBucket(rate={self.rate}, tokens={self.tokens:.2f})"
