"""``python -m repro serve`` / ``python -m repro loadgen``.

``serve`` stands the cluster + HTTP server up and runs until
interrupted.  ``loadgen`` drives a seeded open-loop burst against a
running server — or, with ``--self-serve``, against a private
in-process server on an ephemeral port, which is what the CI smoke
step uses: one command that starts the service, loads it, scrapes
``/metrics``, checks the invariants and exits non-zero on any
violation.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Tuple

from repro.service.loadgen import LoadgenConfig, LoadReport, run_loadgen

__all__ = [
    "add_serve_arguments",
    "add_loadgen_arguments",
    "run_serve",
    "run_loadgen_cli",
]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks an ephemeral port (default 8080)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    parser.add_argument(
        "--replication", type=int, default=3,
        help="replicas per record, capped at the shard count (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed for keys and the seeded population (default 0)",
    )
    parser.add_argument(
        "--populate", type=int, default=0,
        help="seed N synthetic claims at startup (default 0)",
    )
    parser.add_argument(
        "--revoked-fraction", type=float, default=0.2,
        help="fraction of the seeded population born revoked (default 0.2)",
    )
    parser.add_argument(
        "--deadline", type=float, default=0.25,
        help="frontend request deadline in seconds (default 0.25, §4.4)",
    )
    parser.add_argument(
        "--shed-rate", type=float, default=None,
        help="token-bucket admission rate in req/s (default: no shedding)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="disable degraded Bloom reads: quorum-dark answers become 503",
    )


def add_loadgen_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="server address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8080, help="server port (default 8080)"
    )
    parser.add_argument(
        "--rate", type=float, default=100.0,
        help="open-loop arrival rate in req/s (default 100)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of scheduled arrivals (default 5)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed; same seed, same schedule (default 0)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=250.0,
        help="X-Deadline-Ms on status reads (default 250, §4.4)",
    )
    parser.add_argument(
        "--warmup-claims", type=int, default=32,
        help="identifiers claimed before the measured window (default 32)",
    )
    parser.add_argument(
        "--connections", type=int, default=32,
        help="keep-alive connection pool size (default 32)",
    )
    parser.add_argument(
        "--self-serve", action="store_true",
        help="start a private in-process server on an ephemeral port, "
        "load it, scrape /metrics, and gate on the invariants (CI smoke)",
    )


def _build_app(args: argparse.Namespace, obs):
    from repro.service.app import ServiceApp
    from repro.service.cluster import LiveCluster, LiveClusterConfig

    config = LiveClusterConfig(
        num_shards=args.shards,
        replication_factor=min(args.replication, args.shards),
        seed=args.seed,
        request_deadline=args.deadline,
        shed_rate=args.shed_rate,
        degraded_reads=not args.strict,
    )
    cluster = LiveCluster(config=config, obs=obs)
    app = ServiceApp(cluster=cluster, obs=obs)
    if args.populate > 0:
        population = cluster.seed_population(
            args.populate, revoked_fraction=args.revoked_fraction
        )
        app.adopt_population(population)
    return app


def run_serve(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    from repro.service.app import ServiceServer

    for name in ("shards", "replication"):
        if getattr(args, name) < 1:
            raise SystemExit(
                f"python -m repro serve: --{name} must be at least 1"
            )

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        obs = Observability(clock=loop.time)
        app = _build_app(args, obs)
        server = ServiceServer(app, host=args.host, port=args.port)
        host, port = await server.start()
        print(f"serving on http://{host}:{port}")
        print(
            f"  cluster: {args.shards} shard(s), "
            f"replication {min(args.replication, args.shards)}, "
            f"deadline {args.deadline:g}s, "
            f"degraded reads {'off' if args.strict else 'on'}"
        )
        if args.populate:
            print(
                f"  population: {args.populate} seeded claims "
                f"({args.revoked_fraction:.0%} revoked)"
            )
        print("  endpoints: see docs/api.md; GET /healthz to probe")
        try:
            await asyncio.Event().wait()  # serve until interrupted
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


async def _self_serve(
    args: argparse.Namespace,
) -> Tuple[LoadReport, Optional[str]]:
    """One-process smoke: serve on :0, load, scrape /metrics, stop."""
    from repro.obs import Observability
    from repro.service.app import ServiceServer
    from repro.service.protocol import HttpClient

    loop = asyncio.get_running_loop()
    obs = Observability(clock=loop.time)
    serve_defaults = argparse.Namespace(
        shards=4, replication=3, seed=args.seed, populate=64,
        revoked_fraction=0.2, deadline=0.25, shed_rate=None, strict=False,
    )
    app = _build_app(serve_defaults, obs)
    server = ServiceServer(app, host="127.0.0.1", port=0)
    host, port = await server.start()
    config = LoadgenConfig(
        host=host, port=port, rate=args.rate, duration=args.duration,
        seed=args.seed, deadline_ms=args.deadline_ms,
        warmup_claims=args.warmup_claims, connections=args.connections,
    )
    try:
        report = await run_loadgen(config)
        client = HttpClient(host, port)
        scrape_problem: Optional[str] = None
        try:
            response = await client.request("GET", "/metrics")
            text = response.body.decode("utf-8")
            if response.status != 200:
                scrape_problem = f"/metrics answered {response.status}"
            elif "service_requests_total" not in text:
                scrape_problem = "/metrics exposition lacks service_* series"
        finally:
            await client.close()
    finally:
        await server.stop()
    return report, scrape_problem


def run_loadgen_cli(args: argparse.Namespace) -> int:
    if args.rate <= 0 or args.duration <= 0:
        raise SystemExit(
            "python -m repro loadgen: --rate and --duration must be positive"
        )

    if args.self_serve:
        report, scrape_problem = asyncio.run(_self_serve(args))
    else:
        config = LoadgenConfig(
            host=args.host, port=args.port, rate=args.rate,
            duration=args.duration, seed=args.seed,
            deadline_ms=args.deadline_ms,
            warmup_claims=args.warmup_claims, connections=args.connections,
        )
        report = asyncio.run(run_loadgen(config))
        scrape_problem = None
    print(report.table().render())
    kinds = report.kind_counts()
    if kinds:
        print(f"  error kinds: {kinds}")
    print(
        f"  answered: {report.answered_fraction():.1%} of "
        f"{len(report.samples)} requests; "
        f"{len(report.revoked_ids)} revocations acked"
    )
    if scrape_problem is not None:
        print(f"  metrics scrape: FAIL — {scrape_problem}")
    elif args.self_serve:
        print("  metrics scrape: OK (service_* series present)")
    if report.violations:
        print(f"  invariants: {len(report.violations)} violation(s)")
        for violation in report.violations:
            print(f"    {violation}")
        return 1
    print("  invariants: OK — envelopes documented, no fail-open, "
          "no lost claims")
    return 1 if scrape_problem is not None else 0
