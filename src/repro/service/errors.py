"""The service's stable JSON error envelope.

Every non-authoritative answer the API gives carries the same shape:

.. code-block:: json

    {"error": {"kind": "deadline", "status": 504, "detail": "..."}}

``kind`` is the machine-readable contract — clients branch on it, the
loadgen's invariant checker asserts it, and ``docs/api.md`` tables it.
The mapping below is the single source of truth; the doc table is held
equal to it by ``tests/service/test_error_envelope.py``.

``degraded`` is the one deliberate oddity: a degraded Bloom answer is
still an *answer* (fail-closed, per §4.2), so it ships with a ``200``-
family status — ``203 Non-Authoritative Information`` — plus the
advisory envelope, letting clients distinguish it from an
authoritative quorum read without treating it as a failure.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["ERROR_STATUS", "ERROR_KINDS", "ApiError", "error_envelope"]

#: kind -> HTTP status. Keep sorted by status; docs/api.md mirrors this.
ERROR_STATUS: Dict[str, int] = {
    "degraded": 203,  # filter-backed answer; quorum unreachable or out of budget
    "malformed": 400,  # unparseable body, bad identifier, bad header
    "not_found": 404,  # identifier not claimed on this cluster
    "method_not_allowed": 405,  # path exists, method does not
    "too_large": 413,  # body over the configured limit
    "shed": 429,  # token-bucket admission refused the request
    "internal": 500,  # handler raised; always a bug, never load
    "unavailable": 503,  # read/write quorum unreachable, degraded reads off
    "deadline": 504,  # request budget exhausted before a quorum answered
}

ERROR_KINDS = frozenset(ERROR_STATUS)


class ApiError(Exception):
    """Raised by handlers; the dispatcher renders the envelope."""

    def __init__(self, kind: str, detail: str):
        if kind not in ERROR_STATUS:
            raise ValueError(f"unknown error kind {kind!r}")
        super().__init__(detail)
        self.kind = kind
        self.detail = detail

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.kind]


def error_envelope(kind: str, detail: Optional[str]) -> Dict[str, Any]:
    """The ``error`` object embedded in every non-authoritative body."""
    return {
        "error": {
            "kind": kind,
            "status": ERROR_STATUS[kind],
            "detail": detail or kind,
        }
    }
