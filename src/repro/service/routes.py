"""The route registry: the single machine-readable API surface.

``ROUTES`` is deliberately a flat tuple of ``Route`` literals with the
method and path as the first two string arguments —
``tools/check_docs.py`` parses this file *textually* (no PYTHONPATH)
and compares the table against ``docs/api.md`` in both directions,
exactly the way it already pins metric names and lint rules.  Add an
endpoint here without documenting it (or vice versa) and CI fails.

Path patterns use ``{name}`` placeholders for single path segments;
:func:`match_route` resolves a concrete request line to a route plus
captured parameters, distinguishing 404 (no pattern matches the path)
from 405 (a pattern matches, but not with this method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.service.errors import ApiError

__all__ = ["Route", "ROUTES", "match_route"]


@dataclass(frozen=True)
class Route:
    """One served endpoint: the wire contract plus its handler name."""

    method: str
    pattern: str  # e.g. "/status/{id}"
    handler: str  # ServiceApp method name
    summary: str

    def segments(self) -> Tuple[str, ...]:
        return tuple(self.pattern.strip("/").split("/"))


ROUTES: Tuple[Route, ...] = (
    Route("POST", "/claims", "handle_claims",
          "claim a content hash; returns the deterministic identifier"),
    Route("POST", "/labels", "handle_labels",
          "label channels (metadata string + watermark hex) for a claimed id"),
    Route("POST", "/revocations", "handle_revocations",
          "revoke or unrevoke a claimed identifier at write quorum"),
    Route("GET", "/status/{id}", "handle_status_one",
          "revocation status of one identifier"),
    Route("POST", "/status", "handle_status_batch",
          "batch revocation status for a list of identifiers"),
    Route("GET", "/bloom", "handle_bloom",
          "Bloom filter export of revoked identifiers; ETag = chain head"),
    Route("GET", "/deltas", "handle_deltas",
          "acknowledged revocation feed since a cursor"),
    Route("GET", "/metrics", "handle_metrics",
          "Prometheus exposition of the service + frontend registry"),
    Route("GET", "/healthz", "handle_healthz",
          "liveness: shard count, breaker state, chain head"),
)


def match_route(method: str, path: str) -> Tuple[Route, Dict[str, str]]:
    """Resolve ``(method, path)`` to ``(route, params)`` or raise.

    Raises :class:`ApiError` with kind ``not_found`` when no pattern
    matches the path at all, and ``method_not_allowed`` when at least
    one does but none with this method.
    """
    segments = tuple(path.strip("/").split("/"))
    path_matched = False
    for route in ROUTES:
        pattern = route.segments()
        if len(pattern) != len(segments):
            continue
        params: Optional[Dict[str, str]] = {}
        for want, got in zip(pattern, segments):
            if want.startswith("{") and want.endswith("}"):
                if not got:
                    params = None
                    break
                params[want[1:-1]] = got
            elif want != got:
                params = None
                break
        if params is None:
            continue
        path_matched = True
        if route.method == method:
            return route, params
    if path_matched:
        raise ApiError("method_not_allowed", f"{method} not allowed on {path}")
    raise ApiError("not_found", f"no route for {path}")
