"""Seeded open-loop load generator + invariant checker for the service.

Open loop means arrivals do not wait for completions: the full arrival
schedule is precomputed from one seeded RNG (exponential inter-arrival
times at the target rate), each arrival fires as its own task, and a
slow server therefore sees queueing — the honest way to measure p99
against a budget, where a closed loop would flatter the server by
backing off exactly when it struggles.

The generator is *self-sufficient*: it claims its own seeded
identifiers during warmup, then mixes status checks, fresh claims and
revocations over them, so it can drive any server that speaks the
``docs/api.md`` contract without out-of-band coordination.

Every response feeds the invariant checker:

* **envelope** — bodies parse as JSON, any ``error.kind`` is one the
  API documents, and its HTTP status matches the table;
* **claim durability** — an acknowledged claim never 404s later;
* **fail-closed** — after the run, every acknowledged revocation must
  read back ``revoked: true`` — *including* degraded answers, which is
  exactly the frontend's learning-filter guarantee, now asserted
  through a real socket.

A non-empty ``violations`` list fails the CLI (and therefore the CI
smoke step) with exit status 1.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.reporting import Table
from repro.service.errors import ERROR_KINDS, ERROR_STATUS
from repro.service.protocol import HttpClient

__all__ = ["LoadgenConfig", "OpSample", "LoadReport", "run_loadgen"]

#: HTTP statuses that are answers (not envelope-only failures).
ANSWER_STATUSES = (200, 201, 203)


@dataclass
class LoadgenConfig:
    """One load run, fully determined by its seed."""

    host: str = "127.0.0.1"
    port: int = 8080
    rate: float = 100.0  # arrivals per second (open loop)
    duration: float = 5.0  # seconds of scheduled arrivals
    seed: int = 0
    warmup_claims: int = 32  # identifiers claimed before the clock starts
    status_fraction: float = 0.90
    claim_fraction: float = 0.05  # remainder is revocations
    deadline_ms: float = 250.0  # X-Deadline-Ms on status reads (§4.4)
    write_deadline_ms: float = 1000.0  # claims/revocations budget
    connections: int = 32


@dataclass(slots=True)
class OpSample:
    """One completed request."""

    op: str  # 'status' | 'claim' | 'revoke'
    status: int
    kind: Optional[str]  # error.kind when the body carried an envelope
    latency: float  # seconds, client-observed
    scheduled_at: float  # offset into the run, seconds


@dataclass
class LoadReport:
    """Everything the CLI, the CI smoke and bench E21 need."""

    config: LoadgenConfig
    samples: List[OpSample] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    claimed_ids: List[str] = field(default_factory=list)
    revoked_ids: List[str] = field(default_factory=list)

    def of_op(self, *ops: str) -> List[OpSample]:
        wanted = set(ops)
        return [s for s in self.samples if s.op in wanted]

    @staticmethod
    def latencies_ms(samples: Sequence[OpSample]) -> np.ndarray:
        return np.array([s.latency * 1e3 for s in samples], dtype=float)

    @staticmethod
    def percentile(samples: Sequence[OpSample], q: float) -> float:
        if not samples:
            return 0.0
        return float(np.percentile(LoadReport.latencies_ms(samples), q))

    def answered_fraction(self, *ops: str) -> float:
        samples = self.of_op(*ops) if ops else self.samples
        if not samples:
            return 0.0
        good = sum(1 for s in samples if s.status in ANSWER_STATUSES)
        return good / len(samples)

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sample in self.samples:
            if sample.kind is not None:
                counts[sample.kind] = counts.get(sample.kind, 0) + 1
        return dict(sorted(counts.items()))

    def table(self) -> Table:
        t = Table(
            headers=["op", "count", "answered", "p50 ms", "p99 ms", "max ms"],
            title=f"loadgen: {self.config.rate:g} req/s for "
            f"{self.config.duration:g} s (seed {self.config.seed})",
        )
        for op in ("status", "claim", "revoke"):
            samples = self.of_op(op)
            if not samples:
                continue
            lat = self.latencies_ms(samples)
            t.add(
                op,
                len(samples),
                f"{self.answered_fraction(op):.1%}",
                f"{float(np.percentile(lat, 50)):.1f}",
                f"{float(np.percentile(lat, 99)):.1f}",
                f"{float(lat.max()):.1f}",
            )
        return t


def arrival_schedule(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative arrival offsets (seconds) — pure function of the rng."""
    if rate <= 0.0 or duration <= 0.0:
        return np.array([], dtype=float)
    # Draw enough exponential gaps to cover the window, then truncate.
    expected = max(int(rate * duration * 1.5) + 16, 16)
    gaps = rng.exponential(1.0 / rate, size=expected)
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration:
        more = rng.exponential(1.0 / rate, size=expected)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < duration]


class _ClientPool:
    """Bounded keep-alive connection pool (LIFO keeps sockets warm)."""

    def __init__(self, host: str, port: int, limit: int):
        self._host = host
        self._port = port
        self._limit = limit
        self._created = 0
        self._idle: asyncio.LifoQueue = asyncio.LifoQueue()

    async def acquire(self) -> HttpClient:
        if self._idle.empty() and self._created < self._limit:
            self._created += 1
            return HttpClient(self._host, self._port)
        return await self._idle.get()

    def release(self, client: HttpClient) -> None:
        self._idle.put_nowait(client)

    async def discard(self, client: HttpClient) -> None:
        await client.close()
        self._created -= 1

    async def close(self) -> None:
        while not self._idle.empty():
            await (self._idle.get_nowait()).close()


def _check_envelope(
    body: Any, status: int, op: str, violations: List[str]
) -> Optional[str]:
    """Validate one response against the documented envelope; return kind."""
    if not isinstance(body, dict):
        violations.append(f"{op}: body is not a JSON object (status {status})")
        return None
    error = body.get("error")
    if error is None:
        if status not in ANSWER_STATUSES and status != 304:
            violations.append(
                f"{op}: status {status} without an error envelope"
            )
        return None
    if not isinstance(error, dict):
        violations.append(f"{op}: error is not an object (status {status})")
        return None
    kind = error.get("kind")
    if kind not in ERROR_KINDS:
        violations.append(f"{op}: undocumented error kind {kind!r}")
        return None
    if ERROR_STATUS[kind] != status:
        violations.append(
            f"{op}: kind {kind!r} documented as {ERROR_STATUS[kind]}, "
            f"served as {status}"
        )
    return kind


async def run_loadgen(config: LoadgenConfig) -> LoadReport:
    """Drive one seeded open-loop run; see the module docstring."""
    rng = np.random.default_rng(config.seed)
    loop = asyncio.get_running_loop()
    report = LoadReport(config=config)
    pool = _ClientPool(config.host, config.port, config.connections)
    # ids this generator owns; revocable = not yet revoked.
    owned: List[str] = []
    revocable: List[str] = []
    claim_counter = 0

    def next_content() -> str:
        nonlocal claim_counter
        claim_counter += 1
        return f"loadgen:{config.seed}:{claim_counter}"

    async def do_request(
        op: str,
        method: str,
        path: str,
        body: Any,
        deadline_ms: float,
        scheduled_at: float,
    ) -> Tuple[int, Any]:
        client = await pool.acquire()
        started = loop.time()
        try:
            response = await client.request(
                method, path, body,
                headers={"x-deadline-ms": f"{deadline_ms:g}"},
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            await pool.discard(client)
            report.violations.append(
                f"{op}: transport failure {type(exc).__name__}: {exc}"
            )
            report.samples.append(OpSample(
                op=op, status=0, kind=None,
                latency=loop.time() - started, scheduled_at=scheduled_at,
            ))
            return 0, None
        latency = loop.time() - started
        if client.connected:
            pool.release(client)
        else:
            await pool.discard(client)
        try:
            parsed = response.json() if response.body else None
        except ValueError:
            report.violations.append(f"{op}: unparseable JSON body")
            parsed = None
        kind = _check_envelope(parsed, response.status, op, report.violations)
        report.samples.append(OpSample(
            op=op, status=response.status, kind=kind,
            latency=latency, scheduled_at=scheduled_at,
        ))
        return response.status, parsed

    async def do_claim(scheduled_at: float) -> None:
        content = next_content()
        status, body = await do_request(
            "claim", "POST", "/claims", {"content": content},
            config.write_deadline_ms, scheduled_at,
        )
        if status == 201 and isinstance(body, dict) and body.get("id"):
            owned.append(body["id"])
            revocable.append(body["id"])
            report.claimed_ids.append(body["id"])

    async def do_status(scheduled_at: float, index: int) -> None:
        if not owned:
            return
        target = owned[index % len(owned)]
        await do_request(
            "status", "GET", f"/status/{target}", None,
            config.deadline_ms, scheduled_at,
        )

    async def do_revoke(scheduled_at: float, index: int) -> None:
        if not revocable:
            await do_claim(scheduled_at)
            return
        target = revocable.pop(index % len(revocable))
        status, _ = await do_request(
            "revoke", "POST", "/revocations",
            {"id": target, "action": "revoke"},
            config.write_deadline_ms, scheduled_at,
        )
        if status == 200:
            report.revoked_ids.append(target)
        else:
            revocable.append(target)  # not acked; eligible again

    # -- warmup: claim the working set, sequentially (not measured) --------
    for _ in range(config.warmup_claims):
        await do_claim(scheduled_at=-1.0)
    warmup_failures = sum(
        1 for s in report.samples if s.op == "claim" and s.status != 201
    )
    if warmup_failures:
        report.violations.append(
            f"warmup: {warmup_failures}/{config.warmup_claims} claims not acked"
        )
    report.samples.clear()  # only the measured window counts

    # -- open-loop window --------------------------------------------------
    offsets = arrival_schedule(config.rate, config.duration, rng)
    choices = rng.uniform(size=offsets.size)
    indices = rng.integers(0, 1 << 30, size=offsets.size)
    base = loop.time()
    tasks: List[asyncio.Task] = []
    for i, offset in enumerate(offsets):
        delay = base + float(offset) - loop.time()
        if delay > 0.0:
            await asyncio.sleep(delay)
        pick = float(choices[i])
        index = int(indices[i])
        if pick < config.status_fraction:
            coro = do_status(float(offset), index)
        elif pick < config.status_fraction + config.claim_fraction:
            coro = do_claim(float(offset))
        else:
            coro = do_revoke(float(offset), index)
        tasks.append(asyncio.ensure_future(coro))
    if tasks:
        await asyncio.gather(*tasks)

    # -- fail-closed sweep: every acked revocation must read revoked ------
    measured = len(report.samples)
    for target in report.revoked_ids:
        status, body = await do_request(
            "sweep", "GET", f"/status/{target}", None,
            config.write_deadline_ms, scheduled_at=-2.0,
        )
        if status in ANSWER_STATUSES and isinstance(body, dict):
            if body.get("revoked") is not True:
                report.violations.append(
                    f"fail_open: acked revocation {target} read back "
                    f"revoked={body.get('revoked')!r} "
                    f"(source {body.get('source')!r})"
                )
        elif status != 0:
            report.violations.append(
                f"sweep: acked revocation {target} unreadable "
                f"(status {status})"
            )
    for target in report.claimed_ids:
        # Claim durability: an acked claim must never 404.
        status, body = await do_request(
            "sweep", "GET", f"/status/{target}", None,
            config.write_deadline_ms, scheduled_at=-2.0,
        )
        if status == 404:
            report.violations.append(
                f"lost_claim: acked claim {target} answered 404"
            )
    del report.samples[measured:]  # sweep reads are checks, not samples
    await pool.close()
    return report
