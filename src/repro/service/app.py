"""The HTTP application: routing, handlers, answer→envelope mapping.

One :class:`ServiceApp` owns a :class:`LiveCluster` and translates the
wire contract documented in ``docs/api.md`` onto the frontend's async
callback API.  Design points worth naming:

* **Deadlines are the client's.**  An ``X-Deadline-Ms`` header becomes
  a :class:`~repro.resilience.policy.Deadline` threaded into
  ``status_async`` (reads) or an ``asyncio.wait_for`` bound (writes),
  so the paper's §4.4 budgets are enforced end to end, not advisory.
* **Degraded ≠ failed.**  A Bloom-backed answer is served as ``203``
  with the advisory ``error.kind="degraded"`` envelope (fail-closed,
  still an answer); shed is ``429``, deadline ``504``, quorum-dark
  with degraded reads disabled ``503`` — all distinguishable from the
  ``ClusterAnswer.cause`` field.
* **Every handler is instrumented** through ``repro.obs``: a
  ``service.request`` span per request plus the ``service_*`` counters
  and latency histogram tabled in ``docs/observability.md``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.frontend import ClusterAnswer
from repro.core.identifiers import IdentifierError, PhotoIdentifier
from repro.crypto.signatures import KeyPair
from repro.crypto.hashing import sha256_hex
from repro.resilience.policy import Deadline
from repro.service.cluster import LiveCluster, LiveClusterConfig
from repro.service.errors import ERROR_STATUS, ApiError, error_envelope
from repro.service.protocol import (
    HttpRequest,
    read_request,
    render_response,
)
from repro.service.routes import Route, match_route

__all__ = ["ServiceApp", "ServiceServer"]

DEADLINE_HEADER = "x-deadline-ms"
MAX_BATCH_IDS = 1024
MAX_DELTA_PAGE = 1000


class ServiceApp:
    """Handlers + dispatch over one live cluster."""

    def __init__(
        self,
        cluster: Optional[LiveCluster] = None,
        config: Optional[LiveClusterConfig] = None,
        obs=None,
    ):
        self.obs = obs
        self.cluster = cluster or LiveCluster(config=config, obs=obs)
        self.frontend = self.cluster.frontend
        self._loop = asyncio.get_running_loop()
        # One service-owner keypair signs all custodial claims and
        # revocations (per-claim RSA keygen would blow the §4.4 budget
        # by itself); seeded, so runs reproduce.
        self.owner_keypair = KeyPair.generate(
            bits=self.cluster.config.key_bits,
            rng=self.cluster.rngs.stream("service-owner"),
        )
        # serial -> signing keypair for /revocations (service claims
        # plus any seeded population registered via adopt_population).
        self._owners: Dict[int, KeyPair] = {}
        # Service-local acked-revocation feed served by /deltas.
        self._deltas: List[Dict[str, Any]] = []
        self._bloom_cache: Optional[Tuple[str, bytes, Dict[str, str]]] = None
        # Single-flight guard for the Bloom export: the full-record
        # scan runs off-loop in an executor, and only one request per
        # chain head pays for it.
        self._bloom_lock = asyncio.Lock()
        self._inflight = 0

    # -- population helpers -----------------------------------------------------------

    def adopt_population(self, population) -> None:
        """Register seeded identifiers so /revocations can sign for them."""
        for identifier in population.identifiers:
            self._owners[identifier.serial] = population.owner

    # -- deadline plumbing -------------------------------------------------------------

    def _deadline_from(self, request: HttpRequest) -> Optional[Deadline]:
        raw = request.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            ms = float(raw)
        except ValueError as exc:
            raise ApiError(
                "malformed", f"bad {DEADLINE_HEADER} header: {raw!r}"
            ) from exc
        if ms <= 0.0:
            raise ApiError(
                "malformed", f"{DEADLINE_HEADER} must be positive, got {raw!r}"
            )
        return Deadline.after(self.cluster.clock(), ms / 1000.0)

    async def _bounded(self, awaitable, deadline: Optional[Deadline]):
        """Await under the request budget; expiry is a 504 envelope."""
        if deadline is None:
            return await awaitable
        remaining = deadline.remaining(self.cluster.clock())
        if remaining <= 0.0:
            raise ApiError("deadline", "request budget exhausted")
        try:
            return await asyncio.wait_for(awaitable, timeout=remaining)
        except asyncio.TimeoutError as exc:
            raise ApiError(
                "deadline", "request budget exhausted before quorum"
            ) from exc

    # -- identifier parsing ------------------------------------------------------------

    def _parse_identifier(self, raw: Any) -> PhotoIdentifier:
        if not isinstance(raw, str):
            raise ApiError("malformed", "identifier must be a string")
        try:
            identifier = PhotoIdentifier.from_string(raw)
        except IdentifierError as exc:
            raise ApiError("malformed", f"bad identifier {raw!r}: {exc}") from exc
        if identifier.ledger_id != self.cluster.cluster_id:
            raise ApiError(
                "not_found",
                f"identifier names ledger {identifier.ledger_id!r}, "
                f"this cluster serves {self.cluster.cluster_id!r}",
            )
        return identifier

    # -- ClusterAnswer -> wire ---------------------------------------------------------

    def _status_body(self, answer: ClusterAnswer) -> Tuple[int, Dict[str, Any]]:
        """Map one frontend answer onto (HTTP status, JSON body)."""
        body: Dict[str, Any] = {
            "id": answer.identifier,
            "revoked": answer.revoked,
            "source": answer.source,
            "state": answer.state,
            "epoch": answer.epoch,
            "answered_by": answer.answered_by,
            "degraded": answer.degraded,
            "error": None,
        }
        if answer.ok and not answer.degraded:
            return 200, body
        if answer.degraded:
            # Filter-backed fail-closed answer: an answer, not a failure.
            kind = "degraded"
            detail = {
                "deadline": "budget exhausted; answered from the filter",
                "shed": "admission refused; answered from the filter",
            }.get(answer.cause or "", "quorum unreachable; answered from the filter")
        elif answer.error is not None and "unknown serial" in answer.error:
            kind, detail = "not_found", answer.error
        elif answer.cause == "shed":
            kind, detail = "shed", answer.error or "load shed"
        elif answer.cause == "deadline":
            kind, detail = "deadline", answer.error or "deadline exceeded"
        else:
            kind, detail = "unavailable", answer.error or "quorum unreachable"
        body.update(error_envelope(kind, detail))
        return ERROR_STATUS[kind], body

    # -- handlers ----------------------------------------------------------------------

    async def handle_claims(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ApiError("malformed", "body must be a JSON object")
        content_hash = payload.get("content_hash")
        if not isinstance(content_hash, str) or not content_hash:
            content = payload.get("content")
            if not isinstance(content, str) or not content:
                raise ApiError(
                    "malformed", "body needs 'content_hash' or 'content'"
                )
            content_hash = sha256_hex(content.encode("utf-8"))
        deadline = self._deadline_from(request)
        signature = self.owner_keypair.sign(content_hash.encode("utf-8"))
        fut: asyncio.Future = self._loop.create_future()

        def _done(identifier: PhotoIdentifier, error: Optional[str]) -> None:
            if not fut.done():
                fut.set_result((identifier, error))

        identifier = self.frontend.claim_async(
            content_hash,
            signature,
            self.owner_keypair.public,
            _done,
            initially_revoked=bool(payload.get("initially_revoked", False)),
            custodial=bool(payload.get("custodial", True)),
        )
        _, error = await self._bounded(fut, deadline)
        if error is not None:
            if "already claimed" in error:
                raise ApiError("malformed", error)
            raise ApiError("unavailable", error)
        self._owners[identifier.serial] = self.owner_keypair
        return 201, {
            "id": identifier.to_string(),
            "content_hash": content_hash,
            "custodial": bool(payload.get("custodial", True)),
            "error": None,
        }, {}

    async def handle_labels(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ApiError("malformed", "body must be a JSON object")
        identifier = self._parse_identifier(payload.get("id"))
        deadline = self._deadline_from(request)
        # Verify the id is actually claimed before handing out label
        # channels — an authoritative read, so deadline rules apply.
        answer = await self._bounded(
            self._status(identifier, deadline, use_filter=False), deadline
        )
        status, body = self._status_body(answer)
        if status not in (200, 203):
            return status, body, {}
        return 200, {
            "id": identifier.to_string(),
            "metadata": identifier.to_string(),
            "watermark_hex": identifier.to_compact().hex(),
            "revoked": answer.revoked,
            "error": None,
        }, {}

    async def handle_revocations(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ApiError("malformed", "body must be a JSON object")
        identifier = self._parse_identifier(payload.get("id"))
        action = payload.get("action", "revoke")
        if action not in ("revoke", "unrevoke"):
            raise ApiError(
                "malformed", f"action must be revoke|unrevoke, got {action!r}"
            )
        keypair = self._owners.get(identifier.serial)
        if keypair is None:
            raise ApiError(
                "not_found",
                f"{identifier.to_string()} has no registered owner key here",
            )
        deadline = self._deadline_from(request)
        fut: asyncio.Future = self._loop.create_future()

        def _done(outcome, error: Optional[str]) -> None:
            if not fut.done():
                fut.set_result((outcome, error))

        self.frontend.revoke_async(identifier, keypair, _done, action=action)
        outcome, error = await self._bounded(fut, deadline)
        if error is not None:
            if "unknown serial" in error:
                raise ApiError("not_found", error)
            raise ApiError("unavailable", error)
        entry = {
            "seq": len(self._deltas) + 1,
            "id": identifier.to_string(),
            "action": action,
            "epoch": outcome.get("epoch", -1) if outcome else -1,
        }
        self._deltas.append(entry)
        return 200, {
            "id": identifier.to_string(),
            "action": action,
            "epoch": entry["epoch"],
            "error": None,
        }, {}

    def _status(
        self,
        identifier: PhotoIdentifier,
        deadline: Optional[Deadline],
        use_filter: bool = True,
    ) -> asyncio.Future:
        fut: asyncio.Future = self._loop.create_future()

        def _done(answer: ClusterAnswer) -> None:
            if not fut.done():
                fut.set_result(answer)

        self.frontend.status_async(
            identifier, _done, use_filter=use_filter, deadline=deadline
        )
        return fut

    async def handle_status_one(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        identifier = self._parse_identifier(params["id"])
        deadline = self._deadline_from(request)
        answer = await self._status(identifier, deadline)
        status, body = self._status_body(answer)
        return status, body, {}

    async def handle_status_batch(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        payload = request.json()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("ids"), list
        ):
            raise ApiError("malformed", "body must be {'ids': [...]}")
        raw_ids = payload["ids"]
        if not raw_ids:
            raise ApiError("malformed", "'ids' must not be empty")
        if len(raw_ids) > MAX_BATCH_IDS:
            raise ApiError(
                "too_large", f"at most {MAX_BATCH_IDS} ids per batch"
            )
        identifiers = [self._parse_identifier(raw) for raw in raw_ids]
        deadline = self._deadline_from(request)
        answers: List[Optional[ClusterAnswer]] = [None] * len(identifiers)
        remaining = len(identifiers)
        fut: asyncio.Future = self._loop.create_future()

        def _done(index: int, answer: ClusterAnswer) -> None:
            nonlocal remaining
            if answers[index] is None:
                answers[index] = answer
                remaining -= 1
                if remaining == 0 and not fut.done():
                    fut.set_result(None)

        self.frontend.status_many_async(identifiers, _done, deadline=deadline)
        await self._bounded(fut, deadline)
        results = []
        for answer in answers:
            assert answer is not None
            _, body = self._status_body(answer)
            results.append(body)
        return 200, {"results": results, "error": None}, {}

    async def handle_bloom(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        # export_bloom scans every record to rebuild the filter — real
        # CPU work that must not run on the event loop (it would stall
        # every in-flight request; the blocking-in-async lint pass
        # exists for exactly this shape). It runs in the default
        # executor, bounded by the request deadline, and the lock makes
        # it single-flight: one scan per chain head no matter how many
        # clients ask at once.
        deadline = self._deadline_from(request)
        etag = self.cluster.chain_head()
        quoted = f'"{etag}"'
        if request.headers.get("if-none-match") == quoted:
            return 304, b"", {"etag": quoted}
        cache = self._bloom_cache
        if cache is None or cache[0] != etag:
            async with self._bloom_lock:
                cache = self._bloom_cache
                if cache is None or cache[0] != etag:
                    data, extra = await self._bounded(
                        self._loop.run_in_executor(
                            None, self.cluster.export_bloom
                        ),
                        deadline,
                    )
                    cache = (etag, data, extra)
                    self._bloom_cache = cache
        _, data, extra = cache
        headers = {
            "etag": quoted,
            "content-type": "application/octet-stream",
            **extra,
        }
        return 200, data, headers

    async def handle_deltas(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        raw = request.query.get("since", "0")
        try:
            since = int(raw)
        except ValueError as exc:
            raise ApiError(
                "malformed", f"'since' must be an integer, got {raw!r}"
            ) from exc
        if since < 0:
            raise ApiError("malformed", "'since' must be >= 0")
        entries = [e for e in self._deltas if e["seq"] > since]
        truncated = len(entries) > MAX_DELTA_PAGE
        entries = entries[:MAX_DELTA_PAGE]
        return 200, {
            "since": since,
            "head": len(self._deltas),
            "entries": entries,
            "truncated": truncated,
            "error": None,
        }, {}

    async def handle_metrics(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        if self.obs is None:
            return 200, b"# no observability attached\n", {
                "content-type": "text/plain; version=0.0.4"
            }
        text = self.obs.export_prometheus()
        return 200, text.encode("utf-8"), {
            "content-type": "text/plain; version=0.0.4"
        }

    async def handle_healthz(
        self, request: HttpRequest, params: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        breakers = self.frontend.breakers
        open_targets = sorted(breakers.open_targets()) if breakers else []
        return 200, {
            "ok": not open_targets,
            "shards": len(self.cluster.shards),
            "shards_down": sorted(self.cluster.transport.down),
            "breakers_open": open_targets,
            "chain_head": self.cluster.chain_head(),
            "deltas": len(self._deltas),
            "error": None,
        }, {}

    # -- dispatch ----------------------------------------------------------------------

    async def dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Route + run one request, rendering envelopes for failures."""
        started = self.cluster.clock()
        route: Optional[Route] = None
        span = None
        self._inflight += 1
        if self.obs is not None:
            self.obs.gauge("service_inflight").set(self._inflight)
        try:
            route, params = match_route(request.method, request.path)
            if self.obs is not None:
                self.obs.counter(
                    "service_requests_total", route=route.pattern
                ).inc()
                span = self.obs.start(
                    "service.request", route=route.pattern, method=request.method
                )
            handler = getattr(self, route.handler)
            status, body, headers = await handler(request, params)
        except ApiError as exc:
            status, body, headers = exc.status, error_envelope(
                exc.kind, exc.detail
            ), {}
            if self.obs is not None:
                self.obs.counter("service_errors_total", kind=exc.kind).inc()
        except Exception as exc:  # surface handler bugs as 500 envelopes
            status, body, headers = 500, error_envelope(
                "internal", f"{type(exc).__name__}: {exc}"
            ), {}
            if self.obs is not None:
                self.obs.counter("service_errors_total", kind="internal").inc()
        finally:
            self._inflight -= 1
            if self.obs is not None:
                self.obs.gauge("service_inflight").set(self._inflight)
        if isinstance(body, (dict, list)):
            raw = json.dumps(body).encode("utf-8")
        else:
            raw = body
        if self.obs is not None:
            self.obs.counter("service_responses_total", code=str(status)).inc()
            self.obs.histogram("service_request_latency_seconds").observe(
                self.cluster.clock() - started
            )
            if span is not None:
                span.end(status=status)
        return status, raw, headers


class ServiceServer:
    """asyncio server wrapper: sockets in, :class:`ServiceApp` out."""

    def __init__(self, app: ServiceApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self.app.obs is not None:
            self.app.obs.counter("service_connections_total").inc()
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ApiError as exc:
                    body = json.dumps(
                        error_envelope(exc.kind, exc.detail)
                    ).encode("utf-8")
                    writer.write(
                        render_response(exc.status, body, keep_alive=False)
                    )
                    await writer.drain()
                    if self.app.obs is not None:
                        self.app.obs.counter(
                            "service_errors_total", kind=exc.kind
                        ).inc()
                    break
                if request is None:
                    break
                status, raw, headers = await self.app.dispatch(request)
                content_type = headers.pop(
                    "content-type", "application/json"
                )
                writer.write(
                    render_response(
                        status,
                        raw,
                        content_type=content_type,
                        extra_headers=headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # repro-lint: allow[no-silent-except] peer hangup mid-request is normal teardown
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Benign teardown races: the peer is gone or the loop is
                # shutting down, and closing was the goal anyway.  This
                # is the coroutine's last statement, so swallowing the
                # cancellation cannot strand any further work.
                pass  # repro-lint: allow[no-silent-except] close-time teardown race

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
