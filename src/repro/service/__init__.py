"""The HTTP/JSON service surface in front of the cluster.

``repro.service`` bridges the reproduction to a real network service:
a stdlib-``asyncio`` HTTP/1.1 server (no web framework) that exposes
the claim / label / revoke / status protocol over JSON, in front of
the same :class:`~repro.cluster.frontend.ClusterFrontend` the
simulated experiments drive.  The event loop's ``loop.time`` /
``loop.call_later`` stand in for the simulator's clock and scheduler,
so the frontend's deadline backstop, circuit breakers, token-bucket
shedding and degraded Bloom reads all operate unchanged — E21 measures
them over a real socket against the paper's §4.4 budgets.

The API contract lives in ``docs/api.md`` and is drift-checked two-way
against :data:`repro.service.routes.ROUTES` by ``tools/check_docs.py``.
"""

from repro.service.app import ServiceApp, ServiceServer
from repro.service.cluster import LiveCluster, LiveClusterConfig
from repro.service.errors import ERROR_STATUS, ApiError, error_envelope
from repro.service.loadgen import LoadgenConfig, LoadReport, run_loadgen
from repro.service.routes import ROUTES, Route, match_route

__all__ = [
    "ApiError",
    "ERROR_STATUS",
    "LiveCluster",
    "LiveClusterConfig",
    "LoadReport",
    "LoadgenConfig",
    "ROUTES",
    "Route",
    "ServiceApp",
    "ServiceServer",
    "error_envelope",
    "match_route",
    "run_loadgen",
]
