"""A real (non-simulated) cluster for the HTTP service to front.

``LiveCluster`` stands up in-process :class:`ClusterShard` replicas and
a :class:`ClusterFrontend` whose injected clock and scheduler are the
asyncio event loop's own ``loop.time`` / ``loop.call_later`` — the
third execution style next to the repo's in-process and simulated
ones, and the reason none of the frontend's resilience machinery
(deadline backstop, breakers, shedding, degraded Bloom reads) needed
changing to serve real sockets.

:class:`AsyncioShardTransport` is the event-loop twin of the netsim
RPC layer: every ``invoke`` is delivered on a later loop tick (never
synchronously — callers rely on callback-after-return), guarded by a
real timeout timer, with per-shard ``down`` / ``delay`` fault hooks so
the error-envelope tests can produce breaker-open and deadline
conditions on demand.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.frontend import ClusterConfig, ClusterFrontend
from repro.cluster.health import FailureDetector
from repro.cluster.replication import ShardReply
from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterShard, content_serial
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.filters.bloom import BloomFilter
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest
from repro.netsim.rand import RngRegistry

__all__ = [
    "AsyncioShardTransport",
    "LiveCluster",
    "LiveClusterConfig",
    "LivePopulation",
    "LearningBloom",
]


class LearningBloom:
    """Frontend filterset for degraded reads (learning, fail-closed).

    Same contract as the chaos harness's ``RevocationBloom`` without
    dragging the chaos runner into the service's import graph: the
    frontend inserts every revocation it acks via ``add``, so degraded
    answers never fail open on an acknowledged revocation.
    """

    def __init__(self, capacity: int = 8192, target_fpr: float = 0.01):
        self._filter = BloomFilter.for_capacity(capacity, target_fpr)
        self.added = 0

    def might_be_revoked(self, compact_identifier: bytes) -> bool:
        return compact_identifier in self._filter

    def might_be_revoked_many(self, compact_identifiers) -> np.ndarray:
        return self._filter.query_many(compact_identifiers)

    def add(self, compact_identifier: bytes) -> None:
        self._filter.add(compact_identifier)
        self.added += 1


class AsyncioShardTransport:
    """ShardTransport over the event loop: async delivery + real timeouts."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        handlers: Dict[str, Dict[str, Callable]],
        default_timeout: float = 0.1,
    ):
        self._loop = loop
        self._handlers = handlers
        self._default_timeout = default_timeout
        self.down: Set[str] = set()  # crashed: requests vanish, timers fire
        self.delays: Dict[str, float] = {}  # injected per-shard service delay
        self.calls = 0

    def shard_ids(self) -> List[str]:
        return sorted(self._handlers)

    def invoke(
        self,
        shard_id: str,
        method: str,
        payload,
        callback: Callable[[ShardReply], None],
        timeout: Optional[float] = None,
    ) -> None:
        self.calls += 1
        handlers = self._handlers.get(shard_id)
        if handlers is None or method not in (handlers or {}):
            self._loop.call_soon(
                callback,
                ShardReply(shard_id, error=f"unknown shard or method {method}"),
            )
            return
        budget = self._default_timeout if timeout is None else timeout
        budget = max(min(budget, self._default_timeout * 10), 1e-4)
        done = False

        def _on_timeout() -> None:
            nonlocal done
            if done:
                return
            done = True
            callback(ShardReply(shard_id, error=f"rpc timeout after {budget:.3f}s"))

        timer = self._loop.call_later(budget, _on_timeout)

        def _deliver() -> None:
            nonlocal done
            if done:
                return
            if shard_id in self.down:
                return  # request lost in flight; the timeout timer answers
            try:
                value = handlers[method](payload)
            except Exception as exc:  # shard errors are replies, not raises
                done = True
                timer.cancel()
                callback(ShardReply(shard_id, error=str(exc)))
                return
            done = True
            timer.cancel()
            callback(ShardReply(shard_id, value=value))

        delay = self.delays.get(shard_id, 0.0)
        if delay > 0.0:
            self._loop.call_later(delay, _deliver)
        else:
            self._loop.call_soon(_deliver)


@dataclass
class LiveClusterConfig:
    """Knobs for the served cluster (E19's ``full`` policy, live)."""

    num_shards: int = 4
    replication_factor: int = 3
    seed: int = 0
    key_bits: int = 512
    request_deadline: float = 0.25  # the paper's §4.4 revocation-check budget
    rpc_timeout: float = 0.1
    max_retries: int = 2
    max_failover_depth: int = 2
    breaker_threshold: int = 3
    breaker_reset_timeout: float = 0.4
    shed_rate: Optional[float] = None  # requests/second; None = no shedding
    shed_burst: int = 32
    degraded_reads: bool = True
    batch_window: float = 0.002
    filter_capacity: int = 8192

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            replication_factor=min(self.replication_factor, self.num_shards),
            request_deadline=self.request_deadline,
            max_retries=self.max_retries,
            max_failover_depth=self.max_failover_depth,
            backoff_base=0.01,
            backoff_multiplier=2.0,
            backoff_cap=0.08,
            backoff_jitter=0.5,
            breaker_threshold=self.breaker_threshold,
            breaker_reset_timeout=self.breaker_reset_timeout,
            shed_rate=self.shed_rate,
            shed_burst=self.shed_burst,
            degraded_reads=self.degraded_reads,
            hinted_handoff=True,
            batch_window=self.batch_window,
        )


@dataclass
class LivePopulation:
    """Synthetic claims installed directly on the replicas."""

    identifiers: List[PhotoIdentifier]
    revoked_mask: np.ndarray
    owner: KeyPair

    @property
    def size(self) -> int:
        return len(self.identifiers)

    def revoked(self, index: int) -> bool:
        return bool(self.revoked_mask[index])


class LiveCluster:
    """Shards + frontend wired to the running event loop.

    Must be constructed inside a running loop (the server's); the
    frontend's scheduler is ``loop.call_later``, so batch windows,
    backoff, deadline backstops and hint replay all ride real time.
    """

    def __init__(
        self,
        config: Optional[LiveClusterConfig] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        obs=None,
    ):
        self.config = config or LiveClusterConfig()
        self._loop = loop or asyncio.get_running_loop()
        self.obs = obs
        self.cluster_id = "irs1"
        self.rngs = RngRegistry(self.config.seed)
        clock = self._loop.time
        self.tsa = TimestampAuthority(
            keypair=KeyPair.generate(
                bits=self.config.key_bits, rng=self.rngs.stream("tsa")
            ),
            clock=clock,
        )
        shard_ids = [f"shard-{i}" for i in range(self.config.num_shards)]
        self.shards: Dict[str, ClusterShard] = {
            shard_id: ClusterShard(
                shard_id=shard_id,
                cluster_id=self.cluster_id,
                timestamp_authority=self.tsa,
                keypair=KeyPair.generate(
                    bits=self.config.key_bits,
                    rng=self.rngs.stream(f"key:{shard_id}"),
                ),
                clock=clock,
            )
            for shard_id in shard_ids
        }
        self.ring = HashRing(shard_ids)
        self.transport = AsyncioShardTransport(
            self._loop,
            {sid: shard.rpc_handlers() for sid, shard in self.shards.items()},
            default_timeout=self.config.rpc_timeout,
        )
        self.detector = FailureDetector(clock)
        self.filterset = LearningBloom(capacity=self.config.filter_capacity)
        self.frontend = ClusterFrontend(
            cluster_id=self.cluster_id,
            ring=self.ring,
            transport=self.transport,
            timestamp_authority=self.tsa,
            detector=self.detector,
            config=self.config.cluster_config(),
            clock=clock,
            scheduler=self._schedule,
            filterset=self.filterset,
            rng=self.rngs.stream("frontend"),
            obs=obs,
        )

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self._loop.call_later(max(delay, 0.0), fn)

    @property
    def clock(self) -> Callable[[], float]:
        return self._loop.time

    # -- fault hooks (tests, loadgen chaos) ----------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        self.transport.down.add(shard_id)

    def revive_shard(self, shard_id: str) -> None:
        self.transport.down.discard(shard_id)

    def delay_shard(self, shard_id: str, seconds: float) -> None:
        """Make one replica slow without killing it (deadline tests)."""
        if seconds <= 0.0:
            self.transport.delays.pop(shard_id, None)
        else:
            self.transport.delays[shard_id] = seconds

    # -- population -----------------------------------------------------------------

    def seed_population(
        self, count: int, revoked_fraction: float = 0.0
    ) -> LivePopulation:
        """Install synthetic claims replica-direct (no per-record RSA)."""
        if not 0.0 <= revoked_fraction <= 1.0:
            raise ValueError("revoked_fraction must be in [0, 1]")
        rng = self.rngs.stream("population")
        keypair = KeyPair.generate(bits=self.config.key_bits, rng=rng)
        shared_hash = sha256_hex(f"{self.cluster_id}:bulk-shared".encode())
        shared_signature = keypair.sign(shared_hash.encode("utf-8"))
        shared_timestamp = self.tsa.issue(claim_digest(shared_hash, keypair.public))
        revoked_mask = rng.uniform(size=count) < revoked_fraction
        identifiers: List[PhotoIdentifier] = []
        r = self.frontend.config.replication_factor
        for i in range(count):
            content_hash = sha256_hex(f"{self.cluster_id}:photo:{i}".encode())
            serial = content_serial(content_hash)
            identifier = PhotoIdentifier(self.cluster_id, serial)
            revoked = bool(revoked_mask[i])
            for shard_id in self.ring.replicas(identifier.to_compact(), r):
                self.shards[shard_id].ledger.store.put(
                    ClaimRecord(
                        identifier=identifier,
                        content_hash=content_hash,
                        content_signature=shared_signature,
                        public_key=keypair.public,
                        timestamp=shared_timestamp,
                        state=(
                            RevocationState.REVOKED
                            if revoked
                            else RevocationState.NOT_REVOKED
                        ),
                        revocation_epoch=1 if revoked else 0,
                    )
                )
            if revoked:
                self.filterset.add(identifier.to_compact())
            identifiers.append(identifier)
        return LivePopulation(
            identifiers=identifiers, revoked_mask=revoked_mask, owner=keypair
        )

    # -- chain head / filter export ---------------------------------------------------

    def chain_head(self) -> str:
        """Digest of every shard's event-chain head — the /bloom ETag.

        Any acknowledged mutation advances at least one shard's head,
        so the ETag changes iff the revocation set may have changed.
        """
        digest = blake2b(digest_size=16)
        for shard_id in sorted(self.shards):
            events = self.shards[shard_id].ledger.store.events
            digest.update(
                f"{shard_id}:{events.head_seq}:{events.head_hash};".encode()
            )
        return digest.hexdigest()

    def revoked_compact_keys(self) -> List[bytes]:
        """Union of revoked identifiers across replicas (deduplicated)."""
        seen: Dict[int, bytes] = {}
        for shard_id in sorted(self.shards):
            store = self.shards[shard_id].ledger.store
            for record in store.revoked_records():
                seen[record.identifier.serial] = record.identifier.to_compact()
        return [seen[serial] for serial in sorted(seen)]

    def export_bloom(self) -> Tuple[bytes, Dict[str, str]]:
        """Build the /bloom payload: filter bytes + reconstruction params."""
        keys = self.revoked_compact_keys()
        bloom = BloomFilter.for_capacity(max(len(keys), 1024), 0.01)
        for key in keys:
            bloom.add(key)
        params = {
            "x-filter-bits": str(bloom.nbits),
            "x-filter-hashes": str(bloom.num_hashes),
            "x-filter-keys": str(len(keys)),
        }
        return bloom.to_bytes(), params
