"""Minimal HTTP/1.1 over asyncio streams: just enough wire for the API.

No third-party web framework — the ISSUE's constraint and the point:
the serving tier should depend on nothing the reproduction does not
already carry.  This module is the only place that knows HTTP syntax;
``app.py`` deals purely in :class:`HttpRequest` in and ``(status,
headers, body)`` out.

Supported deliberately-small subset:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer encoding — a request with one is refused as ``malformed``);
* keep-alive by default, ``Connection: close`` honoured both ways;
* bounded everything: request line, header count, body size.

:class:`HttpClient` is the matching keep-alive client used by the load
generator, the tests and bench E21 — same subset, same bounds.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.service.errors import ApiError

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpClient",
    "read_request",
    "render_response",
    "REASONS",
]

MAX_HEADER_BYTES = 16 * 1024  # request line + all headers
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 1024 * 1024

REASONS: Dict[int, str] = {
    200: "OK",
    201: "Created",
    203: "Non-Authoritative Information",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(slots=True)
class HttpRequest:
    """One parsed request; headers are lower-cased."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Parse the body as JSON, mapping failures onto the envelope."""
        if not self.body:
            raise ApiError("malformed", "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError("malformed", f"invalid JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass(slots=True)
class HttpResponse:
    """Client-side view of one response."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Read one request off the stream; None on clean EOF between requests.

    Protocol violations raise :class:`ApiError` (``malformed`` or
    ``too_large``) — the connection handler renders the envelope and
    closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ApiError("malformed", "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ApiError("too_large", "request head exceeds limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ApiError("too_large", "request head exceeds limit")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ApiError("malformed", f"bad request line: {request_line!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    header_lines = [line for line in lines[1:] if line]
    if len(header_lines) > MAX_HEADER_COUNT:
        raise ApiError("too_large", "too many headers")
    for line in header_lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise ApiError("malformed", f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ApiError("malformed", "chunked transfer encoding not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ApiError("malformed", "bad Content-Length") from exc
        if length < 0:
            raise ApiError("malformed", "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                "too_large", f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ApiError("malformed", "truncated body") from exc
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response (headers sorted for byte-stable output)."""
    reason = REASONS.get(status, "Unknown")
    headers = {
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    if body or status not in (204, 304):
        headers["content-type"] = content_type
    if extra_headers:
        headers.update({k.lower(): v for k, v in extra_headers.items()})
    head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in sorted(headers.items())
    )
    return head.encode("latin-1") + b"\r\n" + body


@dataclass
class HttpClient:
    """Keep-alive HTTP/1.1 client over one asyncio connection."""

    host: str
    port: int
    _reader: Optional[asyncio.StreamReader] = field(default=None, repr=False)
    _writer: Optional[asyncio.StreamWriter] = field(default=None, repr=False)

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_HEADER_BYTES + MAX_BODY_BYTES
        )

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> HttpResponse:
        """Issue one request; ``body`` (when not bytes) is JSON-encoded."""
        if self._writer is None or self._reader is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        if body is None:
            payload = b""
        elif isinstance(body, bytes):
            payload = body
        else:
            payload = json.dumps(body).encode("utf-8")
        request_headers = {
            "host": f"{self.host}:{self.port}",
            "content-length": str(len(payload)),
        }
        if headers:
            request_headers.update({k.lower(): v for k, v in headers.items()})
        head = f"{method} {path} HTTP/1.1\r\n" + "".join(
            f"{name}: {value}\r\n"
            for name, value in sorted(request_headers.items())
        )
        self._writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> HttpResponse:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0"))
        if length:
            body = await self._reader.readexactly(length)
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return HttpResponse(status=status, headers=headers, body=body)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; closing is the goal
            self._writer = None
            self._reader = None
