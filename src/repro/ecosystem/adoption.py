"""The TET adoption simulation (experiment E9).

Month-stepped dynamics:

1. **Browser vendors** ship IRS when their privacy brand justifies it
   (first movers ship at t=0 by scenario construction); IRS capability
   reaches their users.
2. **User adoption** grows logistically within the IRS-capable user
   base: privacy-concerned users turn the feature on and start
   auto-registering photos.
3. **Photo population** grows as IRS users register their new photos
   (section 4.4's register-by-default model).
4. **Aggregators** compare :func:`adoption_utility` against
   :func:`holdout_utility` each month; when adoption has dominated for
   ``hysteresis_months`` consecutive months, they flip -- and their
   market share feeds the competitive-pressure term for the rest,
   producing the cascade the paper predicts.

The model's claim-reproduction target: with plausible weights, holdouts
flip when the photo population approaches the ~100 B scale at which the
paper says "the ecosystem incentives will start to kick in", and no
flip ever happens without the bootstrap (no first mover => no user
adoption => no pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ecosystem.actors import (
    AggregatorActor,
    BrowserVendor,
    EcosystemState,
    UserPopulation,
)
from repro.ecosystem.incentives import (
    IncentiveWeights,
    adoption_utility,
    holdout_utility,
)

__all__ = ["AdoptionModel", "AdoptionTrace"]


@dataclass
class AdoptionTrace:
    """Time series produced by a run."""

    states: List[EcosystemState] = field(default_factory=list)

    def months(self) -> np.ndarray:
        return np.asarray([s.month for s in self.states])

    def user_adoption(self) -> np.ndarray:
        return np.asarray([s.user_adoption for s in self.states])

    def photo_population(self) -> np.ndarray:
        return np.asarray([s.photo_population for s in self.states])

    def aggregator_share(self) -> np.ndarray:
        return np.asarray([s.aggregator_share_adopted for s in self.states])

    def tipping_month(self, share_threshold: float = 0.5) -> Optional[int]:
        """First month aggregator adoption (by share) crossed threshold."""
        for state in self.states:
            if state.aggregator_share_adopted >= share_threshold:
                return state.month
        return None

    def photos_at_tipping(self, share_threshold: float = 0.5) -> Optional[float]:
        """Photo population when the ecosystem tipped (the paper's ~100 B)."""
        for state in self.states:
            if state.aggregator_share_adopted >= share_threshold:
                return state.photo_population
        return None

    def final(self) -> EcosystemState:
        if not self.states:
            raise ValueError("trace is empty")
        return self.states[-1]


class AdoptionModel:
    """The month-stepped TET simulation."""

    def __init__(
        self,
        vendors: List[BrowserVendor],
        aggregators: List[AggregatorActor],
        users: UserPopulation,
        weights: Optional[IncentiveWeights] = None,
        uptake_rate: float = 0.12,
        uptake_ceiling_scale: float = 1.6,
        hysteresis_months: int = 3,
        vendor_ship_threshold: float = 0.6,
        rng: Optional[np.random.Generator] = None,
        decision_noise: float = 0.02,
    ):
        """
        Parameters
        ----------
        uptake_rate:
            Logistic growth rate of feature uptake among capable users.
        uptake_ceiling_scale:
            Uptake saturates at ``min(1, privacy_concern_mean * scale)``
            of the capable population: only privacy-valuing users turn
            the feature on.
        hysteresis_months:
            Consecutive months adoption must dominate before an
            aggregator flips.
        vendor_ship_threshold:
            Privacy-brand level above which a vendor ships at t=0 (the
            first movers); others ship only after the first aggregator
            adopts (followers).
        decision_noise:
            Gaussian noise added to utility comparisons, modelling
            unmodelled month-to-month business factors.
        """
        if not vendors:
            raise ValueError("need at least one browser vendor")
        if not aggregators:
            raise ValueError("need at least one aggregator")
        self.vendors = vendors
        self.aggregators = aggregators
        self.users = users
        self.weights = weights or IncentiveWeights()
        self.uptake_rate = float(uptake_rate)
        self.uptake_ceiling_scale = float(uptake_ceiling_scale)
        self.hysteresis_months = int(hysteresis_months)
        self.vendor_ship_threshold = float(vendor_ship_threshold)
        self._rng = rng or np.random.default_rng(0)
        self.decision_noise = float(decision_noise)

        self._user_adoption = 0.0
        self._photo_population = 0.0
        self._month = 0

        # First movers ship immediately.
        for vendor in self.vendors:
            if vendor.privacy_brand >= self.vendor_ship_threshold:
                vendor.adopted = True
                vendor.adopted_at = 0.0

    # -- derived quantities ------------------------------------------------------

    def capable_share(self) -> float:
        """Fraction of users whose browser supports IRS."""
        return min(
            1.0, sum(v.market_share for v in self.vendors if v.adopted)
        )

    def aggregator_share_adopted(self) -> float:
        return min(
            1.0, sum(a.market_share for a in self.aggregators if a.adopted)
        )

    def _uptake_ceiling(self) -> float:
        return min(
            1.0, self.users.privacy_concern_mean * self.uptake_ceiling_scale
        ) * self.capable_share()

    # -- stepping --------------------------------------------------------------------

    def step(self) -> EcosystemState:
        """Advance one month."""
        self._month += 1

        # 1. Follower vendors ship once any aggregator has adopted
        #    (support becomes table stakes).
        if any(a.adopted for a in self.aggregators):
            for vendor in self.vendors:
                if not vendor.adopted:
                    vendor.adopted = True
                    vendor.adopted_at = float(self._month)

        # 2. Logistic feature uptake toward the privacy-user ceiling.
        ceiling = self._uptake_ceiling()
        if ceiling > 0:
            gap = ceiling - self._user_adoption
            self._user_adoption += self.uptake_rate * gap
            self._user_adoption = min(self._user_adoption, ceiling)

        # 3. Photo registration by active IRS users.
        registering_users = self._user_adoption * self.users.size
        self._photo_population += (
            registering_users * self.users.photos_per_user_month
        )

        # 4. Aggregator decisions with hysteresis.
        competitor_share = self.aggregator_share_adopted()
        for aggregator in self.aggregators:
            if aggregator.adopted:
                continue
            adopt = adoption_utility(aggregator, self._user_adoption, self.weights)
            hold = holdout_utility(
                aggregator,
                self._user_adoption,
                self._photo_population,
                competitor_share,
                self.weights,
            )
            noise = float(self._rng.normal(0.0, self.decision_noise))
            if adopt + noise > hold:
                aggregator._pressure_months += 1
            else:
                aggregator._pressure_months = 0
            if aggregator._pressure_months >= self.hysteresis_months:
                aggregator.adopted = True
                aggregator.adopted_at = float(self._month)

        return self.snapshot()

    def snapshot(self) -> EcosystemState:
        return EcosystemState(
            month=self._month,
            user_adoption=self._user_adoption,
            photo_population=self._photo_population,
            aggregators_adopted=sum(1 for a in self.aggregators if a.adopted),
            aggregator_share_adopted=self.aggregator_share_adopted(),
            vendor_share_adopted=self.capable_share(),
        )

    def run(self, months: int) -> AdoptionTrace:
        """Run ``months`` steps; returns the full trace."""
        if months < 1:
            raise ValueError("run at least one month")
        trace = AdoptionTrace(states=[self.snapshot()])
        for _ in range(months):
            trace.states.append(self.step())
        return trace
