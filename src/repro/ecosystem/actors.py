"""Ecosystem actors.

The paper's cast (sections 1 and 4.1):

* **Browser vendors** -- the first movers: "several of the major
  browsers are already actively working on (and even competing on)
  privacy protection features (e.g., Mozilla, Brave, and Apple)".  A
  vendor that adopts pushes IRS support to its market share and runs a
  ledger.
* **Content aggregators** -- the incumbents whose incentives must
  flip.  Differ in how engagement-driven vs privacy-branded they are.
* **The user population** -- heterogeneous privacy preference; users
  with IRS-capable browsers who care about privacy start claiming
  photos, growing the registered-photo population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["BrowserVendor", "AggregatorActor", "UserPopulation", "EcosystemState"]


@dataclass
class BrowserVendor:
    """A browser vendor that may ship IRS support.

    Attributes
    ----------
    name / market_share:
        Identity and fraction of users on this browser.
    privacy_brand:
        0..1, how much the vendor competes on privacy (Mozilla/Brave
        high, engagement-funded browsers low).
    adopted / adopted_at:
        Whether (and when, in months) the vendor shipped IRS.
    """

    name: str
    market_share: float
    privacy_brand: float
    adopted: bool = False
    adopted_at: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.market_share <= 1.0:
            raise ValueError("market share must be in [0, 1]")
        if not 0.0 <= self.privacy_brand <= 1.0:
            raise ValueError("privacy brand must be in [0, 1]")


@dataclass
class AggregatorActor:
    """A content aggregator deciding whether to adopt IRS.

    Attributes
    ----------
    market_share:
        Fraction of photo-sharing activity hosted here.
    privacy_brand:
        0..1, value the aggregator's brand places on privacy.
    engagement_focus:
        0..1, how much revenue rides on engagement ("some aggregators
        are geared more towards engagement than privacy and adopting
        IRS would reduce engagement").
    """

    name: str
    market_share: float
    privacy_brand: float
    engagement_focus: float
    adopted: bool = False
    adopted_at: float | None = None
    # Consecutive months adoption utility has exceeded holdout utility;
    # used for hysteresis so a single noisy month doesn't flip anyone.
    _pressure_months: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        for attr in ("market_share", "privacy_brand", "engagement_focus"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1]")


@dataclass
class UserPopulation:
    """The viewing/photographing public.

    Attributes
    ----------
    size:
        Absolute number of users (sets photo-population scale).
    privacy_concern_mean:
        Mean of users' privacy preference in [0, 1]; drives both IRS
        browser uptake and claiming behaviour.
    photos_per_user_month:
        New photos a user takes per month; IRS users auto-register them
        (section 4.4's register-and-revoke-by-default model).
    """

    size: float = 1e9
    privacy_concern_mean: float = 0.35
    photos_per_user_month: float = 60.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("population size must be positive")
        if not 0.0 <= self.privacy_concern_mean <= 1.0:
            raise ValueError("privacy concern must be in [0, 1]")
        if self.photos_per_user_month < 0:
            raise ValueError("photo rate cannot be negative")


@dataclass
class EcosystemState:
    """Snapshot of the ecosystem at one time step."""

    month: int
    user_adoption: float  # fraction of users with IRS browsers
    photo_population: float  # photos registered in IRS ledgers
    aggregators_adopted: int
    aggregator_share_adopted: float  # market-share-weighted adoption
    vendor_share_adopted: float
