"""Monte Carlo analysis of TET tipping.

Section 6: "TET in general, and IRS in particular, are not guaranteed
to succeed, because the success of such a strategy depends on many
factors outside our control."  This module quantifies that sentence:
run the adoption model many times with perturbed incentive weights and
decision noise, and report the *distribution* of outcomes — tipping
probability, tipping-time quantiles, and the photo-population threshold
band around the paper's 100 B figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ecosystem.incentives import IncentiveWeights
from repro.ecosystem.scenarios import Scenario, baseline_scenario

__all__ = ["MonteCarloResult", "run_monte_carlo", "perturb_weights"]


@dataclass
class MonteCarloResult:
    """Distribution of outcomes across runs."""

    runs: int
    tipping_months: List[Optional[int]] = field(default_factory=list)
    photos_at_tipping: List[Optional[float]] = field(default_factory=list)
    final_shares: List[float] = field(default_factory=list)

    @property
    def tipping_probability(self) -> float:
        return sum(1 for m in self.tipping_months if m is not None) / self.runs

    def tipping_month_quantiles(self, qs=(0.1, 0.5, 0.9)) -> List[float]:
        months = [m for m in self.tipping_months if m is not None]
        if not months:
            return [float("nan")] * len(qs)
        return [float(np.quantile(months, q)) for q in qs]

    def photo_threshold_quantiles(self, qs=(0.1, 0.5, 0.9)) -> List[float]:
        photos = [p for p in self.photos_at_tipping if p is not None]
        if not photos:
            return [float("nan")] * len(qs)
        return [float(np.quantile(photos, q)) for q in qs]

    @property
    def mean_final_share(self) -> float:
        return float(np.mean(self.final_shares)) if self.final_shares else 0.0


def perturb_weights(
    base: IncentiveWeights, rng: np.random.Generator, spread: float = 0.3
) -> IncentiveWeights:
    """Log-normally perturb every weight by ~``spread`` relative sigma.

    Models parameter uncertainty: nobody knows the true dollar value of
    privacy branding or the true litigation exposure curve.
    """

    def jitter(value: float) -> float:
        return float(value * rng.lognormal(0.0, spread))

    return IncentiveWeights(
        brand_value=jitter(base.brand_value),
        engagement_cost=jitter(base.engagement_cost),
        adoption_cost=jitter(base.adoption_cost),
        liability_weight=jitter(base.liability_weight),
        liability_reference_photos=jitter(base.liability_reference_photos),
        reputation_weight=jitter(base.reputation_weight),
        competitive_weight=jitter(base.competitive_weight),
    )


def run_monte_carlo(
    scenario: Optional[Scenario] = None,
    runs: int = 100,
    months: int = 240,
    weight_spread: float = 0.3,
    share_threshold: float = 0.5,
    seed: int = 0,
) -> MonteCarloResult:
    """Run the scenario ``runs`` times with perturbed weights.

    Each run draws fresh incentive weights and a fresh decision-noise
    stream; actors and user population stay at the scenario's values
    (they are observable; the weights are not).
    """
    if runs < 1:
        raise ValueError("need at least one run")
    scenario = scenario or baseline_scenario()
    meta_rng = np.random.default_rng(seed)
    result = MonteCarloResult(runs=runs)
    base_weights = scenario.weights
    for run_index in range(runs):
        scenario.weights = perturb_weights(base_weights, meta_rng, weight_spread)
        model = scenario.build(seed=int(meta_rng.integers(2**31)))
        trace = model.run(months)
        result.tipping_months.append(trace.tipping_month(share_threshold))
        result.photos_at_tipping.append(trace.photos_at_tipping(share_threshold))
        result.final_shares.append(trace.final().aggregator_share_adopted)
    scenario.weights = base_weights
    return result
