"""Utility functions: why an aggregator adopts or holds out.

The paper names the forces precisely (section 4.1):

* *Competitive advantage*: "for those companies branding themselves as
  'pro-privacy' this would be seen as a competitive advantage (and
  adoption by a single aggregator would be effective, because the
  bootstrap phase has established the other components)".
* *Legal liability*: "for all companies not supporting IRS, their lack
  of support could become a legal liability (e.g., if a claimed and
  revoked picture were shown by an aggregator, and harm resulted, the
  aggregator could potentially be sued because the owner's intent was
  clearly knowable)".
* *Engagement cost*: "some aggregators are geared more towards
  engagement than privacy and adopting IRS would reduce engagement".
* *Reputational/competitive pressure*: browsers mark non-supporting
  sites, raters publicize them, search engines demote them
  (section 4.4) -- pressure that grows with user adoption and with
  competitors' adoption.

Utilities are in arbitrary "revenue units per month"; only differences
matter.  All weights live in :class:`IncentiveWeights` so experiments
can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ecosystem.actors import AggregatorActor

__all__ = ["IncentiveWeights", "adoption_utility", "holdout_utility"]


@dataclass
class IncentiveWeights:
    """Tunable weights of the incentive model.

    Attributes
    ----------
    brand_value:
        Revenue value of privacy branding at full user adoption.
    engagement_cost:
        Revenue lost to reduced engagement, scaled by the aggregator's
        engagement focus.
    adoption_cost:
        One-time-ish integration cost, amortized per month.  The paper
        argues this is small ("the required operations are only a small
        fractional addition to their current workflow").
    liability_weight:
        Expected legal/damages exposure per month at the reference
        photo population, borne only by holdouts.
    liability_reference_photos:
        Photo population at which liability reaches its nominal weight
        -- the paper's ~100 B threshold ("once the population of photos
        ... reaches anywhere close to 100 billion photos, the ecosystem
        incentives will start to kick in").
    reputation_weight:
        Holdout cost from site-marking/ranking penalties, scaled by
        user adoption.
    competitive_weight:
        Extra holdout cost proportional to the market share of
        competitors that already adopted (cascade force).
    """

    brand_value: float = 1.0
    engagement_cost: float = 0.6
    adoption_cost: float = 0.08
    liability_weight: float = 1.5
    liability_reference_photos: float = 100e9
    reputation_weight: float = 0.5
    competitive_weight: float = 0.8


def _liability_pressure(photo_population: float, weights: IncentiveWeights) -> float:
    """Liability grows smoothly with the registered-photo population.

    Saturating (1 - exp) shape: negligible while IRS is tiny (no court
    will fault a site for ignoring an obscure system), approaching the
    nominal weight as the population nears the reference scale where
    "the owner's intent was clearly knowable".
    """
    if photo_population <= 0:
        return 0.0
    ratio = photo_population / weights.liability_reference_photos
    return 1.0 - math.exp(-ratio)


def adoption_utility(
    aggregator: AggregatorActor,
    user_adoption: float,
    weights: IncentiveWeights,
) -> float:
    """Monthly utility of supporting IRS.

    Brand benefit scales with how many users can notice (user adoption)
    and how privacy-branded the aggregator is; engagement cost scales
    with the aggregator's engagement focus; minus integration cost.
    """
    brand = weights.brand_value * aggregator.privacy_brand * user_adoption
    engagement = weights.engagement_cost * aggregator.engagement_focus
    return brand - engagement - weights.adoption_cost


def holdout_utility(
    aggregator: AggregatorActor,
    user_adoption: float,
    photo_population: float,
    competitor_adopted_share: float,
    weights: IncentiveWeights,
) -> float:
    """Monthly utility of *not* supporting IRS (relative to today's 0).

    All three holdout costs are negative terms: liability exposure,
    reputational penalties from marking/ranking, and competitive losses
    to adopted rivals.
    """
    liability = weights.liability_weight * _liability_pressure(
        photo_population, weights
    )
    reputation = weights.reputation_weight * user_adoption
    competition = weights.competitive_weight * competitor_adopted_share * user_adoption
    return -(liability + reputation + competition)
