"""Technology Ecosystem Transformation (TET) adoption dynamics.

The paper's central argument is not cryptographic but economic: a
bootstrap deployment (browsers + proxies + ledgers) grows until the
incumbents' incentives flip -- privacy branding becomes worth more than
the engagement cost, and serving clearly-revoked photos becomes a legal
liability -- at which point content aggregators adopt IRS "purely out
of self-interest" (sections 1, 4.1, 6).

This package makes that argument executable:

* :mod:`repro.ecosystem.actors` -- the actor types: browser vendors,
  content aggregators, the user population, ledgers.
* :mod:`repro.ecosystem.incentives` -- explicit utility functions with
  documented weights (brand value, legal liability, engagement cost,
  competitive pressure).
* :mod:`repro.ecosystem.adoption` -- the month-stepped simulation:
  user adoption growth, photo population growth, per-aggregator adopt/
  hold decisions with hysteresis, and cascade effects.
* :mod:`repro.ecosystem.scenarios` -- canned parameterizations
  (baseline, no first mover, strong liability, engagement-heavy
  incumbents) used by experiment E9.
"""

from repro.ecosystem.actors import (
    BrowserVendor,
    AggregatorActor,
    UserPopulation,
    EcosystemState,
)
from repro.ecosystem.incentives import IncentiveWeights, adoption_utility, holdout_utility
from repro.ecosystem.adoption import AdoptionModel, AdoptionTrace
from repro.ecosystem.scenarios import (
    baseline_scenario,
    no_first_mover_scenario,
    strong_liability_scenario,
    engagement_incumbents_scenario,
    Scenario,
)

__all__ = [
    "BrowserVendor",
    "AggregatorActor",
    "UserPopulation",
    "EcosystemState",
    "IncentiveWeights",
    "adoption_utility",
    "holdout_utility",
    "AdoptionModel",
    "AdoptionTrace",
    "baseline_scenario",
    "no_first_mover_scenario",
    "strong_liability_scenario",
    "engagement_incumbents_scenario",
    "Scenario",
]
