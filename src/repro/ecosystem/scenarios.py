"""Canned ecosystem scenarios for experiment E9.

Actor rosters are loosely modelled on the real landscape the paper
names: privacy-branded browser vendors with modest share (Mozilla,
Brave, Apple-like), one dominant engagement-funded vendor, and a
spectrum of aggregators from privacy-branded to engagement-maximizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ecosystem.actors import AggregatorActor, BrowserVendor, UserPopulation
from repro.ecosystem.adoption import AdoptionModel
from repro.ecosystem.incentives import IncentiveWeights

__all__ = [
    "Scenario",
    "baseline_scenario",
    "no_first_mover_scenario",
    "strong_liability_scenario",
    "engagement_incumbents_scenario",
]


@dataclass
class Scenario:
    """A named, fully parameterized model factory."""

    name: str
    description: str
    weights: IncentiveWeights

    def build(self, seed: int = 0) -> AdoptionModel:
        return AdoptionModel(
            vendors=self._vendors(),
            aggregators=self._aggregators(),
            users=self._users(),
            weights=self.weights,
            rng=np.random.default_rng(seed),
            vendor_ship_threshold=self._vendor_threshold,
        )

    # Hooks overridden per scenario via instance attributes below.
    _vendor_threshold: float = 0.6

    def _vendors(self) -> list[BrowserVendor]:
        return [
            BrowserVendor(name="privacyfox", market_share=0.08, privacy_brand=0.9),
            BrowserVendor(name="lionshare", market_share=0.04, privacy_brand=0.85),
            BrowserVendor(name="orchard", market_share=0.18, privacy_brand=0.7),
            BrowserVendor(name="adstream", market_share=0.65, privacy_brand=0.2),
        ]

    def _aggregators(self) -> list[AggregatorActor]:
        return [
            AggregatorActor(
                name="privategram",
                market_share=0.10,
                privacy_brand=0.8,
                engagement_focus=0.3,
            ),
            AggregatorActor(
                name="photowall",
                market_share=0.25,
                privacy_brand=0.5,
                engagement_focus=0.5,
            ),
            AggregatorActor(
                name="sharesphere",
                market_share=0.40,
                privacy_brand=0.3,
                engagement_focus=0.8,
            ),
            AggregatorActor(
                name="viralgrid",
                market_share=0.25,
                privacy_brand=0.1,
                engagement_focus=0.95,
            ),
        ]

    def _users(self) -> UserPopulation:
        return UserPopulation(
            size=3e9, privacy_concern_mean=0.35, photos_per_user_month=60.0
        )


def baseline_scenario() -> Scenario:
    """The paper's expected trajectory: first movers ship, pressure
    builds, incumbents cascade."""
    return Scenario(
        name="baseline",
        description="privacy browsers bootstrap; incumbents flip under "
        "combined brand/liability/competitive pressure",
        weights=IncentiveWeights(),
    )


def no_first_mover_scenario() -> Scenario:
    """Counterfactual: no browser vendor is privacy-branded enough to
    move first, so the bootstrap never starts.  The TET argument
    predicts zero adoption forever."""
    scenario = Scenario(
        name="no-first-mover",
        description="nobody bootstraps; incentives never change",
        weights=IncentiveWeights(),
    )
    scenario._vendor_threshold = 0.99  # nobody clears the bar
    return scenario


def strong_liability_scenario() -> Scenario:
    """Regulation-adjacent world: courts weigh knowable-intent heavily,
    and liability saturates at a tenth the photo population."""
    return Scenario(
        name="strong-liability",
        description="liability dominates; holdouts flip earlier and at "
        "smaller photo populations",
        weights=IncentiveWeights(
            liability_weight=4.0, liability_reference_photos=10e9
        ),
    )


def engagement_incumbents_scenario() -> Scenario:
    """Engagement costs doubled: the hard case the paper concedes.
    Adoption still happens but later, carried by liability pressure."""
    return Scenario(
        name="engagement-incumbents",
        description="engagement-heavy incumbents resist; tipping is late "
        "and liability-driven",
        weights=IncentiveWeights(engagement_cost=1.2, brand_value=0.8),
    )
