"""C2PA-style provenance manifests.

Section 2 ("Relevant Technologies"): C2PA "proposes a new set of media
metadata primitives that can be embedded in media files ... or be
hosted remotely", tracing media "starting from origin device ... all
the way to the consumer"; and section 3.1 notes the C2PA cloud
infrastructure "could be extended to act as a more broadly used
ledger".

This module implements that interface in miniature: a signed, chained
**provenance manifest** recording the photo's assertion history — the
origin capture, each edit, and the IRS claim — each entry signed by the
actor that performed it and chained by hash to its predecessor, so the
chain is append-only and tamper-evident.

IRS integration: an IRS claim becomes an assertion in the chain, and a
ledger can verify a photo's provenance before accepting a claim (a
"provenance-gated" ledger policy for deployments where cameras are
C2PA-capable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.hashing import hash_struct
from repro.crypto.signatures import KeyPair, PublicKey, Signature
from repro.media.image import Photo

__all__ = [
    "Assertion",
    "ProvenanceManifest",
    "ProvenanceError",
    "ASSERTION_CAPTURE",
    "ASSERTION_EDIT",
    "ASSERTION_IRS_CLAIM",
]

ASSERTION_CAPTURE = "c2pa.capture"
ASSERTION_EDIT = "c2pa.edit"
ASSERTION_IRS_CLAIM = "irs.claim"


class ProvenanceError(Exception):
    """Raised on invalid manifests or broken chains."""


@dataclass(frozen=True)
class Assertion:
    """One signed link in the provenance chain.

    Attributes
    ----------
    kind:
        Assertion type (capture / edit / irs.claim / ...).
    content_hash:
        Hash of the photo *after* this step.
    prev_digest:
        Digest of the preceding assertion (b"" for the origin).
    actor:
        Human-readable actor label (camera model, editor, ledger id).
    detail:
        Free-form description ("crop 80%", "claimed as irs1:l:5").
    actor_key / signature:
        The actor's public key and its signature over the assertion
        body.
    """

    kind: str
    content_hash: str
    prev_digest: bytes
    actor: str
    detail: str
    actor_key: PublicKey
    signature: Signature

    def body(self) -> dict:
        return {
            "kind": self.kind,
            "content_hash": self.content_hash,
            "prev": self.prev_digest,
            "actor": self.actor,
            "detail": self.detail,
            "key": self.actor_key.to_dict(),
        }

    def digest(self) -> bytes:
        return hash_struct(self.body())

    def verify(self) -> bool:
        return self.actor_key.verify_struct(self.body(), self.signature)


@dataclass
class ProvenanceManifest:
    """An append-only chain of assertions for one photo."""

    assertions: List[Assertion] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    @classmethod
    def capture(
        cls, photo: Photo, camera: str, camera_key: KeyPair
    ) -> "ProvenanceManifest":
        """Start a chain at the origin device."""
        manifest = cls()
        manifest._append(
            kind=ASSERTION_CAPTURE,
            content_hash=photo.content_hash(),
            actor=camera,
            detail="origin capture",
            keypair=camera_key,
        )
        return manifest

    def _append(
        self, kind: str, content_hash: str, actor: str, detail: str, keypair: KeyPair
    ) -> Assertion:
        prev_digest = self.assertions[-1].digest() if self.assertions else b""
        body = {
            "kind": kind,
            "content_hash": content_hash,
            "prev": prev_digest,
            "actor": actor,
            "detail": detail,
            "key": keypair.public.to_dict(),
        }
        assertion = Assertion(
            kind=kind,
            content_hash=content_hash,
            prev_digest=prev_digest,
            actor=actor,
            detail=detail,
            actor_key=keypair.public,
            signature=keypair.sign_struct(body),
        )
        self.assertions.append(assertion)
        return assertion

    def record_edit(
        self, edited: Photo, editor: str, detail: str, editor_key: KeyPair
    ) -> Assertion:
        """Record an edit producing ``edited``."""
        if not self.assertions:
            raise ProvenanceError("cannot edit before capture")
        return self._append(
            kind=ASSERTION_EDIT,
            content_hash=edited.content_hash(),
            actor=editor,
            detail=detail,
            keypair=editor_key,
        )

    def record_irs_claim(
        self, photo: Photo, identifier_string: str, owner_key: KeyPair
    ) -> Assertion:
        """Record that the current content was claimed in an IRS ledger."""
        if not self.assertions:
            raise ProvenanceError("cannot claim before capture")
        return self._append(
            kind=ASSERTION_IRS_CLAIM,
            content_hash=photo.content_hash(),
            actor="irs-owner",
            detail=identifier_string,
            keypair=owner_key,
        )

    # -- verification -----------------------------------------------------------

    def verify_chain(self) -> None:
        """Raise :class:`ProvenanceError` unless the chain is intact.

        Checks: non-empty, starts with a capture, every signature
        verifies, every link's ``prev_digest`` matches its predecessor.
        """
        if not self.assertions:
            raise ProvenanceError("empty manifest")
        if self.assertions[0].kind != ASSERTION_CAPTURE:
            raise ProvenanceError("chain must begin with a capture assertion")
        if self.assertions[0].prev_digest != b"":
            raise ProvenanceError("capture assertion must have no predecessor")
        prev: Optional[Assertion] = None
        for i, assertion in enumerate(self.assertions):
            if not assertion.verify():
                raise ProvenanceError(f"assertion {i} signature invalid")
            if prev is not None and assertion.prev_digest != prev.digest():
                raise ProvenanceError(f"assertion {i} breaks the hash chain")
            prev = assertion

    def matches_photo(self, photo: Photo) -> bool:
        """True iff the chain's final content hash matches ``photo``."""
        if not self.assertions:
            return False
        return self.assertions[-1].content_hash == photo.content_hash()

    def irs_identifier(self) -> Optional[str]:
        """The most recent IRS claim recorded in the chain, if any."""
        for assertion in reversed(self.assertions):
            if assertion.kind == ASSERTION_IRS_CLAIM:
                return assertion.detail
        return None

    def origin_actor(self) -> str:
        if not self.assertions:
            raise ProvenanceError("empty manifest")
        return self.assertions[0].actor

    def __len__(self) -> int:
        return len(self.assertions)
