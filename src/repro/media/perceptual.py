"""PhotoDNA-style perceptual (robust) hash.

The appeals process (section 3.2) compares an original photo against an
allegedly-derived copy "using robust hashing (as in PhotoDNA)", and
aggregators "keep a database of robust hashes of their current content".
PhotoDNA itself is proprietary; following the public description (Farid
2021, "An Overview of Perceptual Hashing"), we implement the same class
of construction:

1. convert to luminance and normalize brightness/contrast,
2. downsample to a small fixed grid by area averaging,
3. take signs of horizontal and vertical gradients,
4. pack into a fixed-length bit signature, compared by normalized
   Hamming distance.

The normalization step makes the hash invariant to tint, brightness and
contrast edits; the coarse grid gives invariance to compression, noise
and resizing.  Large crops move content between grid cells, so crops
raise the distance -- consistent with PhotoDNA's real behaviour and
with the paper's expectation that heavily cropped copies may need human
inspection in appeals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.media.image import Photo

__all__ = [
    "RobustHash",
    "robust_hash",
    "hash_distance",
    "pack_signatures",
    "hamming_many",
    "DEFAULT_MATCH_THRESHOLD",
]

#: Normalized Hamming distance at or below which two photos are treated
#: as "same image" by appeals and aggregator hash databases.  Calibrated
#: in tests/media/test_perceptual.py: benign edits land well below, and
#: independent photos land near 0.5.
DEFAULT_MATCH_THRESHOLD = 0.25

_GRID = 16  # gradient grid; signature is 2 * 16 * 16 = 512 bits
_SIGNATURE_BITS = 2 * _GRID * _GRID
_SIGNATURE_BYTES = _SIGNATURE_BITS // 8

#: Bits set per byte value — one table lookup replaces unpackbits on
#: the batch path, which matters when an aggregator scans ~10^6 rows.
_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)


def _area_resize(channel: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Area-averaging resize using integral images (exact box means)."""
    in_h, in_w = channel.shape
    # Integral image with a zero row/column prefix.
    integral = np.zeros((in_h + 1, in_w + 1))
    integral[1:, 1:] = np.cumsum(np.cumsum(channel, axis=0), axis=1)
    y_edges = np.round(np.linspace(0, in_h, out_h + 1)).astype(int)
    x_edges = np.round(np.linspace(0, in_w, out_w + 1)).astype(int)
    # Guard against zero-area cells on tiny inputs.
    y_edges = np.maximum.accumulate(np.maximum(y_edges, np.arange(out_h + 1) > 0))
    x_edges = np.maximum.accumulate(np.maximum(x_edges, np.arange(out_w + 1) > 0))
    out = np.empty((out_h, out_w))
    for i in range(out_h):
        y0, y1 = y_edges[i], max(y_edges[i + 1], y_edges[i] + 1)
        y1 = min(y1, in_h)
        y0 = min(y0, y1 - 1)
        for j in range(out_w):
            x0, x1 = x_edges[j], max(x_edges[j + 1], x_edges[j] + 1)
            x1 = min(x1, in_w)
            x0 = min(x0, x1 - 1)
            area = (y1 - y0) * (x1 - x0)
            total = (
                integral[y1, x1]
                - integral[y0, x1]
                - integral[y1, x0]
                + integral[y0, x0]
            )
            out[i, j] = total / area
    return out


@dataclass(frozen=True)
class RobustHash:
    """A 512-bit perceptual signature."""

    bits: bytes  # 64 bytes, packed

    def __post_init__(self) -> None:
        if len(self.bits) != 2 * _GRID * _GRID // 8:
            raise ValueError("robust hash must be 512 bits")

    def distance(self, other: "RobustHash") -> float:
        """Normalized Hamming distance in [0, 1].

        This unpackbits form is the reference oracle for the batch path
        (:func:`hamming_many`); the differential suite keeps the two in
        lockstep.
        """
        a = np.unpackbits(np.frombuffer(self.bits, dtype=np.uint8))
        b = np.unpackbits(np.frombuffer(other.bits, dtype=np.uint8))
        return float(np.mean(a != b))

    def distance_many(self, others: Sequence["RobustHash"]) -> np.ndarray:
        """Distances to many signatures in one vectorized pass."""
        return hamming_many(self, pack_signatures(others))

    def matches(
        self, other: "RobustHash", threshold: float = DEFAULT_MATCH_THRESHOLD
    ) -> bool:
        return self.distance(other) <= threshold

    def hex(self) -> str:
        return self.bits.hex()

    def __hash__(self) -> int:
        return hash(self.bits)


def robust_hash(photo: Photo) -> RobustHash:
    """Compute the perceptual signature of a photo."""
    luma = photo.luminance()
    # Brightness/contrast normalization: zero mean, unit variance.
    std = float(luma.std())
    if std < 1e-9:
        normalized = np.zeros_like(luma)
    else:
        normalized = (luma - luma.mean()) / std
    # One extra row/column so the gradient grid is exactly GRID x GRID.
    small_h = _area_resize(normalized, _GRID, _GRID + 1)
    small_v = _area_resize(normalized, _GRID + 1, _GRID)
    grad_h = (np.diff(small_h, axis=1) > 0).astype(np.uint8)  # 16x16
    grad_v = (np.diff(small_v, axis=0) > 0).astype(np.uint8)  # 16x16
    packed = np.packbits(np.concatenate([grad_h.ravel(), grad_v.ravel()]))
    return RobustHash(bits=packed.tobytes())


def hash_distance(a: Photo, b: Photo) -> float:
    """Normalized Hamming distance between two photos' signatures."""
    return robust_hash(a).distance(robust_hash(b))


def pack_signatures(hashes: Sequence[RobustHash]) -> np.ndarray:
    """Stack signatures into a ``(n, 64)`` uint8 matrix for batch matching.

    The matrix form is what aggregator hash databases hold; build it
    once, then run :func:`hamming_many` per query.
    """
    if not hashes:
        return np.zeros((0, _SIGNATURE_BYTES), dtype=np.uint8)
    blob = b"".join(h.bits for h in hashes)
    return np.frombuffer(blob, dtype=np.uint8).reshape(len(hashes), _SIGNATURE_BYTES)


def hamming_many(query: RobustHash, packed: np.ndarray) -> np.ndarray:
    """Normalized Hamming distances from ``query`` to every packed row.

    Entry ``i`` equals ``query.distance(row_i)`` exactly (the scalar
    method is the oracle), computed as one XOR plus a popcount table
    lookup instead of per-pair unpackbits.
    """
    if packed.ndim != 2 or packed.shape[1] != _SIGNATURE_BYTES:
        raise ValueError(
            f"packed signature matrix must be (n, {_SIGNATURE_BYTES}), "
            f"got {packed.shape}"
        )
    if packed.shape[0] == 0:
        return np.zeros(0)
    q = np.frombuffer(query.bits, dtype=np.uint8)
    xored = np.bitwise_xor(packed, q[None, :])
    return _POPCOUNT[xored].sum(axis=1, dtype=np.int64) / float(_SIGNATURE_BITS)
