"""Personal video support.

Section 2: "while our treatment focuses on preventing the unwanted
sharing of photos, our approach applies more generally to other digital
media (such as personal videos) that are discrete, have a clearly
identified owner, and are intensely personal."

A :class:`Video` is a frame sequence sharing one metadata container.
The labeling strategy extends the photo design naturally:

* the identifier is embedded as a watermark in **every frame**, so
  clipping a video (dropping frames) cannot shed the label;
* extraction takes a **majority vote across frames**, so per-frame
  damage (heavy compression of high-motion frames, captions burned
  into a scene) is tolerated as long as most frames decode;
* the content hash covers all frames, and the robust signature is the
  set of per-frame perceptual hashes compared with a coverage metric
  (what fraction of one video's frames match frames of the other),
  which also catches clipped copies in appeals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.crypto.hashing import sha256_hex
from repro.media.image import Photo, PhotoGenerator
from repro.media.metadata import MetadataContainer
from repro.media.perceptual import RobustHash, robust_hash
from repro.media.watermark import WatermarkCodec, WatermarkError

__all__ = ["Video", "VideoWatermarkCodec", "video_match_coverage", "generate_video"]


@dataclass
class Video:
    """A short personal video: frames + shared metadata."""

    frames: List[Photo]
    metadata: MetadataContainer = field(default_factory=MetadataContainer)
    fps: float = 24.0

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a video needs at least one frame")
        shape = self.frames[0].shape
        if any(frame.shape != shape for frame in self.frames):
            raise ValueError("all frames must share one resolution")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def duration(self) -> float:
        return self.num_frames / self.fps

    def content_hash(self) -> str:
        """Exact hash over all frame pixels, in order."""
        import hashlib

        hasher = hashlib.sha256()
        for frame in self.frames:
            hasher.update(frame.content_hash().encode("ascii"))
        return hasher.hexdigest()

    def clip(self, start: int, end: int) -> "Video":
        """Frames [start, end) as a new video (metadata carried)."""
        if not 0 <= start < end <= self.num_frames:
            raise ValueError("invalid clip range")
        return Video(
            frames=[f.copy() for f in self.frames[start:end]],
            metadata=self.metadata.copy(),
            fps=self.fps,
        )

    def frame_signatures(self) -> List[RobustHash]:
        return [robust_hash(frame) for frame in self.frames]

    def copy(self, with_metadata: bool = True) -> "Video":
        return Video(
            frames=[f.copy(with_metadata=False) for f in self.frames],
            metadata=self.metadata.copy() if with_metadata else MetadataContainer(),
            fps=self.fps,
        )


class VideoWatermarkCodec:
    """Per-frame watermarking with cross-frame majority decoding."""

    def __init__(self, frame_codec: Optional[WatermarkCodec] = None):
        self.frame_codec = frame_codec or WatermarkCodec(payload_len=12)

    @property
    def payload_len(self) -> int:
        return self.frame_codec.payload_len

    def embed(self, video: Video, payload: bytes) -> Video:
        """Watermark every frame; metadata is preserved."""
        frames = [self.frame_codec.embed(frame, payload) for frame in video.frames]
        return Video(frames=frames, metadata=video.metadata.copy(), fps=video.fps)

    def extract(
        self,
        video: Video,
        min_agreeing_frames: int = 1,
        search_offsets: bool = True,
    ) -> bytes:
        """Majority payload across frames.

        Frames that fail to decode simply don't vote.  Raises
        :class:`WatermarkError` when fewer than ``min_agreeing_frames``
        frames agree on the winning payload.
        """
        votes: Counter = Counter()
        for frame in video.frames:
            try:
                result = self.frame_codec.extract(
                    frame, search_offsets=search_offsets
                )
            except WatermarkError:
                continue
            votes[result.payload] += 1
        if not votes:
            raise WatermarkError("no frame carried a decodable watermark")
        payload, count = votes.most_common(1)[0]
        if count < min_agreeing_frames:
            raise WatermarkError(
                f"only {count} frames agree on a payload "
                f"(required {min_agreeing_frames})"
            )
        return payload

    def has_watermark(self, video: Video, **kwargs) -> bool:
        try:
            self.extract(video, **kwargs)
            return True
        except WatermarkError:
            return False


def video_match_coverage(original: Video, candidate: Video, threshold: float = 0.25) -> float:
    """Fraction of candidate frames perceptually matching some original frame.

    The appeals-process metric for video: a clipped or recompressed
    copy scores near 1.0; unrelated footage scores near 0.0.
    """
    original_signatures = original.frame_signatures()
    matched = 0
    for frame in candidate.frames:
        signature = robust_hash(frame)
        if any(signature.distance(o) <= threshold for o in original_signatures):
            matched += 1
    return matched / candidate.num_frames


def generate_video(
    seed: int = 0,
    num_frames: int = 8,
    height: int = 128,
    width: int = 128,
    motion: float = 2.0,
) -> Video:
    """Synthetic video: one generated scene with per-frame drift.

    Frames share composition (like consecutive video frames do) with
    smooth translation and brightness flicker, so temporal coherence is
    realistic for watermark/hash experiments.
    """
    if num_frames < 1:
        raise ValueError("need at least one frame")
    rng = np.random.default_rng(seed)
    base = PhotoGenerator(rng).generate(height=height, width=width)
    frames = []
    for i in range(num_frames):
        dy = int(round(motion * i * rng.uniform(0.5, 1.0)))
        dx = int(round(motion * i * rng.uniform(0.5, 1.0)))
        pixels = np.roll(base.pixels, shift=(dy % height, dx % width), axis=(0, 1))
        flicker = 1.0 + 0.02 * np.sin(i * 0.9)
        frames.append(Photo(pixels=np.clip(pixels * flicker, 0.0, 1.0)))
    return Video(frames=frames)
