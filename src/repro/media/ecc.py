"""Error handling for watermark payloads: CRC-16 integrity + repetition.

Watermark extraction after compression and tinting produces bit errors;
the payload is protected by a CRC-16 checksum (detects wrong/garbled
extraction) and the embedding layer uses repetition with majority vote
(corrects sparse errors).  Repetition is the right code here because
the channel delivers many copies cheaply (thousands of DCT blocks) and
decoding must be trivial.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "crc16",
    "attach_crc",
    "check_and_strip_crc",
    "bytes_to_bits",
    "bits_to_bytes",
    "repeat_bits",
    "majority_vote",
    "PayloadError",
]

_CRC16_POLY = 0x1021  # CCITT
_CRC16_INIT = 0xFFFF


class PayloadError(Exception):
    """Raised when a recovered payload fails its integrity check."""


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE over ``data``."""
    crc = _CRC16_INIT
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def attach_crc(payload: bytes) -> bytes:
    """Append a 2-byte CRC to the payload."""
    return payload + crc16(payload).to_bytes(2, "big")


def check_and_strip_crc(data: bytes) -> bytes:
    """Verify and remove the trailing CRC; raises :class:`PayloadError`."""
    if len(data) < 3:
        raise PayloadError("payload too short to carry a CRC")
    payload, tag = data[:-2], data[-2:]
    if crc16(payload).to_bytes(2, "big") != tag:
        raise PayloadError("payload CRC mismatch")
    return payload


def bytes_to_bits(data: bytes) -> np.ndarray:
    """MSB-first bit array (uint8 of 0/1) from bytes."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError("bit count must be a multiple of 8")
    return np.packbits(bits).tobytes()


def repeat_bits(bits: np.ndarray, copies: int) -> np.ndarray:
    """Interleaved repetition: [b0 b1 ... bn] * copies (block-interleaved).

    Block interleaving (whole payload repeated end-to-end, rather than
    each bit repeated adjacently) spreads each payload bit's copies
    across the image, so a localized destruction (crop, caption band)
    costs each bit at most a few copies instead of all of them.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    return np.tile(np.asarray(bits, dtype=np.uint8), copies)


def majority_vote(
    received: np.ndarray, payload_bits: int, copies: int
) -> tuple[np.ndarray, np.ndarray]:
    """Decode block-interleaved repetition by per-bit majority.

    Parameters
    ----------
    received:
        Soft or hard values; anything > 0.5 counts as a 1.  May be
        shorter than ``payload_bits * copies`` (e.g. after cropping) --
        missing copies simply don't vote.

    Returns
    -------
    (bits, confidence):
        Decoded hard bits, and per-bit confidence = |mean - 0.5| * 2 in
        [0, 1] (0 = coin flip, 1 = unanimous).
    """
    received = np.asarray(received, dtype=np.float64)
    votes = np.zeros(payload_bits)
    counts = np.zeros(payload_bits)
    usable = min(received.size, payload_bits * copies)
    for i in range(usable):
        slot = i % payload_bits
        votes[slot] += 1.0 if received[i] > 0.5 else 0.0
        counts[slot] += 1.0
    if (counts == 0).any():
        raise PayloadError("not enough received bits to cover the payload")
    means = votes / counts
    bits = (means > 0.5).astype(np.uint8)
    confidence = np.abs(means - 0.5) * 2.0
    return bits, confidence
