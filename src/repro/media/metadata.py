"""EXIF-like metadata for photos, including the IRS identifier field.

Section 3.2: owners label photos "with two forms of metadata that both
encode the identifier: explicit metadata (carried in normal image
metadata fields) and a watermark."  Sites today often *strip* metadata
on upload; IRS-supporting aggregators are assumed to preserve the IRS
fields.  This module models both behaviours.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

__all__ = [
    "MetadataContainer",
    "IRS_IDENTIFIER_FIELD",
    "IRS_FRESHNESS_FIELD",
    "STANDARD_FIELDS",
]

#: The metadata key carrying the encoded ledger identifier.
IRS_IDENTIFIER_FIELD = "irs:identifier"

#: The metadata key on which aggregators attach signed freshness proofs
#: ("cryptographic proof that it has recently verified the non-revoked
#: status of the photo", section 3.2).
IRS_FRESHNESS_FIELD = "irs:freshness-proof"

#: Conventional camera fields, for realism in strip/preserve tests.
STANDARD_FIELDS = (
    "exif:make",
    "exif:model",
    "exif:datetime",
    "exif:gps-latitude",
    "exif:gps-longitude",
    "exif:orientation",
)


class MetadataContainer:
    """String-keyed metadata attached to a photo.

    Values are strings (like EXIF text fields).  IRS fields live in the
    ``irs:`` namespace so strip policies can treat them separately.
    """

    def __init__(self, fields: Optional[Dict[str, str]] = None):
        self._fields: Dict[str, str] = dict(fields or {})

    # -- mapping interface --------------------------------------------------

    def __len__(self) -> int:
        return len(self._fields)

    def __contains__(self, key: str) -> bool:
        return key in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._fields))

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self._fields.get(key, default)

    def set(self, key: str, value: str) -> None:
        if not isinstance(key, str) or not isinstance(value, str):
            raise TypeError("metadata keys and values must be strings")
        self._fields[key] = value

    def remove(self, key: str) -> None:
        self._fields.pop(key, None)

    def items(self):
        return sorted(self._fields.items())

    def copy(self) -> "MetadataContainer":
        return MetadataContainer(dict(self._fields))

    # -- IRS-specific helpers --------------------------------------------------

    @property
    def irs_identifier(self) -> Optional[str]:
        """The encoded ledger identifier, if this photo is labeled."""
        return self._fields.get(IRS_IDENTIFIER_FIELD)

    @irs_identifier.setter
    def irs_identifier(self, value: str) -> None:
        self.set(IRS_IDENTIFIER_FIELD, value)

    def has_irs_label(self) -> bool:
        return IRS_IDENTIFIER_FIELD in self._fields

    # -- strip policies --------------------------------------------------------

    def stripped(self, preserve_irs: bool = False) -> "MetadataContainer":
        """Return a copy with metadata stripped.

        ``preserve_irs=True`` models an IRS-supporting aggregator that
        strips privacy-sensitive EXIF (GPS etc.) but keeps ``irs:``
        fields intact, as the paper assumes.  ``preserve_irs=False``
        models today's strip-everything behaviour.
        """
        if not preserve_irs:
            return MetadataContainer()
        kept = {
            key: value
            for key, value in self._fields.items()
            if key.startswith("irs:")
        }
        return MetadataContainer(kept)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetadataContainer):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetadataContainer({self._fields!r})"
