"""Photo manipulations: the "benign alterations" of Goal #5 and the
attack transforms of section 5.

Every transform returns a *new* photo.  Metadata is preserved by
default; pass ``preserve_metadata=False`` to model sites or attackers
that strip it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import ndimage

from repro.media.image import Photo
from repro.media.metadata import MetadataContainer

__all__ = [
    "crop",
    "resize",
    "tint",
    "adjust_brightness",
    "adjust_contrast",
    "add_noise",
    "flip_horizontal",
    "overlay_caption",
]


def _carry_metadata(photo: Photo, preserve_metadata: bool) -> MetadataContainer:
    return photo.metadata.copy() if preserve_metadata else MetadataContainer()


def crop(
    photo: Photo,
    top: int,
    left: int,
    height: int,
    width: int,
    preserve_metadata: bool = True,
) -> Photo:
    """Crop a rectangle out of the photo."""
    if top < 0 or left < 0 or height <= 0 or width <= 0:
        raise ValueError("crop rectangle must be positive and in-bounds")
    if top + height > photo.height or left + width > photo.width:
        raise ValueError("crop rectangle exceeds photo bounds")
    pixels = photo.pixels[top : top + height, left : left + width, :].copy()
    result = Photo(pixels=pixels)
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def crop_fraction(
    photo: Photo, fraction: float, preserve_metadata: bool = True
) -> Photo:
    """Centered crop retaining ``fraction`` of each dimension."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    new_h = max(8, int(photo.height * fraction))
    new_w = max(8, int(photo.width * fraction))
    top = (photo.height - new_h) // 2
    left = (photo.width - new_w) // 2
    return crop(photo, top, left, new_h, new_w, preserve_metadata)


def resize(
    photo: Photo,
    height: int,
    width: int,
    preserve_metadata: bool = True,
) -> Photo:
    """Bilinear resize to (height, width)."""
    if height <= 0 or width <= 0:
        raise ValueError("target size must be positive")
    zoom = (height / photo.height, width / photo.width, 1.0)
    pixels = ndimage.zoom(photo.pixels, zoom, order=1)
    # zoom can over/undershoot the target by a pixel; crop/pad to exact.
    pixels = pixels[:height, :width, :]
    if pixels.shape[0] < height or pixels.shape[1] < width:
        pixels = np.pad(
            pixels,
            (
                (0, height - pixels.shape[0]),
                (0, width - pixels.shape[1]),
                (0, 0),
            ),
            mode="edge",
        )
    result = Photo(pixels=np.clip(pixels, 0.0, 1.0))
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def tint(
    photo: Photo,
    rgb_gains: tuple[float, float, float],
    preserve_metadata: bool = True,
) -> Photo:
    """Per-channel gain (e.g. a warm tint is ``(1.1, 1.0, 0.9)``)."""
    gains = np.asarray(rgb_gains, dtype=np.float64)
    if gains.shape != (3,) or (gains < 0).any():
        raise ValueError("rgb_gains must be three non-negative floats")
    result = Photo(pixels=np.clip(photo.pixels * gains[None, None, :], 0.0, 1.0))
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def adjust_brightness(
    photo: Photo, delta: float, preserve_metadata: bool = True
) -> Photo:
    """Additive brightness shift in [-1, 1]."""
    if not -1.0 <= delta <= 1.0:
        raise ValueError("delta must be in [-1, 1]")
    result = Photo(pixels=np.clip(photo.pixels + delta, 0.0, 1.0))
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def adjust_contrast(
    photo: Photo, factor: float, preserve_metadata: bool = True
) -> Photo:
    """Contrast scaling about mid-grey."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    result = Photo(pixels=np.clip((photo.pixels - 0.5) * factor + 0.5, 0.0, 1.0))
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def add_noise(
    photo: Photo,
    sigma: float,
    rng: Optional[np.random.Generator] = None,
    preserve_metadata: bool = True,
) -> Photo:
    """Additive Gaussian noise with standard deviation ``sigma``."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = rng or np.random.default_rng(0)
    noisy = photo.pixels + rng.standard_normal(photo.pixels.shape) * sigma
    result = Photo(pixels=np.clip(noisy, 0.0, 1.0))
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def flip_horizontal(photo: Photo, preserve_metadata: bool = True) -> Photo:
    """Mirror left-right (a common reshare manipulation)."""
    result = Photo(pixels=photo.pixels[:, ::-1, :].copy())
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result


def overlay_caption(
    photo: Photo,
    band_fraction: float = 0.15,
    colour: tuple[float, float, float] = (1.0, 1.0, 1.0),
    preserve_metadata: bool = True,
) -> Photo:
    """Paint a solid caption band at the bottom (meme-style edit).

    Models the section-3.2 discussion of derivative images: the pixels
    change substantially in one region while the rest is intact.
    """
    if not 0.0 < band_fraction < 1.0:
        raise ValueError("band_fraction must be in (0, 1)")
    pixels = photo.pixels.copy()
    band = max(1, int(photo.height * band_fraction))
    pixels[-band:, :, :] = np.asarray(colour)[None, None, :]
    result = Photo(pixels=pixels)
    result.metadata = _carry_metadata(photo, preserve_metadata)
    return result
