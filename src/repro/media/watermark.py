"""Robust pixel-domain watermark carrying the IRS ledger identifier.

Section 3.2: the owner labels a photo with "a watermark that encodes the
metadata into the pixel data itself while causing little or no
perceptible distortion.  Because the identifier has relatively few bits,
the watermark can be made robust to many benign picture manipulations
(e.g., compression, cropping, tinting)".

The scheme (standard ingredients from the DWT/DCT watermarking
literature the paper cites [2, 6, 18, 24]):

* The payload (identifier bytes + CRC-16) is embedded in the luminance
  channel's 8x8 block DCT, using **quantization index modulation** (QIM)
  on a handful of mid-frequency coefficients per block.  Mid frequencies
  survive JPEG quantization at reasonable quality while staying below
  the visibility threshold.
* Bits are laid out in a **2D tile pattern** with period (R, C) blocks,
  repeated across the image.  Cropping shifts the tile phase but cannot
  destroy it; the extractor searches all 64 pixel offsets x R*C tile
  phases and accepts the first decode whose CRC verifies.
* Per-bit **majority voting** across all tile repetitions corrects the
  sparse errors that compression and tinting introduce.

Robustness envelope (measured in experiment E7): survives the JPEG-style
codec at quality >= 50, tints up to ~10% per channel, brightness and
mild contrast changes, and crops retaining most of the image; it does
*not* survive resizing -- which is exactly why the design also carries
the identifier in explicit metadata and falls back to perceptual
hashing in the appeals process.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import fft as spfft

from repro.media import ecc
from repro.media.image import Photo

__all__ = ["WatermarkCodec", "WatermarkError", "ExtractionResult"]

_BLOCK = 8

# Mid-frequency (row, col) DCT positions used for embedding.  Chosen so
# the standard JPEG luminance quantization steps at these positions are
# small (13-17), keeping QIM decisions stable at quality >= 50.
_DEFAULT_POSITIONS: tuple[tuple[int, int], ...] = ((1, 2), (2, 1), (2, 2), (3, 1))


class WatermarkError(Exception):
    """Raised when no valid watermark can be extracted."""


class ExtractionResult:
    """Successful extraction: payload plus diagnostics."""

    def __init__(
        self,
        payload: bytes,
        pixel_offset: tuple[int, int],
        tile_phase: tuple[int, int],
        mean_confidence: float,
    ):
        self.payload = payload
        self.pixel_offset = pixel_offset
        self.tile_phase = tile_phase
        self.mean_confidence = mean_confidence

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExtractionResult(offset={self.pixel_offset}, "
            f"phase={self.tile_phase}, conf={self.mean_confidence:.3f})"
        )


class WatermarkCodec:
    """Embed/extract fixed-length payloads in photos.

    Parameters
    ----------
    payload_len:
        Payload size in bytes, *excluding* the CRC appended internally.
        All photos in one deployment use the same length (the IRS
        identifier encoding is fixed-width).
    delta:
        QIM quantization step in orthonormal-DCT units.  Larger is more
        robust and more visible.  The default 40 survives the JPEG
        codec at quality 50 (whose largest step at the embedding
        positions is ~17, half of delta/2 + margin).
    tile_rows, tile_cols:
        Tile period in blocks.  ``tile_rows * tile_cols *
        len(positions)`` slots carry one payload copy (with modular
        wrap-around when sizes don't divide exactly).
    positions:
        Mid-frequency DCT coefficient positions used per block.
    """

    def __init__(
        self,
        payload_len: int = 12,
        delta: float = 40.0,
        tile_rows: int = 4,
        tile_cols: int = 7,
        positions: Sequence[tuple[int, int]] = _DEFAULT_POSITIONS,
    ):
        if payload_len < 1:
            raise ValueError("payload_len must be positive")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.payload_len = int(payload_len)
        self.delta = float(delta)
        self.tile_rows = int(tile_rows)
        self.tile_cols = int(tile_cols)
        self.positions = tuple((int(r), int(c)) for r, c in positions)
        for r, c in self.positions:
            if not (0 <= r < _BLOCK and 0 <= c < _BLOCK):
                raise ValueError("coefficient positions must be inside an 8x8 block")
            if (r, c) == (0, 0):
                raise ValueError("cannot embed in the DC coefficient")
        self._total_bits = (self.payload_len + 2) * 8  # payload + CRC-16
        tile_capacity = self.tile_rows * self.tile_cols * len(self.positions)
        if tile_capacity < self._total_bits:
            raise ValueError(
                f"tile carries {tile_capacity} bits but the payload needs "
                f"{self._total_bits}; enlarge the tile or add positions"
            )

    # -- geometry helpers ------------------------------------------------------

    @property
    def coeffs_per_block(self) -> int:
        return len(self.positions)

    def min_photo_blocks(self) -> int:
        """Blocks needed for at least one full payload copy."""
        return -(-self._total_bits // self.coeffs_per_block)  # ceil div

    def capacity_bits(self, height: int, width: int) -> int:
        return (height // _BLOCK) * (width // _BLOCK) * self.coeffs_per_block

    def _bit_index_grid(
        self, blocks_h: int, blocks_w: int, phase: tuple[int, int]
    ) -> np.ndarray:
        """Payload-bit index for every (block_y, block_x, slot)."""
        ty, tx = phase
        by = (np.arange(blocks_h)[:, None] + ty) % self.tile_rows
        bx = (np.arange(blocks_w)[None, :] + tx) % self.tile_cols
        block_phase = by * self.tile_cols + bx  # (blocks_h, blocks_w)
        slots = np.arange(self.coeffs_per_block)[None, None, :]
        return (
            block_phase[:, :, None] * self.coeffs_per_block + slots
        ) % self._total_bits

    # -- DCT plumbing -------------------------------------------------------------

    @staticmethod
    def _block_dct(luma: np.ndarray) -> np.ndarray:
        h = luma.shape[0] - luma.shape[0] % _BLOCK
        w = luma.shape[1] - luma.shape[1] % _BLOCK
        trimmed = luma[:h, :w]
        blocks = trimmed.reshape(h // _BLOCK, _BLOCK, w // _BLOCK, _BLOCK)
        blocks = blocks.transpose(0, 2, 1, 3)
        return spfft.dctn(blocks, axes=(2, 3), norm="ortho")

    @staticmethod
    def _block_idct(coeffs: np.ndarray) -> np.ndarray:
        blocks = spfft.idctn(coeffs, axes=(2, 3), norm="ortho")
        hb, wb = blocks.shape[:2]
        return blocks.transpose(0, 2, 1, 3).reshape(hb * _BLOCK, wb * _BLOCK)

    # -- QIM ------------------------------------------------------------------------

    def _qim_embed(self, values: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Quantize each value to the coset lattice selected by its bit.

        Coset for bit 0: multiples of delta.  Bit 1: multiples of delta
        shifted by delta/2.
        """
        dither = bits * (self.delta / 2.0)
        return np.round((values - dither) / self.delta) * self.delta + dither

    def _qim_soft(self, values: np.ndarray) -> np.ndarray:
        """Soft bit estimate in [0, 1] from coset distances.

        0.0 = certainly a 0-coset point, 1.0 = certainly a 1-coset
        point, 0.5 = equidistant.
        """
        frac = np.mod(values, self.delta) / self.delta  # in [0, 1)
        # Distance to 0-coset (frac 0 or 1) vs 1-coset (frac 0.5).
        dist0 = np.minimum(frac, 1.0 - frac)
        dist1 = np.abs(frac - 0.5)
        total = dist0 + dist1  # == 0.5 everywhere, but keep it explicit
        return dist0 / np.maximum(total, 1e-12)

    # -- public API --------------------------------------------------------------------

    def embed(self, photo: Photo, payload: bytes) -> Photo:
        """Return a watermarked copy of ``photo`` carrying ``payload``.

        Metadata is preserved; pixels change imperceptibly (PSNR
        typically > 34 dB at the default delta).
        """
        if len(payload) != self.payload_len:
            raise WatermarkError(
                f"payload must be exactly {self.payload_len} bytes, "
                f"got {len(payload)}"
            )
        protected = ecc.attach_crc(payload)
        bits = ecc.bytes_to_bits(protected)
        luma = photo.luminance()
        if self.capacity_bits(photo.height, photo.width) < self._total_bits:
            raise WatermarkError(
                f"photo too small: capacity "
                f"{self.capacity_bits(photo.height, photo.width)} bits < "
                f"payload {self._total_bits} bits"
            )
        coeffs = self._block_dct(luma)
        blocks_h, blocks_w = coeffs.shape[:2]
        indices = self._bit_index_grid(blocks_h, blocks_w, (0, 0))
        for slot, (r, c) in enumerate(self.positions):
            slot_bits = bits[indices[:, :, slot]]
            coeffs[:, :, r, c] = self._qim_embed(coeffs[:, :, r, c], slot_bits)
        new_luma_trim = self._block_idct(coeffs)
        # Apply the luminance delta back onto RGB: shift all channels by
        # the same amount (keeps chroma, changes only luma).
        delta_luma = np.zeros_like(luma)
        h, w = new_luma_trim.shape
        delta_luma[:h, :w] = new_luma_trim - luma[:h, :w]
        pixels = photo.pixels + (delta_luma / 255.0)[:, :, None]
        result = Photo(pixels=np.clip(pixels, 0.0, 1.0))
        result.metadata = photo.metadata.copy()
        return result

    def extract(
        self,
        photo: Photo,
        search_offsets: bool = True,
        try_flip: bool = False,
        min_confidence: float = 0.0,
    ) -> ExtractionResult:
        """Extract the payload, searching crop offsets and tile phases.

        Raises :class:`WatermarkError` when no candidate decode passes
        the CRC (i.e. the photo is unwatermarked or the watermark was
        destroyed).

        Parameters
        ----------
        search_offsets:
            When False, only the aligned (0, 0) offset is tried — fast
            path for photos known not to be cropped.
        try_flip:
            Also attempt extraction on the mirrored image (resharers
            sometimes flip photos).
        min_confidence:
            Reject decodes whose mean majority-vote confidence falls
            below this threshold even if the CRC passes (defence against
            the ~2^-16 CRC collision rate on garbage).
        """
        luma = photo.luminance()
        candidates = [luma]
        if try_flip:
            candidates.append(luma[:, ::-1])
        offsets = (
            [(dy, dx) for dy in range(_BLOCK) for dx in range(_BLOCK)]
            if search_offsets
            else [(0, 0)]
        )
        for flipped, base in enumerate(candidates):
            for dy, dx in offsets:
                window = base[dy:, dx:]
                if (
                    window.shape[0] < _BLOCK
                    or window.shape[1] < _BLOCK
                    or self.capacity_bits(*window.shape) < self._total_bits
                ):
                    continue
                result = self._try_window(window, (dy, dx), min_confidence)
                if result is not None:
                    return result
        raise WatermarkError("no valid watermark found")

    def _try_window(
        self,
        luma: np.ndarray,
        pixel_offset: tuple[int, int],
        min_confidence: float,
    ) -> Optional[ExtractionResult]:
        coeffs = self._block_dct(luma)
        blocks_h, blocks_w = coeffs.shape[:2]
        soft = np.stack(
            [self._qim_soft(coeffs[:, :, r, c]) for (r, c) in self.positions],
            axis=-1,
        )  # (blocks_h, blocks_w, cpb)
        for ty in range(self.tile_rows):
            for tx in range(self.tile_cols):
                indices = self._bit_index_grid(blocks_h, blocks_w, (ty, tx))
                sums = np.zeros(self._total_bits)
                counts = np.zeros(self._total_bits)
                np.add.at(sums, indices.ravel(), soft.ravel())
                np.add.at(counts, indices.ravel(), 1.0)
                if (counts == 0).any():
                    continue
                means = sums / counts
                bits = (means > 0.5).astype(np.uint8)
                confidence = float(np.mean(np.abs(means - 0.5) * 2.0))
                if confidence < min_confidence:
                    continue
                try:
                    payload = ecc.check_and_strip_crc(ecc.bits_to_bytes(bits))
                except ecc.PayloadError:
                    continue
                return ExtractionResult(
                    payload=payload,
                    pixel_offset=pixel_offset,
                    tile_phase=(ty, tx),
                    mean_confidence=confidence,
                )
        return None

    def has_watermark(self, photo: Photo, **kwargs) -> bool:
        """True iff a valid watermark extracts from ``photo``."""
        try:
            self.extract(photo, **kwargs)
            return True
        except WatermarkError:
            return False
