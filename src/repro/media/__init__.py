"""Media substrate: photos, metadata, transforms, watermarks, robust hashes.

The paper's Goal #5 requires that revocation survive "benign photo and
metadata alterations" (transcoding, metadata stripping), achieved by
labeling photos twice -- explicit metadata *and* a pixel-domain
watermark -- and by robust (perceptual) hashing for the appeals process.

Since the offline environment has no real photographs or JPEG codec, the
package provides faithful synthetic equivalents (see DESIGN.md's
substitution table):

* :mod:`repro.media.image` -- :class:`Photo` plus a seeded synthetic
  natural-image generator.
* :mod:`repro.media.metadata` -- EXIF-like metadata container with the
  IRS identifier field, and strip/preserve policies.
* :mod:`repro.media.jpeg` -- simplified DCT-quantization codec standing
  in for JPEG transcodes.
* :mod:`repro.media.transforms` -- crop / resize / tint / noise / flip,
  the manipulations sections 3.2 and 5 discuss.
* :mod:`repro.media.ecc` -- CRC + repetition coding for watermark
  payloads.
* :mod:`repro.media.watermark` -- block-DCT QIM watermark carrying the
  ledger identifier.
* :mod:`repro.media.perceptual` -- PhotoDNA-style robust hash used by
  appeals and aggregator hash databases.
"""

from repro.media.image import Photo, generate_photo, PhotoGenerator
from repro.media.metadata import MetadataContainer, IRS_IDENTIFIER_FIELD
from repro.media.jpeg import jpeg_roundtrip, JpegCodec
from repro.media.transforms import (
    crop,
    resize,
    tint,
    adjust_brightness,
    adjust_contrast,
    add_noise,
    flip_horizontal,
    overlay_caption,
)
from repro.media.watermark import WatermarkCodec, WatermarkError
from repro.media.perceptual import RobustHash, robust_hash, hash_distance
from repro.media.video import Video, VideoWatermarkCodec, generate_video
from repro.media.provenance import ProvenanceManifest, ProvenanceError

__all__ = [
    "Photo",
    "generate_photo",
    "PhotoGenerator",
    "MetadataContainer",
    "IRS_IDENTIFIER_FIELD",
    "jpeg_roundtrip",
    "JpegCodec",
    "crop",
    "resize",
    "tint",
    "adjust_brightness",
    "adjust_contrast",
    "add_noise",
    "flip_horizontal",
    "overlay_caption",
    "WatermarkCodec",
    "WatermarkError",
    "RobustHash",
    "robust_hash",
    "hash_distance",
    "Video",
    "VideoWatermarkCodec",
    "generate_video",
    "ProvenanceManifest",
    "ProvenanceError",
]
