"""Simplified JPEG-style codec: block DCT + quantization round trip.

Stands in for the transcoding that content aggregators apply on upload
(the paper's Goal #5: revocation must survive compression).  The codec
implements the lossy core of JPEG -- YCbCr conversion, 8x8 block DCT,
quality-scaled quantization tables, dequantization, inverse DCT -- and
skips the lossless entropy-coding stage, which does not affect pixels.

Watermark robustness against this codec therefore predicts robustness
against real JPEG at the same quality factor.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as spfft

from repro.media.image import Photo

__all__ = ["JpegCodec", "jpeg_roundtrip"]

# Standard Annex-K luminance quantization table.
_LUMA_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

# Standard chroma quantization table.
_CHROMA_TABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)

_BLOCK = 8


def _quality_scale(quality: int) -> float:
    """IJG quality-to-scale mapping."""
    quality = max(1, min(100, int(quality)))
    if quality < 50:
        return 5000.0 / quality / 100.0
    return (200.0 - 2.0 * quality) / 100.0


def _scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    scaled = np.floor(base * _quality_scale(quality) + 0.5)
    return np.clip(scaled, 1.0, 255.0)


def _rgb_to_ycbcr(pixels: np.ndarray) -> np.ndarray:
    """RGB [0,1] -> YCbCr [0,255] (BT.601 full range)."""
    r, g, b = pixels[..., 0] * 255, pixels[..., 1] * 255, pixels[..., 2] * 255
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def _ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    y, cb, cr = ycbcr[..., 0], ycbcr[..., 1] - 128.0, ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    return np.clip(np.stack([r, g, b], axis=-1) / 255.0, 0.0, 1.0)


def _pad_to_blocks(channel: np.ndarray) -> tuple[np.ndarray, int, int]:
    height, width = channel.shape
    pad_h = (-height) % _BLOCK
    pad_w = (-width) % _BLOCK
    padded = np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")
    return padded, height, width


def _blockwise_dct(channel: np.ndarray) -> np.ndarray:
    """2D type-II DCT on each 8x8 block (orthonormal)."""
    h, w = channel.shape
    blocks = channel.reshape(h // _BLOCK, _BLOCK, w // _BLOCK, _BLOCK)
    blocks = blocks.transpose(0, 2, 1, 3)
    coeffs = spfft.dctn(blocks, axes=(2, 3), norm="ortho")
    return coeffs  # shape (h/8, w/8, 8, 8)


def _blockwise_idct(coeffs: np.ndarray, height: int, width: int) -> np.ndarray:
    blocks = spfft.idctn(coeffs, axes=(2, 3), norm="ortho")
    h_blocks, w_blocks = blocks.shape[:2]
    channel = blocks.transpose(0, 2, 1, 3).reshape(
        h_blocks * _BLOCK, w_blocks * _BLOCK
    )
    return channel[:height, :width]


class JpegCodec:
    """Round-trips photos through quality-scaled DCT quantization.

    Parameters
    ----------
    quality:
        JPEG-style quality factor, 1 (worst) to 100 (near-lossless).
    chroma_subsampling:
        Apply 4:2:0 chroma subsampling (halve Cb/Cr resolution before
        quantization), as virtually all web JPEGs do.  Affects colour
        detail only; the luma-carried watermark is untouched by it.
    """

    def __init__(self, quality: int = 75, chroma_subsampling: bool = False):
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.quality = int(quality)
        self.chroma_subsampling = bool(chroma_subsampling)
        self._luma_q = _scaled_table(_LUMA_TABLE, quality)
        self._chroma_q = _scaled_table(_CHROMA_TABLE, quality)

    @staticmethod
    def _subsample(channel: np.ndarray) -> np.ndarray:
        """2x2 box average (4:2:0 downsample)."""
        h, w = channel.shape
        trimmed = channel[: h - h % 2, : w - w % 2]
        return trimmed.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))

    @staticmethod
    def _upsample(channel: np.ndarray, height: int, width: int) -> np.ndarray:
        """Nearest-neighbour 2x upsample back to (height, width)."""
        up = np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
        out = np.empty((height, width))
        out[: up.shape[0], : up.shape[1]] = up[:height, :width]
        # Odd trailing row/column: replicate the last available line.
        if up.shape[0] < height:
            out[up.shape[0] :, : up.shape[1]] = up[-1:, :width]
        if up.shape[1] < width:
            out[:, up.shape[1] :] = out[:, up.shape[1] - 1 : up.shape[1]]
        return out

    def _code_channel(self, channel: np.ndarray, table: np.ndarray) -> np.ndarray:
        padded, height, width = _pad_to_blocks(channel)
        coeffs = _blockwise_dct(padded - 128.0)
        restored = np.round(coeffs / table) * table
        return _blockwise_idct(restored, height, width) + 128.0

    def roundtrip(self, photo: Photo, preserve_metadata: bool = True) -> Photo:
        """Compress and decompress, returning the degraded photo.

        ``preserve_metadata=False`` also strips metadata, modelling a
        non-IRS-aware transcode pipeline.
        """
        ycbcr = _rgb_to_ycbcr(photo.pixels)
        out = np.empty_like(ycbcr)
        height, width = ycbcr.shape[:2]
        out[..., 0] = self._code_channel(ycbcr[..., 0], self._luma_q)
        for c in (1, 2):
            channel = ycbcr[..., c]
            if self.chroma_subsampling and height >= 2 and width >= 2:
                small = self._subsample(channel)
                coded = self._code_channel(small, self._chroma_q)
                out[..., c] = self._upsample(coded, height, width)
            else:
                out[..., c] = self._code_channel(channel, self._chroma_q)
        pixels = _ycbcr_to_rgb(out)
        metadata = photo.metadata.copy() if preserve_metadata else None
        result = Photo(pixels=pixels)
        if metadata is not None:
            result.metadata = metadata
        return result

    def compressed_size_estimate(self, photo: Photo) -> int:
        """Rough compressed size in bytes: count of non-zero quantized
        coefficients times an empirical 1.1 bytes-per-coefficient, plus
        header overhead.  Used only by workload generators that need a
        transfer size for synthetic photos.
        """
        ycbcr = _rgb_to_ycbcr(photo.pixels)
        nonzero = 0
        for c in range(3):
            table = self._luma_q if c == 0 else self._chroma_q
            padded, _, _ = _pad_to_blocks(ycbcr[..., c])
            coeffs = _blockwise_dct(padded - 128.0)
            nonzero += int(np.count_nonzero(np.round(coeffs / table)))
        return 600 + int(nonzero * 1.1)


def jpeg_roundtrip(
    photo: Photo, quality: int = 75, preserve_metadata: bool = True
) -> Photo:
    """One-shot compress/decompress at the given quality."""
    return JpegCodec(quality=quality).roundtrip(
        photo, preserve_metadata=preserve_metadata
    )
