"""Photos and a synthetic natural-image generator.

A :class:`Photo` is an RGB pixel array (float64 in [0, 1]) plus a
metadata container.  The generator produces seeded images with the
statistics that matter for the watermark and robust-hash experiments:
low-frequency structure (sky-like gradients), mid-frequency objects
(ellipses and rectangles of varying colour), and high-frequency texture
(smoothed noise) -- i.e. energy across the DCT spectrum, like real
photographs and unlike flat synthetic test cards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import ndimage

from repro.crypto.hashing import sha256_hex
from repro.media.metadata import MetadataContainer

__all__ = ["Photo", "PhotoGenerator", "generate_photo"]


@dataclass
class Photo:
    """An image: pixels plus metadata.

    Attributes
    ----------
    pixels:
        ``(height, width, 3)`` float64 array with values in [0, 1].
    metadata:
        EXIF-like key/value container; the IRS identifier travels here
        (and, redundantly, in the watermark).
    """

    pixels: np.ndarray
    metadata: MetadataContainer = field(default_factory=MetadataContainer)

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels, dtype=np.float64)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError("pixels must be (height, width, 3)")
        self.pixels = np.clip(pixels, 0.0, 1.0)

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.height, self.width)

    def luminance(self) -> np.ndarray:
        """ITU-R BT.601 luma in [0, 255]."""
        r, g, b = self.pixels[..., 0], self.pixels[..., 1], self.pixels[..., 2]
        return (0.299 * r + 0.587 * g + 0.114 * b) * 255.0

    def content_hash(self) -> str:
        """Exact (bit-level) hash of pixel contents, excluding metadata.

        This is the hash the owner signs when claiming a photo.  Any
        pixel change -- even recompression -- changes it, which is why
        the appeals process relies on the *robust* hash instead.
        """
        quantized = np.round(self.pixels * 255.0).astype(np.uint8)
        return sha256_hex(quantized.tobytes())

    def copy(self, with_metadata: bool = True) -> "Photo":
        metadata = self.metadata.copy() if with_metadata else MetadataContainer()
        return Photo(pixels=self.pixels.copy(), metadata=metadata)

    def psnr_against(self, other: "Photo") -> float:
        """Peak signal-to-noise ratio vs another photo of the same size."""
        if self.pixels.shape != other.pixels.shape:
            raise ValueError("photos must have the same shape for PSNR")
        mse = float(np.mean((self.pixels - other.pixels) ** 2))
        if mse == 0.0:
            return float("inf")
        return 10.0 * np.log10(1.0 / mse)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Photo({self.height}x{self.width}, metadata={len(self.metadata)})"


class PhotoGenerator:
    """Seeded generator of synthetic natural-looking photos."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng or np.random.default_rng(0)

    def generate(
        self,
        height: int = 128,
        width: int = 128,
        num_objects: int = 6,
        texture_strength: float = 0.04,
    ) -> Photo:
        """Generate one photo.

        The composition pipeline: smooth colour gradient background,
        ``num_objects`` random soft-edged ellipses/rectangles, then
        band-limited texture noise.
        """
        rng = self._rng
        image = self._gradient_background(height, width)
        for _ in range(num_objects):
            if rng.random() < 0.5:
                self._paint_ellipse(image, rng)
            else:
                self._paint_rectangle(image, rng)
        image += self._texture(height, width, texture_strength)
        return Photo(pixels=np.clip(image, 0.0, 1.0))

    def _gradient_background(self, height: int, width: int) -> np.ndarray:
        rng = self._rng
        top = rng.uniform(0.2, 0.9, size=3)
        bottom = rng.uniform(0.1, 0.8, size=3)
        t = np.linspace(0.0, 1.0, height)[:, None, None]
        image = (1 - t) * top[None, None, :] + t * bottom[None, None, :]
        # Mild horizontal variation so the background is not separable.
        sweep = 0.08 * np.sin(
            np.linspace(0, rng.uniform(1.0, 3.0) * np.pi, width)
        )[None, :, None]
        return np.broadcast_to(image, (height, width, 3)).copy() + sweep

    def _paint_ellipse(self, image: np.ndarray, rng: np.random.Generator) -> None:
        height, width, _ = image.shape
        cy, cx = rng.uniform(0, height), rng.uniform(0, width)
        ry = rng.uniform(height * 0.05, height * 0.3)
        rx = rng.uniform(width * 0.05, width * 0.3)
        colour = rng.uniform(0.0, 1.0, size=3)
        alpha = rng.uniform(0.5, 1.0)
        yy, xx = np.mgrid[0:height, 0:width]
        dist = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2
        mask = np.clip(1.5 - dist, 0.0, 1.0)  # soft edge
        mask = np.minimum(mask, 1.0)[:, :, None] * alpha
        image *= 1 - mask
        image += mask * colour[None, None, :]

    def _paint_rectangle(self, image: np.ndarray, rng: np.random.Generator) -> None:
        height, width, _ = image.shape
        y0 = int(rng.uniform(0, height * 0.8))
        x0 = int(rng.uniform(0, width * 0.8))
        y1 = min(height, y0 + int(rng.uniform(height * 0.1, height * 0.5)))
        x1 = min(width, x0 + int(rng.uniform(width * 0.1, width * 0.5)))
        colour = rng.uniform(0.0, 1.0, size=3)
        alpha = rng.uniform(0.4, 0.9)
        region = image[y0:y1, x0:x1, :]
        image[y0:y1, x0:x1, :] = (1 - alpha) * region + alpha * colour[None, None, :]

    def _texture(self, height: int, width: int, strength: float) -> np.ndarray:
        noise = self._rng.standard_normal((height, width, 3))
        smooth = ndimage.gaussian_filter(noise, sigma=(1.2, 1.2, 0))
        return strength * smooth


def generate_photo(
    seed: int = 0,
    height: int = 128,
    width: int = 128,
    num_objects: int = 6,
) -> Photo:
    """Convenience wrapper: one seeded photo."""
    generator = PhotoGenerator(np.random.default_rng(seed))
    return generator.generate(height=height, width=width, num_objects=num_objects)
