"""Command-line demo runner: ``python -m repro <demo>``.

Wraps the example scripts so the package is runnable after a bare
install (the examples/ directory ships with the repository, not the
wheel).
"""

from __future__ import annotations

import argparse
import sys


def _demo_quickstart() -> None:
    from repro.core import IrsDeployment

    irs = IrsDeployment.create(seed=0)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    print(f"claimed {receipt.identifier}; validating…")
    print(f"  before revoke: {irs.validator.validate(labeled).decision.value}")
    irs.owner_toolkit.revoke(receipt, irs.ledger)
    print(f"  after revoke:  {irs.validator.validate(labeled).decision.value}")
    irs.owner_toolkit.unrevoke(receipt, irs.ledger)
    print(f"  after unrevoke: {irs.validator.validate(labeled).decision.value}")


def _demo_scaling() -> None:
    from repro.filters.sizing import paper_scaling_table

    print("Paper section 4.4 Bloom scaling (computed, not asserted):")
    for row in paper_scaling_table():
        print(
            f"  {row.filter_gb:7.1f} GB @ {row.population:.0e} photos: "
            f"k={row.optimal_hashes}, FPR={row.false_positive_rate:.4f}, "
            f"load reduction {row.load_reduction:.1f}x"
        )


def _demo_adoption() -> None:
    from repro.ecosystem import baseline_scenario, no_first_mover_scenario

    for scenario in (baseline_scenario(), no_first_mover_scenario()):
        trace = scenario.build(seed=2022).run(240)
        tip = trace.tipping_month(0.5)
        photos = trace.photos_at_tipping(0.5)
        print(
            f"{scenario.name}: tipping month="
            f"{tip if tip is not None else 'never'}"
            + (f", photos at tip={photos:.2e}" if photos else "")
        )


def _demo_cluster(args: argparse.Namespace) -> None:
    import numpy as np

    from repro.cluster import ClusterConfig, SimulatedCluster

    for name in ("shards", "replication", "queries"):
        if getattr(args, name) < 1:
            raise SystemExit(
                f"python -m repro cluster: --{name} must be at least 1"
            )
    replication = min(args.replication, args.shards)
    cluster = SimulatedCluster(
        args.shards,
        config=ClusterConfig(replication_factor=replication),
        seed=0,
        rpc_timeout=0.1,
    )
    population = cluster.seed_population(
        max(args.queries, 200), revoked_fraction=0.3
    )
    sim = cluster.simulator
    rng = np.random.default_rng(1)
    indices = rng.integers(0, population.size, size=args.queries)
    answers: dict = {}
    latencies: dict = {}

    def ask(slot: int, identifier) -> None:
        started = sim.now
        cluster.frontend.status_async(
            identifier,
            lambda answer: (
                answers.__setitem__(slot, answer),
                latencies.__setitem__(slot, sim.now - started),
            ),
        )

    for slot, index in enumerate(indices):
        sim.schedule(slot * 0.001, ask, slot, population.identifiers[index])
    victim = None
    if args.kill_shard:
        victim = f"shard-{args.shards - 1}"
        sim.schedule(args.queries * 0.001 / 2, cluster.kill_shard, victim)
    sim.run(until=60.0)

    correct = sum(
        1
        for slot, index in enumerate(indices)
        if answers[slot].ok and answers[slot].revoked == population.revoked(index)
    )
    ordered = sorted(latencies.values())
    p99 = ordered[int(len(ordered) * 0.99) - 1] if ordered else 0.0
    print(
        f"cluster: {args.shards} shard(s), replication {replication}, "
        f"{args.queries} status checks"
    )
    if victim is not None:
        print(f"  killed {victim} mid-run; "
              f"suspects now: {cluster.detector.suspects() or 'none'}")
    print(f"  correct answers: {correct}/{len(indices)}")
    print(f"  p50 latency: {ordered[len(ordered) // 2] * 1e3:.1f} ms, "
          f"p99: {p99 * 1e3:.1f} ms")
    print(f"  frontend: {cluster.frontend.stats}")


_DEMOS = {
    "quickstart": (_demo_quickstart, "claim/label/revoke/validate lifecycle"),
    "scaling": (_demo_scaling, "section 4.4 Bloom filter scaling table"),
    "adoption": (_demo_adoption, "TET tipping points, with and without first movers"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IRS reproduction demos (full examples live in examples/)",
    )
    subparsers = parser.add_subparsers(dest="demo", required=True, metavar="demo")
    for name, (_, description) in sorted(_DEMOS.items()):
        subparsers.add_parser(name, help=description)
    cluster_parser = subparsers.add_parser(
        "cluster",
        help="sharded, replicated ledger cluster under simulated load",
    )
    cluster_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    cluster_parser.add_argument(
        "--replication", type=int, default=3,
        help="replicas per record, capped at the shard count (default 3)",
    )
    cluster_parser.add_argument(
        "--queries", type=int, default=400,
        help="status checks to drive through the frontend (default 400)",
    )
    cluster_parser.add_argument(
        "--kill-shard", action="store_true",
        help="crash one replica mid-run to exercise quorum failover",
    )
    args = parser.parse_args(argv)
    if args.demo == "cluster":
        _demo_cluster(args)
    else:
        _DEMOS[args.demo][0]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
