"""Command-line demo runner: ``python -m repro <demo>``.

Wraps the example scripts so the package is runnable after a bare
install (the examples/ directory ships with the repository, not the
wheel).
"""

from __future__ import annotations

import argparse
import sys


def _demo_quickstart() -> None:
    from repro.core import IrsDeployment

    irs = IrsDeployment.create(seed=0)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    print(f"claimed {receipt.identifier}; validating…")
    print(f"  before revoke: {irs.validator.validate(labeled).decision.value}")
    irs.owner_toolkit.revoke(receipt, irs.ledger)
    print(f"  after revoke:  {irs.validator.validate(labeled).decision.value}")
    irs.owner_toolkit.unrevoke(receipt, irs.ledger)
    print(f"  after unrevoke: {irs.validator.validate(labeled).decision.value}")


def _demo_scaling() -> None:
    from repro.filters.sizing import paper_scaling_table

    print("Paper section 4.4 Bloom scaling (computed, not asserted):")
    for row in paper_scaling_table():
        print(
            f"  {row.filter_gb:7.1f} GB @ {row.population:.0e} photos: "
            f"k={row.optimal_hashes}, FPR={row.false_positive_rate:.4f}, "
            f"load reduction {row.load_reduction:.1f}x"
        )


def _demo_adoption() -> None:
    from repro.ecosystem import baseline_scenario, no_first_mover_scenario

    for scenario in (baseline_scenario(), no_first_mover_scenario()):
        trace = scenario.build(seed=2022).run(240)
        tip = trace.tipping_month(0.5)
        photos = trace.photos_at_tipping(0.5)
        print(
            f"{scenario.name}: tipping month="
            f"{tip if tip is not None else 'never'}"
            + (f", photos at tip={photos:.2e}" if photos else "")
        )


_DEMOS = {
    "quickstart": (_demo_quickstart, "claim/label/revoke/validate lifecycle"),
    "scaling": (_demo_scaling, "section 4.4 Bloom filter scaling table"),
    "adoption": (_demo_adoption, "TET tipping points, with and without first movers"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IRS reproduction demos (full examples live in examples/)",
    )
    parser.add_argument(
        "demo",
        choices=sorted(_DEMOS),
        help="; ".join(f"{name}: {desc}" for name, (_, desc) in sorted(_DEMOS.items())),
    )
    args = parser.parse_args(argv)
    _DEMOS[args.demo][0]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
