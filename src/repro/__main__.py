"""Command-line demo runner: ``python -m repro <demo>``.

Wraps the example scripts so the package is runnable after a bare
install (the examples/ directory ships with the repository, not the
wheel).
"""

from __future__ import annotations

import argparse
import sys


def _demo_quickstart() -> None:
    from repro.core import IrsDeployment

    irs = IrsDeployment.create(seed=0)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    print(f"claimed {receipt.identifier}; validating…")
    print(f"  before revoke: {irs.validator.validate(labeled).decision.value}")
    irs.owner_toolkit.revoke(receipt, irs.ledger)
    print(f"  after revoke:  {irs.validator.validate(labeled).decision.value}")
    irs.owner_toolkit.unrevoke(receipt, irs.ledger)
    print(f"  after unrevoke: {irs.validator.validate(labeled).decision.value}")


def _demo_scaling() -> None:
    from repro.filters.sizing import paper_scaling_table

    print("Paper section 4.4 Bloom scaling (computed, not asserted):")
    for row in paper_scaling_table():
        print(
            f"  {row.filter_gb:7.1f} GB @ {row.population:.0e} photos: "
            f"k={row.optimal_hashes}, FPR={row.false_positive_rate:.4f}, "
            f"load reduction {row.load_reduction:.1f}x"
        )


def _demo_adoption() -> None:
    from repro.ecosystem import baseline_scenario, no_first_mover_scenario

    for scenario in (baseline_scenario(), no_first_mover_scenario()):
        trace = scenario.build(seed=2022).run(240)
        tip = trace.tipping_month(0.5)
        photos = trace.photos_at_tipping(0.5)
        print(
            f"{scenario.name}: tipping month="
            f"{tip if tip is not None else 'never'}"
            + (f", photos at tip={photos:.2e}" if photos else "")
        )


def _demo_cluster(args: argparse.Namespace) -> None:
    from repro.cluster import ClusterConfig, SimulatedCluster
    from repro.perf.workloads import burst_indices

    for name in ("shards", "replication", "queries"):
        if getattr(args, name) < 1:
            raise SystemExit(
                f"python -m repro cluster: --{name} must be at least 1"
            )
    replication = min(args.replication, args.shards)
    cluster = SimulatedCluster(
        args.shards,
        config=ClusterConfig(replication_factor=replication),
        seed=0,
        rpc_timeout=0.1,
    )
    population = cluster.seed_population(
        max(args.queries, 200), revoked_fraction=0.3
    )
    sim = cluster.simulator
    indices = burst_indices(1, population.size, args.queries)
    answers: dict = {}
    latencies: dict = {}

    # Queries arrive in groups of ~50 and flow through the batch status
    # path: one vectorized Bloom pass per group, per-shard RPC batching
    # underneath — the production read path, not a per-key loop.
    group = 50

    def ask_group(base_slot: int, identifiers) -> None:
        started = sim.now

        def record(offset: int, answer) -> None:
            answers[base_slot + offset] = answer
            latencies[base_slot + offset] = sim.now - started

        cluster.frontend.status_many_async(identifiers, record)

    for base_slot in range(0, len(indices), group):
        batch = [
            population.identifiers[int(index)]
            for index in indices[base_slot : base_slot + group]
        ]
        sim.schedule(base_slot * 0.001, ask_group, base_slot, batch)
    victim = None
    if args.kill_shard:
        victim = f"shard-{args.shards - 1}"
        sim.schedule(args.queries * 0.001 / 2, cluster.kill_shard, victim)
    sim.run(until=60.0)

    correct = sum(
        1
        for slot, index in enumerate(indices)
        if answers[slot].ok and answers[slot].revoked == population.revoked(index)
    )
    ordered = sorted(latencies.values())
    p99 = ordered[int(len(ordered) * 0.99) - 1] if ordered else 0.0
    print(
        f"cluster: {args.shards} shard(s), replication {replication}, "
        f"{args.queries} status checks"
    )
    if victim is not None:
        print(f"  killed {victim} mid-run; "
              f"suspects now: {cluster.detector.suspects() or 'none'}")
    print(f"  correct answers: {correct}/{len(indices)}")
    print(f"  p50 latency: {ordered[len(ordered) // 2] * 1e3:.1f} ms, "
          f"p99: {p99 * 1e3:.1f} ms")
    print(f"  frontend: {cluster.frontend.stats}")


def _demo_recover(args: argparse.Namespace) -> None:
    from repro.chaos import ChaosKnobs, run_chaos, run_durability_selftest

    if args.selftest:
        result = run_durability_selftest(seed=args.seed)
        print("durability self-test (blind recovery + replay divergence):")
        print(
            f"  clean run: {result.clean.faults.get('storage', 0)} storage "
            f"fault(s), {len(result.clean.recoveries)} recoveries, "
            f"violations: {result.clean.check.by_invariant() or 'none'}"
        )
        print(
            "  blind run corruption_missed: "
            f"{result.blind.check.count('corruption_missed')}"
        )
        print(
            "  diverged run recovery_mismatch: "
            f"{result.diverged.check.count('recovery_mismatch')}"
        )
        print(f"  sabotage detected: {result.detected}")
        if not result.detected:
            raise SystemExit(
                "durability self-test FAILED: checker missed the sabotage"
            )
        return
    if not 0.0 <= args.intensity:
        raise SystemExit(
            "python -m repro recover: --intensity cannot be negative"
        )
    knobs = ChaosKnobs(
        storage_fault_probability=args.storage,
        wipe_probability=args.wipes,
        crash_rate=1.2,
    )
    report = run_chaos(
        num_shards=args.shards,
        seed=args.seed,
        intensity=args.intensity,
        knobs=knobs,
    )
    print(
        f"recover: {report.num_shards} shard(s), seed {report.seed}, "
        f"intensity {report.intensity:.2f}"
    )
    print(
        f"  faults: {report.faults.get('crash', 0)} crash(es), "
        f"{report.faults.get('wipe', 0)} wiped, "
        f"{report.faults.get('storage', 0)} storage fault(s) "
        f"({', '.join(kind for _, kind, _ in report.storage_faults) or 'none'})"
    )
    for recovery in report.recoveries:
        verdict = (
            "clean"
            if not recovery.evidence
            else "+".join(sorted(set(recovery.evidence)))
        )
        print(
            f"  recovery {recovery.shard_id} @ t={recovery.at:.3f}: "
            f"{recovery.records_recovered} records, "
            f"{recovery.events_replayed} events replayed, {verdict}"
        )
    print(
        f"  workload: {report.status_ops} status checks "
        f"({report.availability:.1%} answered), "
        f"{report.revokes_acked}/{report.revokes_attempted} "
        f"revocations acknowledged"
    )
    if report.check.ok:
        print("  durability: OK — recovered state equals replayed log, "
              "every injected corruption detected")
    else:
        print(f"  durability: {report.check.by_invariant()}")
        for violation in report.check.violations:
            print(f"    [{violation.invariant}] serial={violation.serial}: "
                  f"{violation.detail}")
        raise SystemExit(1)


def _demo_chaos(args: argparse.Namespace) -> None:
    from repro.chaos import ChaosKnobs, run_chaos, run_selftest

    if args.selftest:
        result = run_selftest(seed=args.seed)
        print("checker self-test (deliberate last-arrival-wins bug):")
        print(f"  clean run violations: {result.clean.by_invariant() or 'none'}")
        print(f"  buggy run violations: {result.buggy.by_invariant()}")
        print(f"  bug detected: {result.detected}")
        if not result.detected:
            raise SystemExit("chaos self-test FAILED: checker missed the bug")
        return
    if not 0.0 <= args.intensity:
        raise SystemExit("python -m repro chaos: --intensity cannot be negative")
    if not 0.0 <= args.storage <= 1.0:
        raise SystemExit(
            "python -m repro chaos: --storage must be in [0, 1]"
        )
    knobs = (
        ChaosKnobs(storage_fault_probability=args.storage)
        if args.storage > 0.0
        else None
    )
    report = run_chaos(
        num_shards=args.shards,
        seed=args.seed,
        intensity=args.intensity,
        queries=args.queries,
        knobs=knobs,
    )
    print(
        f"chaos: {report.num_shards} shard(s), seed {report.seed}, "
        f"intensity {report.intensity:.2f}"
    )
    print(
        f"  faults: {report.faults.get('partition', 0)} partition(s), "
        f"{report.faults.get('crash', 0)} crash(es) "
        f"({report.faults.get('wipe', 0)} wiped), "
        f"{report.faults.get('skew', 0)} clock skew(s), "
        f"{report.faults.get('storage', 0)} storage fault(s)"
    )
    print(
        f"  workload: {report.status_ops} status checks "
        f"({report.availability:.1%} answered), "
        f"{report.revokes_acked}/{report.revokes_attempted} "
        f"revocations acknowledged"
    )
    print(f"  read repairs: {report.read_repairs}, "
          f"suspicions: {report.suspicions}, "
          f"records lost to wipes: {report.records_lost}")
    print(f"  state digest: {report.digest[:16]}")
    if report.check.ok:
        print("  consistency: OK — no invariant violations")
    else:
        print(f"  consistency: {report.check.by_invariant()}")
        for violation in report.check.violations:
            print(f"    [{violation.invariant}] serial={violation.serial}: "
                  f"{violation.detail}")
        raise SystemExit(1)


def _demo_resilience(args: argparse.Namespace) -> None:
    from repro.chaos import POLICIES, REFERENCE_DEADLINE, run_resilient_chaos

    if args.intensity < 0.0:
        raise SystemExit(
            "python -m repro resilience: --intensity cannot be negative"
        )
    if args.policy not in POLICIES:
        raise SystemExit(
            f"python -m repro resilience: --policy must be one of {POLICIES}"
        )
    report = run_resilient_chaos(
        num_shards=args.shards,
        seed=args.seed,
        intensity=args.intensity,
        policy=args.policy,
        queries=args.queries,
    )
    print(
        f"resilience: policy '{report.policy}', {report.num_shards} shard(s), "
        f"seed {report.seed}, intensity {report.intensity:.2f}"
    )
    print(
        f"  faults: {report.faults.get('partition', 0)} partition(s), "
        f"{report.faults.get('crash', 0)} crash(es) "
        f"({report.faults.get('wipe', 0)} wiped)"
    )
    print(
        f"  workload: {report.status_ops} status checks — "
        f"{report.availability:.1%} answered, "
        f"{report.deadline_rate:.1%} within the "
        f"{REFERENCE_DEADLINE:g} s deadline"
    )
    print(
        f"  degraded answers: {report.degraded_answers} "
        f"({report.stale_degraded} conservatively stale), "
        f"retries: {report.retries}, breaker opens: {report.breaker_opens}"
    )
    if report.hints_queued:
        drain = (
            f"{report.hint_drain_time:.3f} s after heal"
            if report.hint_drain_time is not None
            else "not drained"
        )
        print(
            f"  hinted handoff: {report.hints_queued} queued, "
            f"{report.hints_replayed} replayed, "
            f"{report.hints_dropped} dropped; drained {drain}"
        )
    if report.sweep is not None:
        print(
            f"  anti-entropy: {report.sweep.serials_scanned} serials scanned, "
            f"{report.sweep.records_pushed} records re-replicated"
        )
    if report.check.ok:
        print("  consistency: OK — no invariant violations, no fail-open")
    else:
        print(f"  consistency: {report.check.by_invariant()}")
        for violation in report.check.violations:
            print(f"    [{violation.invariant}] serial={violation.serial}: "
                  f"{violation.detail}")
        raise SystemExit(1)


def _demo_obs(args: argparse.Namespace) -> None:
    import hashlib

    from repro.obs import metrics_tables, slowest_spans_table, stage_breakdown
    from repro.obs.demo import run_traced_workload

    for name in ("shards", "queries"):
        if getattr(args, name) < 1:
            raise SystemExit(f"python -m repro obs: --{name} must be at least 1")
    report = run_traced_workload(
        num_shards=args.shards,
        seed=args.seed,
        queries=args.queries,
        revocations=args.revocations,
        kill_shard=args.kill_shard,
    )
    print(
        f"obs: {report.num_shards} shard(s), seed {report.seed}, "
        f"{report.queries} status checks, "
        f"{report.revocations_attempted} revocations"
    )
    print(
        f"  answered: {report.availability:.1%}, revocations acknowledged: "
        f"{report.revocations_acked}/{report.revocations_attempted}"
    )
    spans = report.obs.spans
    print(stage_breakdown(spans, title="per-stage latency (sim time)").render())
    print(slowest_spans_table(spans, limit=args.slowest).render())
    for table in metrics_tables(report.obs.metrics):
        print(table.render())
    jsonl = report.obs.export_spans_jsonl()
    digest = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()
    print(
        f"\nspan export: {len(spans)} spans, sha256 {digest[:16]} "
        "(same seed reproduces these bytes exactly)"
    )
    if args.jsonl is not None:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(jsonl)
        print(f"  spans written to {args.jsonl}")
    if args.prometheus is not None:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(report.obs.export_prometheus())
        print(f"  metrics written to {args.prometheus}")
    check = report.check
    if check.ok:
        print(
            f"consistency: OK — {check.spans_checked} spans cross-validated "
            "against the client-visible history"
        )
    else:
        print(f"consistency: {check.by_invariant()}")
        for violation in check.violations:
            print(f"  [{violation.invariant}] serial={violation.serial}: "
                  f"{violation.detail}")
        raise SystemExit(1)


_DEMOS = {
    "quickstart": (_demo_quickstart, "claim/label/revoke/validate lifecycle"),
    "scaling": (_demo_scaling, "section 4.4 Bloom filter scaling table"),
    "adoption": (_demo_adoption, "TET tipping points, with and without first movers"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IRS reproduction demos (full examples live in examples/)",
    )
    subparsers = parser.add_subparsers(dest="demo", required=True, metavar="demo")
    for name, (_, description) in sorted(_DEMOS.items()):
        subparsers.add_parser(name, help=description)
    cluster_parser = subparsers.add_parser(
        "cluster",
        help="sharded, replicated ledger cluster under simulated load",
    )
    cluster_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    cluster_parser.add_argument(
        "--replication", type=int, default=3,
        help="replicas per record, capped at the shard count (default 3)",
    )
    cluster_parser.add_argument(
        "--queries", type=int, default=400,
        help="status checks to drive through the frontend (default 400)",
    )
    cluster_parser.add_argument(
        "--kill-shard", action="store_true",
        help="crash one replica mid-run to exercise quorum failover",
    )
    chaos_parser = subparsers.add_parser(
        "chaos",
        help="deterministic fault injection + consistency check on the cluster",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed; identical seeds replay byte-identically (default 0)",
    )
    chaos_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    chaos_parser.add_argument(
        "--intensity", type=float, default=0.5,
        help="fault intensity in [0, 1]; 0 disables all faults (default 0.5)",
    )
    chaos_parser.add_argument(
        "--queries", type=int, default=400,
        help="status checks driven through the fault windows (default 400)",
    )
    chaos_parser.add_argument(
        "--selftest", action="store_true",
        help="seed a deliberate replication bug and prove the checker sees it",
    )
    chaos_parser.add_argument(
        "--storage", type=float, default=0.0,
        help="per-crash probability of restarting against a damaged disk "
        "(torn WAL frame, corrupted segment, or corrupted snapshot; "
        "default 0)",
    )
    recover_parser = subparsers.add_parser(
        "recover",
        help="storage-fault chaos: crash-recovery with damaged disks, "
        "gated on the durability invariants",
    )
    recover_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed; identical seeds replay byte-identically (default 0)",
    )
    recover_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    recover_parser.add_argument(
        "--intensity", type=float, default=0.7,
        help="fault intensity in [0, 1] (default 0.7)",
    )
    recover_parser.add_argument(
        "--storage", type=float, default=1.0,
        help="per-crash probability of a damaged disk (default 1.0)",
    )
    recover_parser.add_argument(
        "--wipes", type=float, default=0.3,
        help="per-crash probability of losing the disk outright (default 0.3)",
    )
    recover_parser.add_argument(
        "--selftest", action="store_true",
        help="sabotage the recovery path twice and prove the durability "
        "invariants trip",
    )
    resilience_parser = subparsers.add_parser(
        "resilience",
        help="chaos run under a resilience policy (deadlines, breakers, "
        "degraded reads, hinted handoff)",
    )
    resilience_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed; identical seeds replay byte-identically (default 0)",
    )
    resilience_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    resilience_parser.add_argument(
        "--intensity", type=float, default=0.6,
        help="fault intensity in [0, 1]; 0 disables all faults (default 0.6)",
    )
    resilience_parser.add_argument(
        "--policy", default="full", metavar="POLICY",
        help="resilience tier: none | retry | full (default full)",
    )
    resilience_parser.add_argument(
        "--queries", type=int, default=400,
        help="status checks driven through the fault windows (default 400)",
    )
    obs_parser = subparsers.add_parser(
        "obs",
        help="traced cluster workload: per-stage latency breakdown, "
        "metrics tables, deterministic span export",
    )
    obs_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed; identical seeds export byte-identical spans "
        "(default 0)",
    )
    obs_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    obs_parser.add_argument(
        "--queries", type=int, default=400,
        help="status checks to drive through the frontend (default 400)",
    )
    obs_parser.add_argument(
        "--revocations", type=int, default=12,
        help="owner revocations interleaved with the reads (default 12)",
    )
    obs_parser.add_argument(
        "--slowest", type=int, default=10,
        help="rows in the slowest-span table (default 10)",
    )
    obs_parser.add_argument(
        "--kill-shard", action="store_true",
        help="crash one replica mid-run so the trace shows failovers",
    )
    obs_parser.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="write the JSON-lines span dump to PATH",
    )
    obs_parser.add_argument(
        "--prometheus", metavar="PATH", default=None,
        help="write the Prometheus-style metrics exposition to PATH",
    )
    lint_parser = subparsers.add_parser(
        "lint",
        help="AST-based determinism & contract linter (the CI gate)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint_parser)
    perf_parser = subparsers.add_parser(
        "perf",
        help="hot-path microbenchmarks: measure, report, gate (BENCH_hotpaths.json)",
    )
    from repro.perf.cli import add_perf_arguments

    add_perf_arguments(perf_parser)
    from repro.service.cli import add_loadgen_arguments, add_serve_arguments

    serve_parser = subparsers.add_parser(
        "serve",
        help="asyncio HTTP/JSON API in front of a live cluster (docs/api.md)",
    )
    add_serve_arguments(serve_parser)
    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="seeded open-loop load against the service; gates on invariants",
    )
    add_loadgen_arguments(loadgen_parser)
    args = parser.parse_args(argv)
    if args.demo == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    if args.demo == "perf":
        from repro.perf.cli import run_perf

        return run_perf(args)
    if args.demo == "serve":
        from repro.service.cli import run_serve

        return run_serve(args)
    if args.demo == "loadgen":
        from repro.service.cli import run_loadgen_cli

        return run_loadgen_cli(args)
    if args.demo == "cluster":
        _demo_cluster(args)
    elif args.demo == "chaos":
        _demo_chaos(args)
    elif args.demo == "recover":
        _demo_recover(args)
    elif args.demo == "resilience":
        _demo_resilience(args)
    elif args.demo == "obs":
        _demo_obs(args)
    else:
        _DEMOS[args.demo][0]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
