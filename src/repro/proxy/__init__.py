"""IRS proxies: viewer privacy (section 4.2) + load shedding (section 4.4).

Browsers in the bootstrap phase never query ledgers directly.  They ask
an :class:`~repro.proxy.proxy.IrsProxy`, which

1. aggregates the requests of many users (the ledger sees the proxy,
   not the viewer -- the Trusted-Recursive-Resolver / Oblivious-DNS /
   Private-Relay pattern the paper cites);
2. consults the OR of all ledgers' Bloom filters -- a miss proves
   "definitely not revoked" with zero ledger traffic;
3. caches recent ledger answers with a TTL (bounded staleness is
   explicitly acceptable: Nongoal #4, no instantaneous revocation).
"""

from repro.proxy.cache import TtlLruCache, CacheStats
from repro.proxy.filterset import ProxyFilterSet, FilterSubscription
from repro.proxy.proxy import IrsProxy, ProxyAnswer, ProxyStats
from repro.proxy.anonymity import (
    LedgerObservation,
    ObservationLog,
    anonymity_report,
    AnonymityReport,
)

__all__ = [
    "TtlLruCache",
    "CacheStats",
    "ProxyFilterSet",
    "FilterSubscription",
    "IrsProxy",
    "ProxyAnswer",
    "ProxyStats",
    "LedgerObservation",
    "ObservationLog",
    "anonymity_report",
    "AnonymityReport",
]
