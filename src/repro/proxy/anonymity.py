"""Viewer-privacy measurement (section 4.2 / Goal #2, experiment E8).

What can a ledger operator learn about who views which photo?  The
:class:`ObservationLog` records exactly the requests that reach ledgers
-- requester identity, identifier, time.  With browsers querying
directly, the requester *is* the viewer; behind a proxy, the requester
is the proxy, and the viewer hides in the proxy's user population.

:func:`anonymity_report` quantifies this:

* **anonymity set size** per ledger-visible request: how many users
  could have been the actual requester (1 = fully identified);
* **attribution rate**: fraction of requests the ledger can attribute
  to a unique viewer;
* **profile leakage**: average fraction of each user's labeled-photo
  views that appear in ledger logs attributed to that user.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "LedgerObservation",
    "ObservationLog",
    "AnonymityReport",
    "anonymity_report",
]


@dataclass(frozen=True)
class LedgerObservation:
    """One request as seen by a ledger operator."""

    requester: str
    ledger_id: str
    identifier: str
    time: float


class ObservationLog:
    """Accumulates ledger-side request observations."""

    def __init__(self):
        self.observations: List[LedgerObservation] = []

    def record(
        self, requester: str, ledger_id: str, identifier: str, time: float
    ) -> None:
        self.observations.append(
            LedgerObservation(
                requester=requester,
                ledger_id=ledger_id,
                identifier=identifier,
                time=time,
            )
        )

    def __len__(self) -> int:
        return len(self.observations)

    def requesters(self) -> set:
        return {obs.requester for obs in self.observations}


@dataclass
class AnonymityReport:
    """Privacy metrics over one experiment run."""

    total_viewer_checks: int
    ledger_visible_requests: int
    mean_anonymity_set: float
    min_anonymity_set: int
    attribution_rate: float
    profile_leakage: float

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"checks={self.total_viewer_checks} "
            f"ledger_visible={self.ledger_visible_requests} "
            f"anonymity_set(mean/min)={self.mean_anonymity_set:.1f}/"
            f"{self.min_anonymity_set} "
            f"attribution={self.attribution_rate:.3f} "
            f"leakage={self.profile_leakage:.3f}"
        )


def anonymity_report(
    log: ObservationLog,
    requester_populations: Dict[str, List[str]],
    viewer_checks: Dict[str, int],
) -> AnonymityReport:
    """Compute privacy metrics from a ledger-side observation log.

    Parameters
    ----------
    log:
        What ledgers observed.
    requester_populations:
        For each requester identity that can appear in the log, the
        list of viewers hiding behind it.  A direct-connecting viewer
        maps to ``[itself]``; a proxy maps to its whole user base.
    viewer_checks:
        Per-viewer count of labeled-photo checks issued (the
        denominator for profile leakage).
    """
    if not viewer_checks:
        raise ValueError("viewer_checks must not be empty")
    total_checks = sum(viewer_checks.values())
    set_sizes: List[int] = []
    attributed = 0
    leaked_per_viewer: Dict[str, int] = defaultdict(int)
    for obs in log.observations:
        population = requester_populations.get(obs.requester, [obs.requester])
        size = max(1, len(population))
        set_sizes.append(size)
        if size == 1:
            attributed += 1
            leaked_per_viewer[population[0]] += 1
    leakage_values = []
    for viewer, checks in viewer_checks.items():
        if checks == 0:
            continue
        leakage_values.append(min(1.0, leaked_per_viewer.get(viewer, 0) / checks))
    return AnonymityReport(
        total_viewer_checks=total_checks,
        ledger_visible_requests=len(log.observations),
        mean_anonymity_set=float(np.mean(set_sizes)) if set_sizes else 0.0,
        min_anonymity_set=int(min(set_sizes)) if set_sizes else 0,
        attribution_rate=(attributed / len(log.observations)) if log.observations else 0.0,
        profile_leakage=float(np.mean(leakage_values)) if leakage_values else 0.0,
    )
