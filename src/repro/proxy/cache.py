"""TTL + LRU cache for revocation lookups.

"Proxies ... can ameliorate this issue by caching lookups (which would
also further reduce viewing latency)" -- section 4.4.

Entries expire after a TTL (bounded revocation staleness, per
Nongoal #4) and are evicted least-recently-used beyond capacity.  The
cache takes a clock so it works both in-process and in the simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

__all__ = ["TtlLruCache", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TtlLruCache:
    """Bounded map with per-entry expiry.

    Parameters
    ----------
    capacity:
        Maximum live entries; least-recently-used beyond that.
    ttl:
        Seconds an entry stays valid.  ``None`` disables expiry.
    clock:
        Zero-arg callable returning the current time.  Required when
        ``ttl`` is set — a frozen default clock would silently make
        every entry immortal, unbounding revocation staleness.
    """

    def __init__(
        self,
        capacity: int,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        if ttl is not None and clock is None:
            raise ValueError(
                "a ttl without a clock can never expire anything; "
                "pass clock= (e.g. the simulator clock or time.monotonic)"
            )
        self.capacity = int(capacity)
        self.ttl = ttl
        self._clock = clock or (lambda: 0.0)
        self._entries: OrderedDict[Hashable, tuple[float, Any]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value, or None on miss/expiry."""
        now = self._clock()
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_at, value = entry
        if self.ttl is not None and now - stored_at > self.ttl:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        now = self._clock()
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = (now, value)
        self.stats.inserts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TtlLruCache(size={len(self)}/{self.capacity}, ttl={self.ttl}, "
            f"hit_rate={self.stats.hit_rate:.3f})"
        )
