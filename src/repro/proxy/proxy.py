"""The IRS proxy: the bootstrap phase's aggregation point.

A status query flows::

    browser -> proxy:
        1. Bloom filter (OR of all ledgers): miss => "not revoked",
           zero ledger traffic                       [filter short-circuit]
        2. TTL cache of recent ledger answers        [cache hit]
        3. the hosting ledger                        [ledger query]

The proxy hides viewer identity from ledgers (section 4.2): ledger-side
request logs record the proxy, never the user.  The
:class:`~repro.proxy.anonymity.ObservationLog` captures exactly what a
ledger sees for the E8 privacy experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.identifiers import PhotoIdentifier
from repro.ledger.proofs import StatusProof
from repro.ledger.registry import LedgerRegistry
from repro.proxy.anonymity import ObservationLog
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet

__all__ = ["IrsProxy", "ProxyAnswer", "ProxyStats"]


@dataclass(frozen=True)
class ProxyAnswer:
    """The proxy's answer to a status query.

    ``source`` records how it was produced:

    * ``'filter'`` -- Bloom miss, definitely not revoked, no proof;
    * ``'cache'`` -- recent ledger proof replayed from cache;
    * ``'ledger'`` -- fresh signed proof from the hosting ledger.
    """

    identifier: str
    revoked: bool
    source: str
    checked_at: float
    proof: Optional[StatusProof] = None


@dataclass
class ProxyStats:
    queries: int = 0
    filter_short_circuits: int = 0
    cache_hits: int = 0
    ledger_queries: int = 0

    @property
    def ledger_query_fraction(self) -> float:
        return self.ledger_queries / self.queries if self.queries else 0.0

    @property
    def load_reduction_factor(self) -> float:
        """How many times fewer ledger queries than browser queries."""
        if self.ledger_queries == 0:
            return float("inf") if self.queries else 1.0
        return self.queries / self.ledger_queries


class IrsProxy:
    """An anonymizing, caching, filter-fronted revocation proxy.

    Parameters
    ----------
    name:
        Proxy identity as it appears in ledger request logs.
    registry:
        Ledger directory used to route filter hits.
    filterset:
        Merged Bloom filters; optional (no filter => every query goes
        to cache/ledger, the "naive" configuration of section 4.2).
    cache:
        TTL-LRU of ledger answers; optional.
    clock:
        Time source for answer freshness stamps.
    observation_log:
        When provided, every *ledger-bound* request is recorded there
        with this proxy's name as the requester -- modelling what
        ledger operators can observe.
    """

    def __init__(
        self,
        name: str,
        registry: LedgerRegistry,
        filterset: Optional[ProxyFilterSet] = None,
        cache: Optional[TtlLruCache] = None,
        clock: Optional[Callable[[], float]] = None,
        observation_log: Optional[ObservationLog] = None,
    ):
        self.name = name
        self._registry = registry
        self.filterset = filterset
        self.cache = cache
        self._clock = clock or (lambda: 0.0)
        self._observations = observation_log
        self.stats = ProxyStats()

    def status(self, identifier: PhotoIdentifier) -> ProxyAnswer:
        """Answer a browser's revocation check."""
        self.stats.queries += 1
        now = self._clock()
        key = identifier.to_string()

        if self.filterset is not None and not self.filterset.might_be_revoked(
            identifier.to_compact()
        ):
            self.stats.filter_short_circuits += 1
            return ProxyAnswer(
                identifier=key, revoked=False, source="filter", checked_at=now
            )

        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return ProxyAnswer(
                    identifier=key,
                    revoked=cached.revoked,
                    source="cache",
                    checked_at=cached.checked_at,
                    proof=cached,
                )

        proof = self._query_ledger(identifier)
        if self.cache is not None:
            self.cache.put(key, proof)
        return ProxyAnswer(
            identifier=key,
            revoked=proof.revoked,
            source="ledger",
            checked_at=proof.checked_at,
            proof=proof,
        )

    def _query_ledger(self, identifier: PhotoIdentifier) -> StatusProof:
        self.stats.ledger_queries += 1
        if self._observations is not None:
            self._observations.record(
                requester=self.name,
                ledger_id=identifier.ledger_id,
                identifier=identifier.to_string(),
                time=self._clock(),
            )
        return self._registry.status(identifier)

    def refresh_filters(self) -> int:
        """Pull filter updates; returns bytes transferred."""
        if self.filterset is None:
            return 0
        return self.filterset.refresh()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IrsProxy({self.name!r}, stats={self.stats})"
