"""The IRS proxy: the bootstrap phase's aggregation point.

A status query flows::

    browser -> proxy:
        1. Bloom filter (OR of all ledgers): miss => "not revoked",
           zero ledger traffic                       [filter short-circuit]
        2. TTL cache of recent ledger answers        [cache hit]
        3. the hosting ledger                        [ledger query]

The proxy hides viewer identity from ledgers (section 4.2): ledger-side
request logs record the proxy, never the user.  The
:class:`~repro.proxy.anonymity.ObservationLog` captures exactly what a
ledger sees for the E8 privacy experiment.

The proxy also carries the client half of the resilience layer: ledger
queries retry on :class:`LedgerUnavailableError` under a
:class:`~repro.resilience.BackoffPolicy`, a per-ledger circuit breaker
stops hammering a ledger that keeps timing out, and — when
``degraded_reads`` is enabled — an unreachable ledger is answered from
the Bloom verdict with ``degraded=True`` instead of an exception.
Degradation is fail-closed: reaching the ledger-query stage at all
means the filter said "might be revoked", so the degraded answer
reports *revoked*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import LedgerUnavailableError
from repro.core.identifiers import PhotoIdentifier
from repro.ledger.proofs import StatusProof
from repro.ledger.registry import LedgerRegistry
from repro.proxy.anonymity import ObservationLog
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.resilience import BackoffPolicy, CircuitBreaker

__all__ = ["IrsProxy", "ProxyAnswer", "ProxyStats"]


@dataclass(frozen=True)
class ProxyAnswer:
    """The proxy's answer to a status query.

    ``source`` records how it was produced:

    * ``'filter'`` -- Bloom miss, definitely not revoked, no proof;
    * ``'cache'`` -- recent ledger proof replayed from cache;
    * ``'ledger'`` -- fresh signed proof from the hosting ledger;
    * ``'degraded'`` -- ledger unreachable, answered from the filter
      verdict (fail-closed: reported revoked), no proof.
    """

    identifier: str
    revoked: bool
    source: str
    checked_at: float
    proof: Optional[StatusProof] = None
    degraded: bool = False


@dataclass
class ProxyStats:
    queries: int = 0
    filter_short_circuits: int = 0
    cache_hits: int = 0
    ledger_queries: int = 0
    retries: int = 0
    degraded_answers: int = 0
    breaker_refusals: int = 0

    @property
    def ledger_query_fraction(self) -> float:
        return self.ledger_queries / self.queries if self.queries else 0.0

    @property
    def load_reduction_factor(self) -> float:
        """How many times fewer ledger queries than browser queries."""
        if self.ledger_queries == 0:
            return float("inf") if self.queries else 1.0
        return self.queries / self.ledger_queries


class IrsProxy:
    """An anonymizing, caching, filter-fronted revocation proxy.

    Parameters
    ----------
    name:
        Proxy identity as it appears in ledger request logs.
    registry:
        Ledger directory used to route filter hits.
    filterset:
        Merged Bloom filters; optional (no filter => every query goes
        to cache/ledger, the "naive" configuration of section 4.2).
    cache:
        TTL-LRU of ledger answers; optional.
    clock:
        Time source for answer freshness stamps.
    observation_log:
        When provided, every *ledger-bound* request is recorded there
        with this proxy's name as the requester -- modelling what
        ledger operators can observe.
    max_retries / backoff / rng / sleep:
        Ledger-query retry policy.  ``sleep(seconds)`` is how a delay
        is actually spent (a no-op by default, so synchronous tests pay
        nothing); ``rng`` jitters the schedule.
    breaker_threshold:
        Consecutive ledger failures that open the proxy's breaker; None
        (default) disables it.
    degraded_reads:
        When True an unreachable ledger produces a fail-closed degraded
        answer instead of raising :class:`LedgerUnavailableError`.
    obs:
        Optional :class:`~repro.obs.Observability`.  Opens a
        ``proxy.status`` span per query (with a ``proxy.ledger_query``
        child around the actual ledger round trip) and mirrors the
        stats counters into ``proxy_*`` metrics.  None (default)
        disables all instrumentation.
    """

    def __init__(
        self,
        name: str,
        registry: LedgerRegistry,
        filterset: Optional[ProxyFilterSet] = None,
        cache: Optional[TtlLruCache] = None,
        clock: Optional[Callable[[], float]] = None,
        observation_log: Optional[ObservationLog] = None,
        max_retries: int = 0,
        backoff: Optional[BackoffPolicy] = None,
        rng=None,
        sleep: Optional[Callable[[float], None]] = None,
        breaker_threshold: Optional[int] = None,
        breaker_reset_timeout: float = 5.0,
        degraded_reads: bool = False,
        obs=None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.name = name
        self._registry = registry
        self.filterset = filterset
        self.cache = cache
        self._clock = clock or (lambda: 0.0)
        self._observations = observation_log
        self.max_retries = int(max_retries)
        self._backoff = backoff or BackoffPolicy()
        self._rng = rng
        self._sleep = sleep or (lambda seconds: None)
        self.breaker: Optional[CircuitBreaker] = None
        if breaker_threshold is not None:
            self.breaker = CircuitBreaker(
                self._clock,
                failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset_timeout,
            )
        self.degraded_reads = degraded_reads
        self.obs = obs
        self.stats = ProxyStats()

    def status(self, identifier: PhotoIdentifier) -> ProxyAnswer:
        """Answer a browser's revocation check."""
        if self.obs is None:
            return self._status_impl(identifier)
        self.obs.counter("proxy_queries_total").inc()
        with self.obs.span(
            "proxy.status", serial=identifier.serial
        ) as span:
            answer = self._status_impl(identifier)
            span.set_tag(
                source=answer.source,
                revoked=answer.revoked,
                degraded=answer.degraded,
            )
            self.obs.counter(
                "proxy_answers_total", source=answer.source
            ).inc()
            self.obs.histogram("proxy_status_latency_seconds").observe(
                self.obs.now() - span.started_at
            )
            return answer

    def _status_impl(self, identifier: PhotoIdentifier) -> ProxyAnswer:
        self.stats.queries += 1
        now = self._clock()
        key = identifier.to_string()

        if self.filterset is not None and not self.filterset.might_be_revoked(
            identifier.to_compact()
        ):
            self.stats.filter_short_circuits += 1
            if self.obs is not None:
                self.obs.counter("proxy_filter_short_circuits_total").inc()
            return ProxyAnswer(
                identifier=key, revoked=False, source="filter", checked_at=now
            )

        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                if self.obs is not None:
                    self.obs.counter("proxy_cache_hits_total").inc()
                return ProxyAnswer(
                    identifier=key,
                    revoked=cached.revoked,
                    source="cache",
                    checked_at=cached.checked_at,
                    proof=cached,
                )

        try:
            proof = self._query_with_retries(identifier)
        except LedgerUnavailableError:
            if not self.degraded_reads:
                raise
            # Fail-closed degradation: this query got past the filter,
            # so the record *might* be revoked — report it revoked
            # rather than letting an outage imply "valid".
            self.stats.degraded_answers += 1
            if self.obs is not None:
                self.obs.counter("proxy_degraded_answers_total").inc()
            return ProxyAnswer(
                identifier=key,
                revoked=True,
                source="degraded",
                checked_at=now,
                degraded=True,
            )
        if self.cache is not None:
            self.cache.put(key, proof)
        return ProxyAnswer(
            identifier=key,
            revoked=proof.revoked,
            source="ledger",
            checked_at=proof.checked_at,
            proof=proof,
        )

    def _query_with_retries(self, identifier: PhotoIdentifier) -> StatusProof:
        """One ledger query under the breaker and retry policy."""
        if self.breaker is not None and not self.breaker.allow():
            self.stats.breaker_refusals += 1
            if self.obs is not None:
                self.obs.counter("proxy_breaker_refusals_total").inc()
            raise LedgerUnavailableError(
                f"ledger {identifier.ledger_id!r}: circuit breaker open"
            )
        attempt = 0
        while True:
            try:
                proof = self._query_ledger(identifier)
            except LedgerUnavailableError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt >= self.max_retries:
                    raise
                self._sleep(self._backoff.delay(attempt, self._rng))
                attempt += 1
                self.stats.retries += 1
                if self.obs is not None:
                    self.obs.counter("proxy_retries_total").inc()
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return proof

    def _query_ledger(self, identifier: PhotoIdentifier) -> StatusProof:
        self.stats.ledger_queries += 1
        if self._observations is not None:
            self._observations.record(
                requester=self.name,
                ledger_id=identifier.ledger_id,
                identifier=identifier.to_string(),
                time=self._clock(),
            )
        if self.obs is None:
            return self._registry.status(identifier)
        self.obs.counter("proxy_ledger_queries_total").inc()
        # Context-manager span: an unreachable ledger raises through
        # the block, which closes the span tagged status='error'.
        with self.obs.span("proxy.ledger_query", ledger=identifier.ledger_id):
            return self._registry.status(identifier)

    def refresh_filters(self) -> int:
        """Pull filter updates; returns bytes transferred."""
        if self.filterset is None:
            return 0
        return self.filterset.refresh()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IrsProxy({self.name!r}, stats={self.stats})"
