"""The proxy's merged view of all ledger Bloom filters.

Section 4.4: proxies "download and then take the OR of all ledger Bloom
filters", refreshed "perhaps hourly" with delta encoding.

:class:`ProxyFilterSet` subscribes to each ledger's
:class:`~repro.ledger.export.FilterExporter`, tracks per-ledger
versions, pulls deltas on refresh, and maintains the OR-merge.  It
accounts every byte transferred, which is the E6 experiment's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.filters.bloom import BloomFilter
from repro.filters.delta import apply_delta
from repro.ledger.export import FilterExporter

__all__ = ["ProxyFilterSet", "FilterSubscription"]


@dataclass
class FilterSubscription:
    """Per-ledger subscription state."""

    exporter: FilterExporter
    local_version: int = 0
    local_filter: Optional[BloomFilter] = None
    bytes_received: int = 0
    full_transfers: int = 0
    delta_transfers: int = 0


class ProxyFilterSet:
    """OR of subscribed ledger filters, kept fresh by deltas."""

    def __init__(self):
        self._subscriptions: Dict[str, FilterSubscription] = {}
        self._merged: Optional[BloomFilter] = None

    @property
    def ledger_ids(self) -> List[str]:
        return sorted(self._subscriptions)

    @property
    def merged(self) -> Optional[BloomFilter]:
        return self._merged

    @property
    def total_bytes_received(self) -> int:
        return sum(s.bytes_received for s in self._subscriptions.values())

    def subscribe(self, exporter: FilterExporter) -> FilterSubscription:
        ledger_id = exporter.ledger.ledger_id
        if ledger_id in self._subscriptions:
            raise ValueError(f"already subscribed to ledger {ledger_id!r}")
        sub = FilterSubscription(exporter=exporter)
        self._subscriptions[ledger_id] = sub
        return sub

    def refresh(self) -> int:
        """Pull updates from every subscribed exporter.

        Each exporter must have published at least one snapshot.
        First contact transfers the full filter; subsequent refreshes
        transfer deltas (or nothing when already current).  Returns the
        total bytes transferred by this refresh.
        """
        transferred = 0
        for ledger_id in self.ledger_ids:
            sub = self._subscriptions[ledger_id]
            current = sub.exporter.current
            if current is None:
                raise RuntimeError(
                    f"ledger {ledger_id!r} has not published a filter yet"
                )
            if sub.local_filter is None:
                sub.local_filter = current.filter.copy()
                sub.local_version = current.version
                size = sub.local_filter.nbytes
                sub.bytes_received += size
                sub.full_transfers += 1
                transferred += size
                continue
            delta = sub.exporter.latest_delta_for(sub.local_version)
            if delta is None:
                continue
            sub.local_filter = apply_delta(sub.local_filter, delta, sub.local_version)
            sub.local_version = delta.to_version
            sub.bytes_received += delta.nbytes
            if delta.kind == "sparse":
                sub.delta_transfers += 1
            else:
                sub.full_transfers += 1
            transferred += delta.nbytes
        self._rebuild_merge()
        return transferred

    def _rebuild_merge(self) -> None:
        filters = [
            s.local_filter
            for _, s in sorted(self._subscriptions.items())
            if s.local_filter is not None
        ]
        self._merged = BloomFilter.union(filters) if filters else None

    def might_be_revoked(self, compact_identifier: bytes) -> bool:
        """Filter verdict: False = definitely not revoked, skip the query.

        With no filter yet downloaded, everything "might be revoked"
        (fail to the safe side: query the ledger).
        """
        if self._merged is None:
            return True
        return compact_identifier in self._merged

    def might_be_revoked_many(
        self, compact_identifiers: Sequence[bytes]
    ) -> np.ndarray:
        """Filter verdicts for a batch of compact identifiers.

        Entry ``i`` equals ``self.might_be_revoked(compact_identifiers[i])``
        (the scalar method is the oracle); the batch rides the merged
        filter's vectorized :meth:`~repro.filters.bloom.BloomFilter.query_many`,
        which is what a frontend fanning a burst of status checks wants.
        """
        if self._merged is None:
            return np.ones(len(compact_identifiers), dtype=bool)
        return self._merged.query_many(compact_identifiers)
