"""Two-hop (oblivious) proxying.

Section 4.2 cites Oblivious DNS: a single proxy hides viewers from
*ledgers*, but the proxy operator itself still sees (viewer, photo)
pairs.  The oblivious construction splits that knowledge across two
non-colluding hops:

* the **ingress** hop sees who is asking but only an encrypted query;
* the **egress** hop sees the query (it must, to consult the filter and
  the ledger) but only the ingress as its peer.

Encryption is modelled with an authenticated secret-box between the
client and the egress (keys pre-shared out of band, as Oblivious
DNS/HTTP do via HPKE).  The privacy measurement then covers *all*
parties: ledger, egress, ingress.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import hmac_sha256, sha256_bytes
from repro.ledger.registry import LedgerRegistry
from repro.proxy.anonymity import ObservationLog
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import ProxyAnswer

__all__ = ["SecretBox", "IngressHop", "EgressHop", "ObliviousClient"]


class SecretBox:
    """Toy authenticated encryption (XOR stream + HMAC tag).

    Stands in for HPKE; the simulation needs the *dataflow* (ingress
    cannot read queries) rather than production cryptography.
    """

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = key

    def _stream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            out += sha256_bytes(self._key + nonce + counter.to_bytes(4, "big"))
            counter += 1
        return bytes(out[:length])

    def seal(self, plaintext: bytes) -> bytes:
        nonce = secrets.token_bytes(12)
        body = bytes(
            p ^ s for p, s in zip(plaintext, self._stream(nonce, len(plaintext)))
        )
        tag = hmac_sha256(self._key, nonce + body)[:16]
        return nonce + tag + body

    def open(self, sealed: bytes) -> bytes:
        if len(sealed) < 28:
            raise ValueError("ciphertext too short")
        nonce, tag, body = sealed[:12], sealed[12:28], sealed[28:]
        if hmac_sha256(self._key, nonce + body)[:16] != tag:
            raise ValueError("authentication failed")
        return bytes(
            c ^ s for c, s in zip(body, self._stream(nonce, len(body)))
        )


@dataclass
class _IngressRecord:
    """What the ingress operator's logs contain."""

    user: str
    blob_digest: bytes  # it can hash what it forwards, nothing more


class IngressHop:
    """Hop 1: knows the user, forwards opaque blobs to the egress."""

    def __init__(self, name: str, egress: "EgressHop"):
        self.name = name
        self.egress = egress
        self.log: list[_IngressRecord] = []

    def forward(self, user: str, sealed_query: bytes) -> bytes:
        self.log.append(
            _IngressRecord(user=user, blob_digest=sha256_bytes(sealed_query))
        )
        # The egress sees only the ingress's name, never the user.
        return self.egress.handle(self.name, sealed_query)

    def observed_queries(self) -> list[bytes]:
        return [record.blob_digest for record in self.log]


class EgressHop:
    """Hop 2: decrypts queries, consults filter/ledger, answers sealed."""

    def __init__(
        self,
        name: str,
        registry: LedgerRegistry,
        box: SecretBox,
        filterset: Optional[ProxyFilterSet] = None,
        clock: Optional[Callable[[], float]] = None,
        observation_log: Optional[ObservationLog] = None,
    ):
        self.name = name
        self._registry = registry
        self._box = box
        self.filterset = filterset
        self._clock = clock or (lambda: 0.0)
        self._observations = observation_log
        # What the egress operator's logs contain: (peer, identifier).
        self.log: list[tuple[str, str]] = []

    def handle(self, peer: str, sealed_query: bytes) -> bytes:
        identifier = PhotoIdentifier.from_string(
            self._box.open(sealed_query).decode("utf-8")
        )
        self.log.append((peer, identifier.to_string()))
        if self.filterset is not None and not self.filterset.might_be_revoked(
            identifier.to_compact()
        ):
            answer = ProxyAnswer(
                identifier=identifier.to_string(),
                revoked=False,
                source="filter",
                checked_at=self._clock(),
            )
        else:
            if self._observations is not None:
                self._observations.record(
                    requester=self.name,
                    ledger_id=identifier.ledger_id,
                    identifier=identifier.to_string(),
                    time=self._clock(),
                )
            proof = self._registry.status(identifier)
            answer = ProxyAnswer(
                identifier=identifier.to_string(),
                revoked=proof.revoked,
                source="ledger",
                checked_at=proof.checked_at,
                proof=proof,
            )
        payload = f"{int(answer.revoked)}:{answer.source}".encode("utf-8")
        return self._box.seal(payload)


class ObliviousClient:
    """Browser-side: seals queries, routes them through the ingress."""

    def __init__(self, user: str, ingress: IngressHop, box: SecretBox):
        self.user = user
        self._ingress = ingress
        self._box = box

    def status(self, identifier: PhotoIdentifier) -> ProxyAnswer:
        sealed = self._box.seal(identifier.to_string().encode("utf-8"))
        sealed_answer = self._ingress.forward(self.user, sealed)
        revoked_flag, source = (
            self._box.open(sealed_answer).decode("utf-8").split(":", 1)
        )
        return ProxyAnswer(
            identifier=identifier.to_string(),
            revoked=bool(int(revoked_flag)),
            source=source,
            checked_at=0.0,
        )
