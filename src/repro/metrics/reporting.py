"""Plain-text tables for bench output.

Benches print the rows/series the paper reports; a small fixed-width
formatter keeps that output readable in CI logs without pulling in any
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table", "format_table", "format_row"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int]) -> str:
    return "  ".join(_fmt(c).rjust(w) for c, w in zip(cells, widths))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule.

    Ragged input is tolerated: short rows (or short headers) are padded
    with empty cells to the widest row, so a zero-row table or a row
    missing a trailing column renders instead of crashing the bench
    that is trying to report results.
    """
    ncols = max([len(headers)] + [len(row) for row in rows], default=0)
    if ncols == 0:
        return ""
    padded_headers = list(headers) + [""] * (ncols - len(headers))
    padded_rows = [list(row) + [""] * (ncols - len(row)) for row in rows]
    str_rows = [[_fmt(c) for c in row] for row in padded_rows]
    widths = [
        max([len(padded_headers[i])] + [len(r[i]) for r in str_rows])
        for i in range(ncols)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(padded_headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(format_row(row, widths) for row in padded_rows)
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulate rows, render once (bench convenience)."""

    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    title: str = ""

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        body = format_table(self.headers, self.rows)
        if self.title:
            return f"\n=== {self.title} ===\n{body}"
        return body

    def print(self) -> None:  # pragma: no cover - console IO
        print(self.render())

    def to_csv(self) -> str:
        """CSV form (RFC-4180-ish quoting) for downstream plotting."""

        def quote(cell: Any) -> str:
            text = _fmt(cell)
            if any(ch in text for ch in ',"\n'):
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(quote(h) for h in self.headers)]
        lines.extend(",".join(quote(c) for c in row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def slug(self) -> str:
        """Filesystem-safe name derived from the title."""
        import re

        base = self.title or "table"
        base = re.sub(r"[^A-Za-z0-9]+", "_", base).strip("_").lower()
        return base[:80] or "table"
