"""Summary statistics for experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as spstats

__all__ = ["Summary", "summarize", "percentile", "confidence_interval_mean"]


@dataclass(frozen=True)
class Summary:
    """Standard percentile summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Percentile summary; raises on empty input."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Single percentile (q in [0, 100])."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(arr, q))


def confidence_interval_mean(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = float(arr.mean())
    sem = float(spstats.sem(arr))
    if sem == 0.0:
        return (mean, mean)
    low, high = spstats.t.interval(confidence, df=arr.size - 1, loc=mean, scale=sem)
    return (float(low), float(high))
