"""Measurement and reporting helpers shared by tests and benches.

The stats half needs numpy/scipy; the reporting half is pure Python
and is imported by dependency-free paths (``repro.obs.export``, the
``repro lint`` CLI).  Stats symbols are therefore resolved lazily so
importing a reporting helper never drags scipy in.
"""

from repro.metrics.reporting import format_table, format_row, Table

_STATS_EXPORTS = frozenset(
    {"summarize", "percentile", "Summary", "confidence_interval_mean"}
)

__all__ = [
    "summarize",
    "percentile",
    "Summary",
    "confidence_interval_mean",
    "format_table",
    "format_row",
    "Table",
]


def __getattr__(name: str):
    if name in _STATS_EXPORTS:
        from repro.metrics import stats

        return getattr(stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
