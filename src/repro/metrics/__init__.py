"""Measurement and reporting helpers shared by tests and benches."""

from repro.metrics.stats import (
    summarize,
    percentile,
    Summary,
    confidence_interval_mean,
)
from repro.metrics.reporting import format_table, format_row, Table

__all__ = [
    "summarize",
    "percentile",
    "Summary",
    "confidence_interval_mean",
    "format_table",
    "format_row",
    "Table",
]
