"""The cluster frontend: a stateless batching router.

Clients (proxies, aggregators, the CLI demo) speak to one frontend,
which owns no record state at all — everything it needs to route is the
ring (a pure function) and the shard transport.  Any number of
frontends can run side by side; killing one loses only its in-flight
batches (and, with hinted handoff enabled, its undelivered hints —
which the anti-entropy sweep repairs).

The hot path is the section 4.4 status check, and three mechanisms keep
shard load sub-linear in client load:

* **Filter pre-check** — an optional proxy-style
  :class:`~repro.proxy.filterset.ProxyFilterSet`: a Bloom miss means
  *definitely not revoked* and the query never reaches a shard.
* **Per-shard batching** — concurrent lookups routed to the same shard
  coalesce into one ``status`` RPC (up to ``max_batch``, or whatever
  accumulated within ``batch_window`` of sim time), amortizing the
  per-request overhead exactly as the aggregator recheck path does.
* **Backpressure** — at most ``max_inflight`` batch RPCs are
  outstanding; further batches queue at the frontend instead of
  piling onto a saturated shard, which keeps the cluster in the
  well-behaved region of its latency curve during overload.

Reads default to hedged quorum reads (all R replicas asked, completion
at ``read_quorum``) so one dead replica costs nothing but a timeout
that the failure detector turns into suspicion; ``read_quorum=1`` gives
primary reads with explicit failover through surviving replicas.

**Resilience layer** (all knobs default *off*, preserving the PR-1
semantics exactly): failovers and retries are spaced by a seeded-jitter
:class:`~repro.resilience.BackoffPolicy` and bounded
(``max_failover_depth`` hops within an attempt, ``max_retries`` fresh
attempts); a ``request_deadline`` budget propagates into batched RPC
timeouts and arms a backstop timer so every query is *answered* within
the deadline — degraded if need be; per-shard circuit breakers
(``breaker_threshold``) stop paying timeouts to dead replicas; a token
bucket (``shed_rate``) refuses excess load before it queues.  When a
read cannot reach quorum in budget and ``degraded_reads`` is on, the
frontend answers from the (possibly stale) Bloom filter with
``degraded=True`` — and because every revocation the frontend acks is
also added to that filter, the degraded path never fails open on a
revocation this frontend acknowledged.  Writes that miss a replica
queue hints (``hinted_handoff``) which a timer replays when the
replica heals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ClaimError, LedgerUnavailableError, RevocationError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.signatures import KeyPair, PublicKey, Signature
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.ledger import Ledger
from repro.ledger.proofs import StatusProof
from repro.ledger.records import claim_digest
from repro.cluster.health import FailureDetector
from repro.cluster.replication import (
    HintQueue,
    QuorumExecutor,
    ShardTransport,
    StatusCollector,
    StatusOutcome,
    majority,
)
from repro.cluster.ring import HashRing
from repro.cluster.shard import content_serial
from repro.resilience import (
    BackoffPolicy,
    BreakerBoard,
    BreakerState,
    Deadline,
    TokenBucket,
)

__all__ = ["ClusterFrontend", "ClusterConfig", "ClusterAnswer", "FrontendStats"]


class ClusterError(Exception):
    """Raised on cluster-level coordination failures."""


@dataclass
class ClusterConfig:
    """Replication, batching and resilience knobs.

    ``write_quorum``/``read_quorum`` default to majorities of
    ``replication_factor``, which guarantees read-write overlap; set
    ``read_quorum=1`` for primary reads (cheapest, used by the
    scale-out bench) at the price of bounded staleness while a write's
    propagation is incomplete.

    The resilience knobs all default to the legacy PR-1 behavior:
    no deadline, no fresh retries, failover free to walk every untried
    replica (bound it with ``max_failover_depth``), breakers and
    shedding disabled, strict (non-degraded) answers, no hinted handoff.
    """

    replication_factor: int = 3
    write_quorum: Optional[int] = None
    read_quorum: Optional[int] = None
    hedged_reads: Optional[bool] = None  # default: quorum > 1
    max_batch: int = 32
    batch_window: float = 0.002
    max_inflight: int = 16
    # -- resilience: deadlines / retries ------------------------------------
    request_deadline: Optional[float] = None  # per-status budget (seconds)
    max_retries: int = 0  # fresh read attempts after the first
    # Replica-set hops within one attempt; None (the default) walks every
    # untried replica, which is what makes the quorum-overlap property
    # hold verbatim: a read tolerating n-r failures must be willing to
    # try all n replicas when the quorum is small.
    max_failover_depth: Optional[int] = None
    backoff_base: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.1
    backoff_jitter: float = 0.5
    # -- resilience: circuit breakers / shedding ----------------------------
    breaker_threshold: Optional[int] = None  # None disables breakers
    breaker_reset_timeout: float = 1.0
    breaker_half_open_probes: int = 1
    shed_rate: Optional[float] = None  # tokens/second; None disables
    shed_burst: int = 32
    # -- resilience: degraded reads / hinted handoff ------------------------
    degraded_reads: bool = False
    hinted_handoff: bool = False
    hint_replay_interval: float = 0.25
    max_hints_per_shard: int = 4096

    def backoff_policy(self) -> BackoffPolicy:
        return BackoffPolicy(
            base=self.backoff_base,
            multiplier=self.backoff_multiplier,
            cap=self.backoff_cap,
            jitter=self.backoff_jitter,
        )

    def resolved(self) -> "ClusterConfig":
        r = self.replication_factor
        if r < 1:
            raise ValueError("replication factor must be at least 1")
        read_quorum = self.read_quorum or majority(r)
        write_quorum = self.write_quorum or majority(r)
        hedged = self.hedged_reads
        if hedged is None:
            hedged = read_quorum > 1
        cfg = replace(
            self,
            write_quorum=write_quorum,
            read_quorum=read_quorum,
            hedged_reads=hedged,
        )
        if cfg.read_quorum > r:
            raise ValueError(
                f"read_quorum {cfg.read_quorum} cannot exceed "
                f"replication_factor {r}: a read cannot contact more "
                "replicas than each record has"
            )
        if cfg.write_quorum > r:
            raise ValueError(
                f"write_quorum {cfg.write_quorum} cannot exceed "
                f"replication_factor {r}"
            )
        if cfg.write_quorum < 1 or cfg.read_quorum < 1:
            raise ValueError("quorums must be at least 1")
        if cfg.max_batch < 1 or cfg.max_inflight < 1:
            raise ValueError("max_batch and max_inflight must be positive")
        if cfg.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if cfg.request_deadline is not None and cfg.request_deadline <= 0:
            raise ValueError("request_deadline must be positive when set")
        if cfg.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if cfg.max_failover_depth is not None and cfg.max_failover_depth < 0:
            raise ValueError("max_failover_depth must be non-negative")
        cfg.backoff_policy()  # validates base/multiplier/cap/jitter
        if cfg.breaker_threshold is not None and cfg.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1 when set")
        if cfg.breaker_reset_timeout <= 0:
            raise ValueError("breaker_reset_timeout must be positive")
        if cfg.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be at least 1")
        if cfg.shed_rate is not None and cfg.shed_rate <= 0:
            raise ValueError("shed_rate must be positive when set")
        if cfg.shed_burst < 1:
            raise ValueError("shed_burst must admit at least one request")
        if cfg.hint_replay_interval <= 0:
            raise ValueError("hint_replay_interval must be positive")
        if cfg.max_hints_per_shard < 1:
            raise ValueError("max_hints_per_shard must be at least 1")
        return cfg


@dataclass(slots=True)
class ClusterAnswer:
    """The frontend's answer to one status query."""

    identifier: str
    revoked: bool
    source: str  # 'filter' | 'shard' | 'degraded'
    proof: Optional[StatusProof] = None
    state: Optional[str] = None
    epoch: int = -1
    answered_by: Optional[str] = None
    error: Optional[str] = None
    degraded: bool = False  # answered from the filter, not a shard quorum
    cause: Optional[str] = None  # 'deadline' | 'shed' | 'quorum' on non-authoritative answers

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(slots=True)
class _ReadContext:
    """Book-keeping for one status query across retries and failovers."""

    deadline: Optional[Deadline] = None
    attempts: int = 0  # fresh read attempts consumed (retries)
    hops: int = 0  # failover hops within the current attempt
    answered: bool = False
    span: Optional[Any] = None  # obs trace span for this query, if tracing


@dataclass
class FrontendStats:
    queries: int = 0
    filter_short_circuits: int = 0
    shard_lookups: int = 0  # per-replica status sub-queries issued
    batches_sent: int = 0
    batch_items: int = 0
    read_repairs: int = 0
    failovers: int = 0
    retries: int = 0  # fresh read attempts after backoff
    degraded_answers: int = 0  # answered from the filter (quorum unreachable)
    deadline_answers: int = 0  # degraded answers forced by the deadline timer
    load_shed: int = 0  # queries refused by the token bucket
    claims: int = 0
    revocations: int = 0
    throttled: int = 0  # batch sends deferred by the in-flight window
    peak_inflight: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.batch_items / self.batches_sent if self.batches_sent else 0.0


class ClusterFrontend:
    """Stateless coordinator over a sharded, replicated ledger cluster.

    Parameters
    ----------
    cluster_id:
        The logical ledger id all shards share.
    ring / transport:
        Placement function and the wire to the shards.
    timestamp_authority:
        TSA used to prepare claim records (one token per claim, chosen
        by the coordinator so replicas store identical records).
    detector:
        Shared failure detector; created from ``clock`` when omitted.
    scheduler:
        ``scheduler(delay_s, callback)`` for batch-window, backoff and
        deadline timers (the simulator's ``schedule`` in netsim mode).
        When None the frontend runs in synchronous mode: every public
        call flushes its batches before returning and backoff delays
        collapse to immediate continuations.
    filterset:
        Optional Bloom pre-check (see module docstring).  Anything with
        ``might_be_revoked(key)``; if it also exposes ``add(key)``, the
        frontend inserts every revocation it acks, which is what keeps
        degraded answers fail-closed.
    observer:
        Optional operation observer (e.g. the chaos harness's
        :class:`~repro.chaos.history.HistoryRecorder`): ``begin(kind,
        serial, **attrs) -> op_id`` is called when a client-visible
        operation is issued and ``complete(op_id, **attrs)`` when its
        outcome is decided, so an external checker can reconstruct the
        client-visible history without touching the data path.
    rng:
        Optional seeded stream (``uniform()``) for backoff jitter; None
        disables jitter, keeping the undithered schedule.
    obs:
        Optional :class:`~repro.obs.Observability`.  When set, the
        frontend emits ``frontend_*`` counters and latency histograms,
        opens a ``frontend.status`` span per query (with
        ``replication.read`` / ``frontend.batch`` children and
        retry/failover/deadline events), and wires the breaker board,
        token bucket and hint queue into the same registry.  When None
        (the default) no instrumentation code runs and the hot path
        allocates nothing extra.
    """

    def __init__(
        self,
        cluster_id: str,
        ring: HashRing,
        transport: ShardTransport,
        timestamp_authority: TimestampAuthority,
        detector: Optional[FailureDetector] = None,
        config: Optional[ClusterConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        scheduler: Optional[Callable[[float, Callable[[], None]], None]] = None,
        filterset=None,
        observer=None,
        rng=None,
        obs=None,
    ):
        self.cluster_id = cluster_id
        self.ring = ring
        self.transport = transport
        self._tsa = timestamp_authority
        self._clock = clock or (lambda: 0.0)
        self._scheduler = scheduler
        self.detector = detector or FailureDetector(self._clock)
        self.config = (config or ClusterConfig()).resolved()
        if self.config.replication_factor > len(ring):
            raise ValueError(
                f"replication factor {self.config.replication_factor} "
                f"exceeds ring size {len(ring)}"
            )
        self.filterset = filterset
        self.observer = observer
        self._rng = rng
        self.obs = obs
        self._open_breakers: set = set()
        self._backoff = self.config.backoff_policy()
        self.breakers: Optional[BreakerBoard] = None
        if self.config.breaker_threshold is not None:
            self.breakers = BreakerBoard(
                self._clock,
                failure_threshold=self.config.breaker_threshold,
                reset_timeout=self.config.breaker_reset_timeout,
                half_open_probes=self.config.breaker_half_open_probes,
                on_transition=(
                    self._breaker_transition if obs is not None else None
                ),
            )
        self.shedder: Optional[TokenBucket] = None
        if self.config.shed_rate is not None:
            self.shedder = TokenBucket(
                self.config.shed_rate, self.config.shed_burst, self._clock,
                obs=obs,
            )
        self.hints: Optional[HintQueue] = None
        if self.config.hinted_handoff:
            # Replay attempts are breaker-gated (~one per reset window
            # while a shard is down), so the attempt cap must cover a
            # realistic outage, not just transient blips.
            self.hints = HintQueue(
                self._clock,
                max_per_shard=self.config.max_hints_per_shard,
                max_attempts=6,
                obs=obs,
            )
        self._hint_timer_armed = False
        self.executor = QuorumExecutor(transport, detector=self.detector)
        self.stats = FrontendStats()
        # Per-shard pending (serial, collector, deadline) batches.
        self._queues: Dict[str, List[tuple]] = {}
        self._ready: List[str] = []  # FIFO of shards with sendable batches
        self._timer_armed: set = set()
        self._inflight = 0

    # -- observation -------------------------------------------------------------

    def _begin(self, kind: str, serial: int, **attrs):
        if self.observer is None:
            return None
        return self.observer.begin(kind, serial, **attrs)

    def _end(self, op_id, **attrs) -> None:
        if self.observer is not None and op_id is not None:
            self.observer.complete(op_id, **attrs)

    def _breaker_transition(self, target: str, state: BreakerState) -> None:
        """Board hook: count transitions, track the open-breaker gauge."""
        if self.obs is not None:
            self.obs.counter(
                "breaker_transitions_total", target=target, to=state.value
            ).inc()
        if state is BreakerState.CLOSED:
            self._open_breakers.discard(target)
        else:
            self._open_breakers.add(target)
        if self.obs is not None:
            self.obs.gauge("breakers_open").set(len(self._open_breakers))

    # -- health fan-out ----------------------------------------------------------

    def _record_result(self, shard_id: str, ok: bool) -> None:
        """One observation feeds both the detector and the breakers."""
        if ok:
            self.detector.record_success(shard_id)
        else:
            self.detector.record_failure(shard_id)
        if self.breakers is not None:
            self.breakers.record(shard_id, ok)

    def _breaker_allows(self, shard_id: str) -> bool:
        return self.breakers is None or self.breakers.allow(shard_id)

    def _breakers_last(self, candidates: List[str]) -> List[str]:
        """Reorder so breaker-open shards are tried last (never dropped)."""
        if self.breakers is None:
            return candidates
        blocked = set(self.breakers.open_targets())
        if not blocked:
            return candidates
        return [s for s in candidates if s not in blocked] + [
            s for s in candidates if s in blocked
        ]

    def _later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` sim-seconds (immediately in sync mode)."""
        if self._scheduler is None or delay <= 0:
            fn()
        else:
            self._scheduler(delay, fn)

    # -- placement ---------------------------------------------------------------

    def replicas_for(self, identifier: PhotoIdentifier) -> List[str]:
        return self.ring.replicas(
            identifier.to_compact(), self.config.replication_factor
        )

    def _identifier(self, serial: int) -> PhotoIdentifier:
        return PhotoIdentifier(ledger_id=self.cluster_id, serial=serial)

    # -- status (hot path) --------------------------------------------------------

    def status_async(
        self,
        identifier: PhotoIdentifier,
        callback: Callable[[ClusterAnswer], None],
        use_filter: bool = True,
        _filter_verdict: Optional[bool] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Queue one status lookup; ``callback`` fires exactly once.

        ``_filter_verdict`` lets :meth:`status_many_async` hand in a
        precomputed Bloom verdict from its vectorized pass so the
        scalar filter probe is skipped; external callers leave it None.

        ``deadline`` overrides ``config.request_deadline`` for this one
        query — how callers with their own budget (the HTTP service's
        deadline header) thread it into the backstop and the per-RPC
        timeouts.  A deadline that has already expired is answered
        degraded immediately, without consuming a read.
        """
        self.stats.queries += 1
        key = identifier.to_string()
        op_id = self._begin("status", identifier.serial)
        ctx = _ReadContext()
        if self.obs is not None:
            self.obs.counter("frontend_queries_total").inc()
            ctx.span = self.obs.start(
                "frontend.status", serial=identifier.serial
            )

        def _observed(answer: ClusterAnswer) -> None:
            if ctx.answered:
                return  # deadline backstop and quorum raced; first wins
            ctx.answered = True
            if self.obs is not None and ctx.span is not None:
                self.obs.counter(
                    "frontend_answers_total", source=answer.source
                ).inc()
                self.obs.histogram(
                    "frontend_status_latency_seconds"
                ).observe(self.obs.now() - ctx.span.started_at)
                ctx.span.end(
                    source=answer.source,
                    revoked=answer.revoked,
                    degraded=answer.degraded,
                    ok=answer.ok,
                )
            self._end(
                op_id,
                ok=answer.ok,
                revoked=answer.revoked,
                epoch=answer.epoch,
                source=answer.source,
                error=answer.error,
                degraded=answer.degraded,
            )
            callback(answer)

        if use_filter and self.filterset is not None:
            might_be = (
                _filter_verdict
                if _filter_verdict is not None
                else self.filterset.might_be_revoked(identifier.to_compact())
            )
        else:
            might_be = True
        if not might_be:
            self.stats.filter_short_circuits += 1
            if self.obs is not None and ctx.span is not None:
                self.obs.counter("frontend_filter_short_circuits_total").inc()
            _observed(
                ClusterAnswer(identifier=key, revoked=False, source="filter")
            )
            return
        if self.shedder is not None and not self.shedder.try_acquire():
            self.stats.load_shed += 1
            if self.obs is not None and ctx.span is not None:
                self.obs.counter("frontend_load_shed_total").inc()
                ctx.span.event("load_shed")
            _observed(
                self._degraded_answer(identifier, "load shed", cause="shed")
            )
            return
        budget: Optional[float] = None
        if deadline is not None:
            ctx.deadline = deadline
            budget = deadline.remaining(self._clock())
        elif self.config.request_deadline is not None:
            ctx.deadline = Deadline.after(
                self._clock(), self.config.request_deadline
            )
            budget = self.config.request_deadline
        if ctx.deadline is not None and budget is not None:
            def _deadline_answer() -> None:
                self.stats.deadline_answers += 1
                if self.obs is not None and ctx.span is not None:
                    self.obs.counter(
                        "frontend_deadline_answers_total"
                    ).inc()
                    ctx.span.event("deadline_exceeded")
                _observed(
                    self._degraded_answer(
                        identifier, "deadline exceeded", cause="deadline"
                    )
                )

            if budget <= 0.0:
                _deadline_answer()  # arrived already out of budget
                return
            if self._scheduler is not None:
                def _backstop() -> None:
                    if not ctx.answered:
                        _deadline_answer()

                self._scheduler(budget, _backstop)
        self._start_read(identifier, ctx, _observed)

    def status_many_async(
        self,
        identifiers: List[PhotoIdentifier],
        callback: Callable[[int, ClusterAnswer], None],
        use_filter: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Queue a burst of status lookups with one vectorized filter pass.

        ``callback(index, answer)`` fires exactly once per identifier
        (indices into ``identifiers``; completion order is arbitrary).
        Equivalent to calling :meth:`status_async` per identifier — the
        batch path only hoists the Bloom pre-check into a single
        :meth:`~repro.proxy.filterset.ProxyFilterSet.might_be_revoked_many`
        call, so the per-query cost on the (dominant) short-circuit path
        drops to a precomputed boolean.  Per-shard RPC batching then
        coalesces the survivors exactly as before.
        """
        identifiers = list(identifiers)
        verdicts = None
        if use_filter and self.filterset is not None:
            many = getattr(self.filterset, "might_be_revoked_many", None)
            if many is not None:
                verdicts = many(
                    [identifier.to_compact() for identifier in identifiers]
                )
        for index, identifier in enumerate(identifiers):
            self.status_async(
                identifier,
                (lambda i: lambda answer: callback(i, answer))(index),
                use_filter=use_filter,
                _filter_verdict=(
                    None if verdicts is None else bool(verdicts[index])
                ),
                deadline=deadline,
            )

    def status_many(
        self, identifiers: List[PhotoIdentifier], use_filter: bool = True
    ) -> List[ClusterAnswer]:
        """Synchronous batch status (in-process transports only)."""
        identifiers = list(identifiers)
        answers: List[Optional[ClusterAnswer]] = [None] * len(identifiers)

        def _collect(index: int, answer: ClusterAnswer) -> None:
            answers[index] = answer

        self.status_many_async(identifiers, _collect, use_filter=use_filter)
        self.flush()
        if any(answer is None for answer in answers):
            raise ClusterError(
                "status_many did not complete synchronously; use "
                "status_many_async with the netsim transport"
            )
        return answers  # type: ignore[return-value]

    def _start_read(
        self,
        identifier: PhotoIdentifier,
        ctx: _ReadContext,
        callback: Callable[[ClusterAnswer], None],
    ) -> None:
        """Begin one read attempt against breaker-admitted replicas."""
        if ctx.answered:
            return  # deadline fired while this retry was waiting
        replicas = self.replicas_for(identifier)
        admitted = [s for s in replicas if self._breaker_allows(s)]
        if len(admitted) < self.config.read_quorum:
            self._retry_or_degrade(
                identifier, ctx, callback,
                "read quorum unreachable: breakers open",
            )
            return
        if self.config.hedged_reads:
            self._read_attempt(identifier, admitted, [], ctx, callback)
        else:
            ordered = self.detector.live(admitted) or list(admitted)
            read_set = ordered[: self.config.read_quorum]
            rest = [s for s in admitted if s not in read_set]
            self._read_attempt(identifier, read_set, rest, ctx, callback)

    def _read_attempt(
        self,
        identifier: PhotoIdentifier,
        read_set: List[str],
        fallback: List[str],
        ctx: _ReadContext,
        callback: Callable[[ClusterAnswer], None],
    ) -> None:
        key = identifier.to_string()
        quorum = min(self.config.read_quorum, len(read_set))
        rspan = None
        if self.obs is not None and ctx.span is not None:
            rspan = self.obs.start(
                "replication.read",
                parent=ctx.span,
                shards=",".join(read_set),
                quorum=quorum,
            )

        def _on_done(outcome: StatusOutcome) -> None:
            if rspan is not None:
                rspan.end(ok=outcome.ok)
            if (
                not outcome.ok
                and outcome.error is not None
                and "unknown serial" in outcome.error
            ):
                # The replicas answered: no such record.  That is an
                # application verdict, not unavailability — failover,
                # retry and the degraded filter fallback would all mask
                # it (the filter would answer "not revoked" for an id
                # that was never claimed at all).
                callback(self._answer_from(key, outcome))
                return
            if not outcome.ok and fallback:
                depth = self.config.max_failover_depth
                if depth is None or ctx.hops < depth:
                    # Failover: retry on the untried survivors, spaced
                    # by the backoff schedule (hop number = attempt).
                    ctx.hops += 1
                    self.stats.failovers += 1
                    if self.obs is not None and ctx.span is not None:
                        self.obs.counter("frontend_failovers_total").inc()
                        ctx.span.event("failover", hop=ctx.hops)
                    retry = fallback[: self.config.read_quorum]
                    rest = fallback[len(retry):]
                    self._later(
                        self._backoff.delay(ctx.hops - 1, self._rng),
                        lambda: self._read_attempt(
                            identifier, retry, rest, ctx, callback
                        ),
                    )
                    return
            if not outcome.ok:
                self._retry_or_degrade(identifier, ctx, callback, outcome.error)
                return
            callback(self._answer_from(key, outcome))

        collector = StatusCollector(
            serial=identifier.serial,
            replicas=read_set,
            quorum=quorum,
            on_done=_on_done,
            on_stale=self._repair,
        )
        for shard_id in read_set:
            self.stats.shard_lookups += 1
            self._enqueue(shard_id, identifier.serial, collector, ctx.deadline)
        self._maybe_flush()

    def _retry_or_degrade(
        self,
        identifier: PhotoIdentifier,
        ctx: _ReadContext,
        callback: Callable[[ClusterAnswer], None],
        reason: Optional[str],
    ) -> None:
        """Budget left → back off and retry fresh; else answer degraded."""
        if ctx.attempts < self.config.max_retries:
            delay = self._backoff.delay(ctx.attempts, self._rng)
            now = self._clock()
            if ctx.deadline is None or ctx.deadline.allows(now, delay):
                ctx.attempts += 1
                ctx.hops = 0
                self.stats.retries += 1
                if self.obs is not None and ctx.span is not None:
                    self.obs.counter("frontend_retries_total").inc()
                    ctx.span.event("retry", attempt=ctx.attempts, delay=delay)
                self._later(
                    delay, lambda: self._start_read(identifier, ctx, callback)
                )
                return
        if ctx.span is not None:
            ctx.span.event("degraded", reason=reason or "quorum unreachable")
        callback(self._degraded_answer(identifier, reason, cause="quorum"))

    def _degraded_answer(
        self,
        identifier: PhotoIdentifier,
        reason: Optional[str],
        cause: str = "quorum",
    ) -> ClusterAnswer:
        """The answer of last resort when no shard quorum is reachable.

        With ``degraded_reads`` on, the Bloom filter substitutes for the
        quorum: a miss is a definitive *not revoked* (subject to filter
        staleness, which the E19 harness measures) and a hit reports
        *revoked* — Bloom false positives err closed, and every
        revocation this frontend acked was inserted via
        :meth:`_note_revoked`, so the degraded path never fails open on
        an acknowledged revocation.  Without the flag, the legacy
        fail-safe stands: ``revoked=True`` with ``.error`` set.
        """
        key = identifier.to_string()
        if self.config.degraded_reads:
            self.stats.degraded_answers += 1
            if self.obs is not None:
                self.obs.counter("frontend_degraded_answers_total").inc()
            revoked = True  # no filter at all: maximally conservative
            if self.filterset is not None:
                revoked = bool(
                    self.filterset.might_be_revoked(identifier.to_compact())
                )
            return ClusterAnswer(
                identifier=key,
                revoked=revoked,
                source="degraded",
                degraded=True,
                cause=cause,
            )
        return ClusterAnswer(
            identifier=key,
            revoked=True,  # fail-safe verdict; callers see .error
            source="shard",
            error=reason or "read quorum unreachable",
            cause=cause,
        )

    def _answer_from(self, key: str, outcome: StatusOutcome) -> ClusterAnswer:
        if not outcome.ok:
            return ClusterAnswer(
                identifier=key,
                revoked=True,  # fail-safe verdict; callers see .error
                source="shard",
                error=outcome.error,
                cause="quorum",
            )
        return ClusterAnswer(
            identifier=key,
            revoked=outcome.proof.revoked,
            source="shard",
            proof=outcome.proof,
            state=outcome.state,
            epoch=outcome.epoch,
            answered_by=outcome.answered_by,
        )

    def _repair(self, shard_id: str, outcome: StatusOutcome) -> None:
        """Push the winning state to a replica that answered stale."""
        self.stats.read_repairs += 1
        if self.obs is not None:
            self.obs.counter("read_repairs_total", shard=shard_id).inc()
        self.transport.invoke(
            shard_id,
            "apply_state",
            {
                "serial": outcome.serial,
                "state": outcome.state,
                "epoch": outcome.epoch,
            },
            lambda reply: None,  # best effort; next read re-detects
            timeout=None,  # repair carries no request budget; transport default
        )

    # -- status: synchronous conveniences ------------------------------------------

    def status(self, identifier: PhotoIdentifier) -> ClusterAnswer:
        """Synchronous status (in-process transports only)."""
        box: List[ClusterAnswer] = []
        self.status_async(identifier, box.append)
        self.flush()
        if not box:
            raise ClusterError(
                "status did not complete synchronously; use status_async "
                "with the netsim transport"
            )
        return box[0]

    def status_proof(self, identifier: PhotoIdentifier) -> StatusProof:
        """Authoritative signed proof — a Validator ``StatusSource``.

        Bypasses the Bloom pre-check (validators want a signed
        statement, not a probabilistic shortcut) and raises
        :class:`LedgerUnavailableError` when no quorum answered, which
        is what validation policies key their fail-open/closed on.
        Degraded answers are *not* proofs: they raise too.
        """
        box: List[ClusterAnswer] = []
        self.status_async(identifier, box.append, use_filter=False)
        self.flush()
        if not box:
            raise ClusterError("status did not complete synchronously")
        answer = box[0]
        if not answer.ok or answer.proof is None:
            raise LedgerUnavailableError(
                answer.error or "cluster returned no proof"
            )
        return answer.proof

    # -- claims ----------------------------------------------------------------------

    def claim_async(
        self,
        content_hash: str,
        content_signature: Signature,
        public_key: PublicKey,
        callback: Callable[[PhotoIdentifier, Optional[str]], None],
        initially_revoked: bool = False,
        custodial: bool = False,
    ) -> PhotoIdentifier:
        """Quorum-write a claim; returns the (deterministic) identifier.

        ``callback(identifier, error)`` fires when the write quorum is
        reached (``error is None``) or proven unreachable.
        """
        serial = content_serial(content_hash)
        identifier = self._identifier(serial)
        payload = {
            "serial": serial,
            "content_hash": content_hash,
            "content_signature": content_signature,
            "public_key": public_key,
            "timestamp": self._tsa.issue(claim_digest(content_hash, public_key)),
            "initially_revoked": initially_revoked,
            "custodial": custodial,
        }
        replicas = self.replicas_for(identifier)
        op_id = self._begin("claim", serial)
        span = None
        if self.obs is not None:
            self.obs.counter("frontend_claims_total").inc()
            span = self.obs.start("frontend.claim", serial=serial)

        def _on_result(result) -> None:
            if span is not None:
                span.end(ok=result.ok)
            if result.ok:
                self.stats.claims += 1
                if initially_revoked:
                    self._note_revoked(identifier)
                self._end(op_id, ok=True, epoch=0)
                callback(identifier, None)
            else:
                self._end(op_id, ok=False, error=result.error)
                callback(identifier, result.error)

        self.executor.execute(
            replicas,
            "claim",
            payload,
            self.config.write_quorum,
            _on_result,
            on_reply=self._replica_write_hook("claim", payload, epoch=0),
        )
        return identifier

    def claim(
        self,
        content_hash: str,
        content_signature: Signature,
        public_key: PublicKey,
        initially_revoked: bool = False,
        custodial: bool = False,
    ) -> PhotoIdentifier:
        """Synchronous claim (in-process transports only)."""
        box: List[tuple] = []
        self.claim_async(
            content_hash,
            content_signature,
            public_key,
            lambda ident, err: box.append((ident, err)),
            initially_revoked=initially_revoked,
            custodial=custodial,
        )
        if not box:
            raise ClusterError("claim did not complete synchronously")
        identifier, error = box[0]
        if error is not None:
            raise ClaimError(error)
        return identifier

    # -- hinted handoff ---------------------------------------------------------------

    def _replica_write_hook(
        self, method: str, payload: Dict[str, Any], epoch: int = 0
    ) -> Callable[[Any], None]:
        """Per-reply observer for write fan-outs.

        Feeds the breakers (the executor already feeds the detector) and
        queues a hint for every replica the write missed — including
        stragglers that fail *after* the quorum verdict, which is why
        this hangs off ``on_reply`` rather than the quorum callback.
        """

        def _on_reply(reply) -> None:
            if self.breakers is not None:
                self.breakers.record(reply.shard_id, reply.ok)
            if self.hints is not None and not reply.ok:
                self.hints.record(reply.shard_id, method, payload, epoch=epoch)
                self._arm_hint_timer()

        return _on_reply

    def _arm_hint_timer(self) -> None:
        if (
            self.hints is None
            or self._scheduler is None
            or self._hint_timer_armed
            or self.hints.pending() == 0
        ):
            return
        self._hint_timer_armed = True
        self._scheduler(self.config.hint_replay_interval, self._hint_tick)

    def _hint_tick(self) -> None:
        self._hint_timer_armed = False
        self.replay_hints()
        self._arm_hint_timer()

    def replay_hints(self) -> None:
        """Try to redeliver queued hints to every hinted shard now.

        Normally driven by the replay timer; exposed for tests and for
        sync-mode callers that want to drain after a revive.  Shards
        with an open breaker are skipped — the breaker's own half-open
        probe is the cheaper liveness test.
        """
        if self.hints is None:
            return
        for shard_id in self.hints.shards_with_hints():
            if not self._breaker_allows(shard_id):
                continue
            self.hints.replay(
                shard_id, self.transport, on_result=self._record_result
            )

    def _note_revoked(self, identifier: PhotoIdentifier) -> None:
        """Insert an acked revocation into the filter (if it can learn).

        This is the fail-closed half of degraded reads: once a
        revocation is acknowledged, even a filter-only answer reports it
        revoked.  ProxyFilterSet-style read-only filters simply lack
        ``add`` and are left untouched.
        """
        add = getattr(self.filterset, "add", None)
        if add is not None:
            add(identifier.to_compact())

    # -- revocation -------------------------------------------------------------------

    def make_challenge(self, identifier: PhotoIdentifier) -> tuple:
        """Obtain an ownership challenge from a coordinating replica.

        Returns ``(coordinator_shard_id, nonce)``; the owner signs
        :meth:`Ledger.ownership_payload` over the nonce and passes both
        back to :meth:`complete_revocation` — challenge state is
        per-shard, so verify must land on the same replica.  Candidates
        are tried in ring order (trusted replicas first, breaker-open
        replicas last), so a dead primary only costs one failed probe.
        """
        replicas = self.replicas_for(identifier)
        candidates = self.detector.live(replicas) + [
            s for s in replicas if self.detector.is_suspect(s)
        ]
        candidates = self._breakers_last(candidates)
        errors = []
        for i, coordinator in enumerate(candidates):
            box: List = []
            self.transport.invoke(
                coordinator, "challenge", {"serial": identifier.serial},
                box.append, timeout=None,  # sync path; completes inline
            )
            if box and box[0].ok:
                self._record_result(coordinator, True)
                if i > 0:
                    self.stats.failovers += 1
                return coordinator, box[0].value
            error = box[0].error if box else "no reply"
            self._record_result(coordinator, False)
            errors.append(f"{coordinator}: {error}")
        raise RevocationError(
            f"challenge failed on all replicas ({'; '.join(errors)})"
        )

    def complete_revocation(
        self,
        identifier: PhotoIdentifier,
        coordinator: str,
        nonce: bytes,
        signature: Signature,
        action: str = "revoke",
    ) -> Dict[str, Any]:
        """Verify on the coordinator, then quorum-propagate the flip."""
        if action not in ("revoke", "unrevoke"):
            raise ValueError(f"unknown revocation action {action!r}")
        replicas = self.replicas_for(identifier)
        box: List = []
        self.transport.invoke(
            coordinator,
            action,
            {"serial": identifier.serial, "nonce": nonce, "signature": signature},
            box.append,
            timeout=None,  # sync path; completes inline
        )
        if not box or not box[0].ok:
            error = box[0].error if box else "no reply"
            self._record_result(coordinator, False)
            raise RevocationError(f"{action} via {coordinator} failed: {error}")
        self._record_result(coordinator, True)
        verdict = box[0].value  # {'state': ..., 'epoch': ...}
        others = [s for s in replicas if s != coordinator]
        needed = self.config.write_quorum - 1  # coordinator already holds it
        outcome: Dict[str, Any] = dict(verdict)
        if others:
            payload = {"serial": identifier.serial, **verdict}
            results: List = []
            self.executor.execute(
                others,
                "apply_state",
                payload,
                max(needed, 1),
                results.append,
                on_reply=self._replica_write_hook(
                    "apply_state", payload, epoch=verdict["epoch"]
                ),
            )
            if needed > 0 and results and not results[0].ok:
                raise RevocationError(
                    f"{action} verified but replication quorum failed: "
                    f"{results[0].error}"
                )
        self.stats.revocations += 1
        if self.obs is not None:
            self.obs.counter("frontend_revocations_total", action=action).inc()
        if action == "revoke":
            self._note_revoked(identifier)
        return outcome

    def revoke_async(
        self,
        identifier: PhotoIdentifier,
        keypair: KeyPair,
        callback: Callable[[Optional[Dict[str, Any]], Optional[str]], None],
        action: str = "revoke",
    ) -> None:
        """Fully asynchronous challenge-sign-flip-propagate chain.

        The netsim-transport twin of :meth:`revoke`: every hop
        (challenge with coordinator failover, the verified flip, the
        quorum ``apply_state`` fan-out) is callback-driven, so
        revocations can run *during* a simulated partition or crash —
        which is exactly when the chaos checker needs them.
        ``callback(outcome, error)`` fires once, when the write quorum
        is reached (``error is None``) or the action is proven
        impossible.  The observer ack is recorded at quorum time: that
        instant is the durability point the consistency checker holds
        every later status answer to.
        """
        if action not in ("revoke", "unrevoke"):
            raise ValueError(f"unknown revocation action {action!r}")
        replicas = self.replicas_for(identifier)
        candidates = self.detector.live(replicas) + [
            s for s in replicas if self.detector.is_suspect(s)
        ]
        candidates = self._breakers_last(candidates)
        op_id = self._begin(action, identifier.serial)
        span = None
        if self.obs is not None:
            self.obs.counter("frontend_revocations_total", action=action).inc()
            span = self.obs.start(
                f"frontend.{action}", serial=identifier.serial
            )
        errors: List[str] = []

        def _fail(error: str) -> None:
            if span is not None:
                span.end(ok=False, error=error)
            self._end(op_id, ok=False, error=error)
            callback(None, error)

        def _try_coordinator(index: int) -> None:
            if index >= len(candidates):
                _fail(
                    f"challenge failed on all replicas ({'; '.join(errors)})"
                )
                return
            coordinator = candidates[index]

            def _on_challenge(reply) -> None:
                if not reply.ok:
                    self._record_result(coordinator, False)
                    errors.append(f"{coordinator}: {reply.error}")
                    _try_coordinator(index + 1)
                    return
                self._record_result(coordinator, True)
                if index > 0:
                    self.stats.failovers += 1
                nonce = reply.value
                signature = keypair.sign_struct(
                    Ledger.ownership_payload(action, identifier, nonce)
                )
                self._flip_and_propagate(
                    identifier, coordinator, nonce, signature, action,
                    replicas, op_id, span, callback,
                )

            self.transport.invoke(
                coordinator, "challenge", {"serial": identifier.serial},
                _on_challenge,
                # Revocations have no configured deadline (they are rare,
                # owner-driven, and must not time out into ambiguity);
                # the transport default bounds a dead coordinator.
                timeout=None,
            )

        _try_coordinator(0)

    def _flip_and_propagate(
        self,
        identifier: PhotoIdentifier,
        coordinator: str,
        nonce: bytes,
        signature: Signature,
        action: str,
        replicas: List[str],
        op_id,
        span,
        callback: Callable[[Optional[Dict[str, Any]], Optional[str]], None],
    ) -> None:
        """Verified flip on the coordinator, then quorum ``apply_state``."""

        def _on_action(reply) -> None:
            if not reply.ok:
                self._record_result(coordinator, False)
                error = f"{action} via {coordinator} failed: {reply.error}"
                if span is not None:
                    span.end(ok=False, error=error)
                self._end(op_id, ok=False, error=error)
                callback(None, error)
                return
            self._record_result(coordinator, True)
            verdict = reply.value  # {'state': ..., 'epoch': ...}
            outcome: Dict[str, Any] = dict(verdict)
            others = [s for s in replicas if s != coordinator]
            needed = self.config.write_quorum - 1  # coordinator holds it

            def _acked() -> None:
                self.stats.revocations += 1
                if action == "revoke":
                    self._note_revoked(identifier)
                if span is not None:
                    span.end(ok=True, epoch=verdict["epoch"])
                self._end(op_id, ok=True, **verdict)
                callback(outcome, None)

            if not others:
                _acked()
                return

            def _on_quorum(result) -> None:
                if needed > 0 and not result.ok:
                    error = (
                        f"{action} verified but replication quorum failed: "
                        f"{result.error}"
                    )
                    if span is not None:
                        span.end(ok=False, error=error)
                    self._end(op_id, ok=False, error=error)
                    callback(None, error)
                    return
                _acked()

            payload = {"serial": identifier.serial, **verdict}
            self.executor.execute(
                others,
                "apply_state",
                payload,
                max(needed, 1),
                _on_quorum,
                on_reply=self._replica_write_hook(
                    "apply_state", payload, epoch=verdict["epoch"]
                ),
            )

        self.transport.invoke(
            coordinator,
            action,
            {"serial": identifier.serial, "nonce": nonce, "signature": signature},
            _on_action,
            timeout=None,  # see the challenge leg above
        )

    def revoke(self, identifier: PhotoIdentifier, keypair: KeyPair) -> Dict[str, Any]:
        """Challenge-sign-revoke convenience (owner holds the key)."""
        return self._owner_action(identifier, keypair, "revoke")

    def unrevoke(self, identifier: PhotoIdentifier, keypair: KeyPair) -> Dict[str, Any]:
        return self._owner_action(identifier, keypair, "unrevoke")

    def _owner_action(
        self, identifier: PhotoIdentifier, keypair: KeyPair, action: str
    ) -> Dict[str, Any]:
        """Synchronous wrapper over :meth:`revoke_async` (local transports)."""
        box: List[tuple] = []
        self.revoke_async(
            identifier,
            keypair,
            lambda outcome, error: box.append((outcome, error)),
            action=action,
        )
        if not box:
            raise ClusterError(
                f"{action} did not complete synchronously; use revoke_async "
                "with the netsim transport"
            )
        outcome, error = box[0]
        if error is not None:
            raise RevocationError(error)
        return outcome

    # -- batching engine ---------------------------------------------------------------

    def _enqueue(
        self,
        shard_id: str,
        serial: int,
        collector,
        deadline: Optional[Deadline] = None,
    ) -> None:
        queue = self._queues.setdefault(shard_id, [])
        queue.append((serial, collector, deadline))
        if shard_id in self._ready or shard_id in self._timer_armed:
            return
        if self._scheduler is None or len(queue) >= self.config.max_batch:
            self._mark_ready(shard_id)
        else:
            self._timer_armed.add(shard_id)
            self._scheduler(self.config.batch_window, lambda: self._expire(shard_id))

    def _expire(self, shard_id: str) -> None:
        self._timer_armed.discard(shard_id)
        if self._queues.get(shard_id):
            self._mark_ready(shard_id)
            self._pump()

    def _mark_ready(self, shard_id: str) -> None:
        if shard_id not in self._ready:
            self._ready.append(shard_id)
        self._timer_armed.discard(shard_id)

    def _maybe_flush(self) -> None:
        if self._scheduler is None:
            self.flush()
        else:
            self._pump()

    def flush(self) -> None:
        """Force every pending batch out (subject to the window)."""
        for shard_id, queue in self._queues.items():
            if queue:
                self._mark_ready(shard_id)
        self._pump()

    def _pump(self) -> None:
        while self._ready:
            if self._inflight >= self.config.max_inflight:
                self.stats.throttled += 1
                return
            shard_id = self._ready.pop(0)
            queue = self._queues.get(shard_id, [])
            if not queue:
                continue
            batch = queue[: self.config.max_batch]
            self._queues[shard_id] = queue[self.config.max_batch:]
            if self._queues[shard_id]:
                self._ready.append(shard_id)  # remainder already waited
            self._send_batch(shard_id, batch)

    def _send_batch(self, shard_id: str, batch: List[tuple]) -> None:
        self._inflight += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight, self._inflight)
        self.stats.batches_sent += 1
        self.stats.batch_items += len(batch)
        serials = [serial for serial, _, _ in batch]
        bspan = None
        if self.obs is not None:
            self.obs.counter("frontend_batches_total", shard=shard_id).inc()
            self.obs.histogram(
                "frontend_batch_size", buckets=(1, 2, 4, 8, 16, 32, 64)
            ).observe(len(batch))
            bspan = self.obs.start(
                "frontend.batch", shard=shard_id, items=len(batch)
            )

        def _on_reply(reply) -> None:
            if bspan is not None:
                bspan.end(ok=reply.ok)
            self._inflight -= 1
            if reply.ok:
                self._record_result(shard_id, True)
                for (serial, collector, _), entry in zip(batch, reply.value):
                    collector.record(shard_id, entry)
            else:
                self._record_result(shard_id, False)
                for serial, collector, _ in batch:
                    collector.record_error(shard_id, reply.error)
            self._pump()

        kwargs: Dict[str, Any] = {}
        if getattr(self.transport, "supports_deadlines", False):
            # Deadline propagation: the RPC timeout shrinks to the
            # tightest remaining budget in the batch, so a sub-call
            # can never outlive the request it serves.
            now = self._clock()
            budgets = [
                deadline.remaining(now)
                for _, _, deadline in batch
                if deadline is not None
            ]
            if budgets:
                kwargs["timeout"] = max(min(budgets), 1e-4)
        self.transport.invoke(
            shard_id, "status", {"serials": serials}, _on_reply, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterFrontend({self.cluster_id!r}, shards={len(self.ring)}, "
            f"r={self.config.replication_factor})"
        )
