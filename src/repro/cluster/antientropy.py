"""Anti-entropy: digest reconciliation and re-replication after heals.

Read repair fixes what reads *touch*; hinted handoff redelivers what
the coordinator *saw* fail.  Neither restores a replica that lost its
disk and is never read, and a dropped hint (replica wiped, hint
rejected) leaves a durable gap.  The anti-entropy sweep closes both:
it pulls a cheap ``{serial: epoch}`` digest from every reachable
shard, computes — from the ring, the same pure placement function the
frontend routes by — which replicas *should* hold each record, and
pushes full records from the freshest holder to every expected replica
that is missing the record or holds it at an older epoch.

The sweep is callback-driven end to end, so it runs identically on the
synchronous in-process transport (unit tests) and the discrete-event
netsim transport (the chaos harness schedules one sweep after the heal
barrier).  It is also idempotent: ``install_record`` is LWW on the
revocation epoch, so overlapping sweeps and sweeps racing read repair
converge to the same state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.identifiers import PhotoIdentifier
from repro.cluster.replication import ShardReply, ShardTransport
from repro.cluster.ring import HashRing

__all__ = ["AntiEntropySweeper", "SweepReport"]


@dataclass
class SweepReport:
    """What one anti-entropy round found and fixed."""

    shards_polled: int = 0
    shards_unreachable: int = 0
    serials_scanned: int = 0
    records_pushed: int = 0
    push_failures: int = 0
    already_consistent: int = 0
    unreachable: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Did every shard answer its digest poll?"""
        return self.shards_unreachable == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepReport(scanned={self.serials_scanned}, "
            f"pushed={self.records_pushed}, failures={self.push_failures})"
        )


class AntiEntropySweeper:
    """Reconciles replica digests and re-replicates missing records."""

    def __init__(
        self,
        cluster_id: str,
        ring: HashRing,
        transport: ShardTransport,
        replication_factor: int,
        on_result: Optional[Callable[[str, bool], None]] = None,
        obs: Optional[object] = None,
        rpc_timeout: Optional[float] = None,
    ):
        if replication_factor < 1:
            raise ValueError("replication factor must be at least 1")
        self.cluster_id = cluster_id
        self.ring = ring
        self.transport = transport
        self.replication_factor = int(replication_factor)
        self._on_result = on_result  # health feedback (detector/breakers)
        self.obs = obs  # duck-typed Observability; sweep span + counters
        # Budget for every digest poll / fetch / install RPC: a sweep is
        # background work and must never wait on a dead replica longer
        # than the transport would make a foreground read wait.
        self.rpc_timeout = rpc_timeout
        self.sweeps_run = 0

    # -- placement ---------------------------------------------------------------

    def _replicas_for(self, serial: int) -> List[str]:
        identifier = PhotoIdentifier(ledger_id=self.cluster_id, serial=serial)
        return self.ring.replicas(identifier.to_compact(), self.replication_factor)

    def _note(self, shard_id: str, ok: bool) -> None:
        if self._on_result is not None:
            self._on_result(shard_id, ok)

    # -- the sweep ----------------------------------------------------------------

    def sweep_async(
        self, callback: Callable[[SweepReport], None]
    ) -> None:
        """One full digest-reconcile-push round; ``callback(report)``."""
        self.sweeps_run += 1
        span = None
        if self.obs is not None:
            self.obs.counter("antientropy_sweeps_total").inc()
            span = self.obs.start("antientropy.sweep")

            inner = callback

            def callback(report: SweepReport) -> None:  # noqa: F811
                self.obs.counter("antientropy_records_pushed_total").inc(
                    report.records_pushed
                )
                self.obs.counter("antientropy_push_failures_total").inc(
                    report.push_failures
                )
                span.end(
                    serials_scanned=report.serials_scanned,
                    records_pushed=report.records_pushed,
                    push_failures=report.push_failures,
                    shards_unreachable=report.shards_unreachable,
                )
                inner(report)

        report = SweepReport()
        shard_ids = list(self.transport.shard_ids())
        digests: Dict[str, Dict[int, int]] = {}
        waiting = {"n": len(shard_ids)}

        def _polled(shard_id: str) -> Callable[[ShardReply], None]:
            def _on(reply: ShardReply) -> None:
                self._note(shard_id, reply.ok)
                if reply.ok:
                    digests[shard_id] = dict(reply.value["records"])
                    report.shards_polled += 1
                else:
                    report.shards_unreachable += 1
                    report.unreachable.append(shard_id)
                waiting["n"] -= 1
                if waiting["n"] == 0:
                    self._reconcile(digests, report, callback)
            return _on

        if not shard_ids:
            callback(report)
            return
        for shard_id in shard_ids:
            self.transport.invoke(
                shard_id, "digest", {}, _polled(shard_id),
                timeout=self.rpc_timeout,
            )

    def _reconcile(
        self,
        digests: Dict[str, Dict[int, int]],
        report: SweepReport,
        callback: Callable[[SweepReport], None],
    ) -> None:
        """Plan pushes: (source shard) -> [(serial, target shard)]."""
        serials: set = set()
        for entries in digests.values():
            serials.update(entries)
        # Per source shard: which (serial, target) pairs it should feed.
        pushes: Dict[str, Dict[int, List[str]]] = {}
        for serial in sorted(serials):
            report.serials_scanned += 1
            expected = self._replicas_for(serial)
            holders = {
                shard_id: digests[shard_id][serial]
                for shard_id in digests
                if serial in digests[shard_id]
            }
            if not holders:
                continue
            freshest_epoch = max(holders.values())
            # Deterministic source choice: lowest shard id among freshest.
            source = min(s for s, e in holders.items() if e == freshest_epoch)
            targets = [
                shard_id
                for shard_id in expected
                if shard_id in digests  # only reachable replicas are fixable
                and holders.get(shard_id, -1) < freshest_epoch
            ]
            if targets:
                pushes.setdefault(source, {})[serial] = targets
            else:
                report.already_consistent += 1
        if not pushes:
            callback(report)
            return
        waiting = {"n": len(pushes)}

        def _source_done() -> None:
            waiting["n"] -= 1
            if waiting["n"] == 0:
                callback(report)

        for source, plan in sorted(pushes.items()):
            self._push_from(source, plan, report, _source_done)

    def _push_from(
        self,
        source: str,
        plan: Dict[int, List[str]],
        report: SweepReport,
        done: Callable[[], None],
    ) -> None:
        """Fetch the planned serials from ``source`` and install them."""
        serials = sorted(plan)

        def _on_fetch(reply: ShardReply) -> None:
            self._note(source, reply.ok)
            if not reply.ok:
                report.push_failures += len(serials)
                done()
                return
            installs = [
                (record, target)
                for record in reply.value["records"]
                for target in plan.get(record.identifier.serial, [])
            ]
            if not installs:
                done()
                return
            waiting = {"n": len(installs)}

            def _installed(target: str) -> Callable[[ShardReply], None]:
                def _on(install_reply: ShardReply) -> None:
                    self._note(target, install_reply.ok)
                    if install_reply.ok:
                        report.records_pushed += 1
                    else:
                        report.push_failures += 1
                    waiting["n"] -= 1
                    if waiting["n"] == 0:
                        done()
                return _on

            for record, target in installs:
                self.transport.invoke(
                    target, "install_record", {"record": record},
                    _installed(target), timeout=self.rpc_timeout,
                )

        self.transport.invoke(
            source, "fetch_records", {"serials": serials}, _on_fetch,
            timeout=self.rpc_timeout,
        )

    def sweep(self) -> SweepReport:
        """Synchronous convenience (in-process transports only)."""
        box: List[SweepReport] = []
        self.sweep_async(box.append)
        if not box:
            raise RuntimeError(
                "sweep did not complete synchronously; use sweep_async "
                "with the netsim transport"
            )
        return box[0]
