"""Consistent-hash ring: placement of claim records across shards.

The cluster routes every record by a content-derived key (the
identifier's compact encoding, whose serial is itself derived from the
photo's content hash — see :mod:`repro.cluster.shard`).  Placement must
be a pure function of (key, shard set): any frontend, with no shared
state, must route a key to the same replicas, and adding or removing a
shard must move only the ~1/N of keys whose arc the change touches —
the property that makes scale-out cheap (IPFS routes content addresses
over a node ring for the same reason).

Implementation is the classic Karger ring: each shard projects
``vnodes`` virtual points onto a 64-bit circle (blake2b of
``"shard#vnode"``), keys hash onto the same circle, and a key's primary
is the first virtual point at or after it clockwise.  Replicas continue
clockwise, skipping virtual points of shards already chosen, so a key
always resolves to *distinct* shards.  No randomness anywhere: the ring
is deterministic from the shard ids alone.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["HashRing", "RingError", "DEFAULT_VNODES"]

#: Virtual points per shard.  64 keeps the per-shard load imbalance
#: (std/mean ~ 1/sqrt(vnodes)) around 12% while ring rebuild stays
#: trivially cheap at any realistic shard count.
DEFAULT_VNODES = 64

_POINT_BYTES = 8  # 64-bit circle


class RingError(Exception):
    """Raised on invalid ring operations (unknown shard, too few shards)."""


def _position(material: bytes) -> int:
    """Map arbitrary bytes onto the 64-bit circle."""
    return int.from_bytes(
        hashlib.blake2b(material, digest_size=_POINT_BYTES).digest(), "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over named shards.

    Parameters
    ----------
    shard_ids:
        Initial shard names (order-insensitive; the ring is a pure
        function of the *set*).
    vnodes:
        Virtual points per shard.
    """

    def __init__(
        self, shard_ids: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise RingError("need at least one virtual node per shard")
        self.vnodes = int(vnodes)
        self._shards: Dict[str, List[int]] = {}
        # Parallel sorted arrays: point position -> owning shard.
        self._points: List[int] = []
        self._owners: List[str] = []
        # Precomputed lookup tables (built lazily, invalidated on
        # membership changes): per-point distinct-owner order plus the
        # numpy mirrors the batch placement path gathers from.
        self._invalidate_tables()
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- membership -----------------------------------------------------------

    @property
    def shard_ids(self) -> List[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: str) -> None:
        """Join a shard; only keys landing on its arcs change owners."""
        if not shard_id:
            raise RingError("shard id must be non-empty")
        if shard_id in self._shards:
            raise RingError(f"shard {shard_id!r} already on the ring")
        points = [
            _position(f"{shard_id}#{v}".encode("utf-8"))
            for v in range(self.vnodes)
        ]
        self._shards[shard_id] = points
        for point in points:
            # Ties on a 64-bit circle are ~impossible but must not
            # corrupt the parallel arrays: break them by shard id so
            # the ring stays a deterministic function of the shard set.
            index = bisect.bisect_left(self._points, point)
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < shard_id
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)
        self._invalidate_tables()

    def remove(self, shard_id: str) -> None:
        """Leave the ring; only keys owned by ``shard_id`` change owners."""
        if shard_id not in self._shards:
            raise RingError(f"shard {shard_id!r} is not on the ring")
        del self._shards[shard_id]
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != shard_id
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self._invalidate_tables()

    # -- lookup tables ----------------------------------------------------------

    def _invalidate_tables(self) -> None:
        self._replica_table: Optional[List[tuple]] = None
        self._points_array: Optional[np.ndarray] = None
        self._names_cache: Dict[int, List[tuple]] = {}

    def _names_for_count(self, count: int) -> List[tuple]:
        """Per-row replica-name tuples truncated to ``count`` (cached)."""
        cache = self._names_cache.get(count)
        if cache is None:
            cache = [row[:count] for row in self._replica_table]
            self._names_cache[count] = cache
        return cache

    def _build_tables(self) -> None:
        """Precompute the distinct-owner order after every ring point.

        A replica walk from point ``i`` visits owners clockwise and
        keeps the first occurrence of each shard.  Prepending point
        ``i``'s owner to the (deduplicated) order of point ``i+1``
        yields point ``i``'s order, so one backwards sweep costs
        O(points x shards) instead of O(points^2) — cheap enough to
        rebuild lazily after any membership change, and it turns every
        ``replicas`` call into a bisect plus a tuple slice.
        """
        n = len(self._points)
        table: List[tuple] = [()] * n
        order: List[str] = []
        # Two backwards passes: the first seeds the suffix with the
        # wrap-around owners, the second finalizes every entry.
        for _ in range(2):
            for i in range(n - 1, -1, -1):
                owner = self._owners[i]
                if order and order[0] == owner:
                    pass  # already the head: nothing moves
                else:
                    try:
                        order.remove(owner)
                    except ValueError:
                        pass
                    order.insert(0, owner)
                table[i] = tuple(order)
        self._replica_table = table
        self._points_array = np.array(self._points, dtype=np.uint64)

    def _table_index(self, key: bytes) -> int:
        """The replica-table row for ``key`` (successor ring point)."""
        return bisect.bisect_right(self._points, _position(key)) % len(self._points)

    # -- placement -------------------------------------------------------------

    def primary(self, key: bytes) -> str:
        """The shard owning ``key`` (first replica)."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: bytes, count: int) -> List[str]:
        """The ``count`` distinct shards responsible for ``key``.

        The first entry is the primary; the rest follow clockwise.
        Served from the precomputed lookup table;
        :meth:`_replicas_walk` is the reference oracle
        (``tests/perf/test_vectorized_vs_scalar.py`` keeps them equal).
        """
        self._check_count(count)
        if self._replica_table is None:
            self._build_tables()
        return list(self._names_for_count(count)[self._table_index(key)])

    def _check_count(self, count: int) -> None:
        if count < 1:
            raise RingError("replica count must be at least 1")
        if count > len(self._shards):
            raise RingError(
                f"cannot place {count} replicas on {len(self._shards)} shard(s)"
            )

    def _replicas_walk(self, key: bytes, count: int) -> List[str]:
        """Reference implementation: the clockwise distinct-owner walk."""
        self._check_count(count)
        start = bisect.bisect_right(self._points, _position(key))
        chosen: List[str] = []
        seen = set()
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == count:
                    return chosen
        raise RingError("ring exhausted before placing all replicas")  # pragma: no cover

    def replicas_many(self, keys: Sequence[bytes], count: int) -> List[List[str]]:
        """Replica sets for many keys in one vectorized pass.

        Row ``i`` equals ``self.replicas(keys[i], count)``.  Key
        positions hash in one contiguous buffer, the successor search
        is a single ``np.searchsorted``, and owners come from the
        precomputed replica table — the shape a batching frontend wants
        when routing thousands of status checks.
        """
        self._check_count(count)
        if not keys:
            return []
        if self._replica_table is None:
            self._build_tables()
        blob = b"".join(
            hashlib.blake2b(key, digest_size=_POINT_BYTES).digest() for key in keys
        )
        positions = np.frombuffer(blob, dtype=">u8")
        rows = np.searchsorted(self._points_array, positions, side="right")
        rows %= len(self._points)
        names = self._names_for_count(count)
        return [list(names[row]) for row in rows.tolist()]

    def primary_many(self, keys: Sequence[bytes]) -> List[str]:
        """Primary owners for many keys (vectorized)."""
        return [row[0] for row in self.replicas_many(keys, 1)]

    def assignment(self, keys: Sequence[bytes]) -> Dict[bytes, str]:
        """Primary owner for every key (rebalancing analysis helper)."""
        return dict(zip(keys, self.primary_many(list(keys))))

    # -- diagnostics ------------------------------------------------------------

    def load_share(self, keys: Sequence[bytes]) -> Dict[str, float]:
        """Fraction of ``keys`` each shard owns as primary."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.primary(key)] += 1
        total = max(len(keys), 1)
        return {shard: counts[shard] / total for shard in sorted(counts)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HashRing(shards={len(self._shards)}, vnodes={self.vnodes}, "
            f"points={len(self._points)})"
        )
