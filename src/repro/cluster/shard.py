"""Shard nodes: one replica's slice of the cluster ledger.

A :class:`ClusterShard` wraps a plain :class:`~repro.ledger.ledger.Ledger`
whose ``ledger_id`` is the *cluster's* logical id — identifiers minted
anywhere in the cluster read ``irs1:<cluster>:<serial>`` and any replica
of the owning group can serve them.  Each shard signs its own
:class:`~repro.ledger.proofs.StatusProof` answers with its own key pair
(per-shard signing keeps key compromise local to one node); the
:class:`ClusterDirectory` maps proof fingerprints back to shards so
validators can verify any replica's answer.

**Content-derived serials.**  A single logical ledger with many serial
allocators cannot hand out ``store.allocate_serial()`` numbers — two
shards would mint colliding identifiers.  Instead the serial *is* the
content: the first 8 bytes of ``SHA-256("irs-cluster-serial:" + content
hash)``.  That makes claims idempotent (a replayed or re-replicated
claim maps to the same serial), makes placement routable from either
the content hash (claim time) or the identifier (status time), and
costs nothing: a 63-bit space holds billions of photos with negligible
collision probability, and a real collision is rejected loudly.

**Replication protocol surface.**  The methods here are the wire
protocol (dict payloads in, dict/objects out) so the same shard code
serves the in-process transport and the netsim RPC endpoints:

* ``claim`` — apply a coordinator-prepared claim (serial + TSA token
  chosen once by the frontend, so replicas store identical records).
* ``challenge`` / ``revoke`` / ``unrevoke`` — the standard ownership
  challenge-response, verified *by the coordinator replica*; verified
  flips then propagate to peers as ``apply_state``.
* ``apply_state`` — follower/read-repair application, last-writer-wins
  on ``revocation_epoch``.
* ``status`` — batched signed statuses, each carrying the record's
  epoch so quorum readers can detect divergence.
* ``digest`` / ``fetch_records`` / ``install_record`` — the
  anti-entropy surface: a cheap ``{serial: epoch}`` summary for
  reconciliation, full-record export from a fresh holder, and
  idempotent LWW installation on a stale or wiped replica.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ClaimError, RevocationError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.signatures import KeyPair, PublicKey
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.durable import DurableStore
from repro.ledger.ledger import Ledger, LedgerConfig
from repro.ledger.records import RevocationState
from repro.ledger.recovery import RecoveryReport, recover_store

__all__ = ["ClusterShard", "ClusterDirectory", "content_serial"]

_SERIAL_SALT = b"irs-cluster-serial:"


def content_serial(content_hash: str) -> int:
    """Deterministic 63-bit serial derived from a content hash."""
    digest = hashlib.sha256(_SERIAL_SALT + content_hash.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


class ClusterShard:
    """One replica node: a ledger slice plus the replication protocol."""

    def __init__(
        self,
        shard_id: str,
        cluster_id: str,
        timestamp_authority: TimestampAuthority,
        keypair: Optional[KeyPair] = None,
        clock: Optional[Callable[[], float]] = None,
        config: Optional[LedgerConfig] = None,
        durable: Optional[DurableStore] = None,
        snapshot_interval: int = 64,
    ):
        self.shard_id = shard_id
        self.cluster_id = cluster_id
        self.ledger = Ledger(
            ledger_id=cluster_id,
            timestamp_authority=timestamp_authority,
            keypair=keypair,
            clock=clock,
            config=config,
        )
        # Replication-plane counters (client-plane load lives on the
        # wrapped ledger's counters).
        self.states_applied = 0
        self.stale_applies_ignored = 0
        # Durability: when a simulated disk is attached, every sealed
        # ledger event is journaled to it, with a chain-anchored
        # snapshot every ``snapshot_interval`` events to bound replay.
        self.durable = durable
        self.snapshot_interval = max(1, int(snapshot_interval))
        self._events_since_snapshot = 0
        if durable is not None:
            self.ledger.store.attach_journal(self._journal_event)

    # -- durability -----------------------------------------------------------------

    def _journal_event(self, event) -> None:
        """WAL append for one sealed event, snapshotting periodically."""
        self.durable.append_event(event)
        self._events_since_snapshot += 1
        if self._events_since_snapshot >= self.snapshot_interval:
            self.write_snapshot()

    def write_snapshot(self) -> None:
        """Persist a chain-anchored snapshot of the current view."""
        store = self.ledger.store
        self.durable.write_snapshot(
            store.records_map(),
            store.next_serial,
            store.events.head_seq,
            store.events.head_hash,
        )
        self._events_since_snapshot = 0

    def recover(self) -> RecoveryReport:
        """Restart path: rebuild state from the local durable store.

        Loads the newest valid snapshot, verifies the WAL chain,
        replays the proven tail, installs the result, and truncates the
        disk to the verified prefix so the resumed chain and the log on
        disk agree.  The report's ``evidence`` names every torn,
        corrupted, or truncated structure detected; whatever was lost
        past the truncation point must come back via peer backfill.
        """
        if self.durable is None:
            raise RuntimeError(
                f"shard {self.shard_id!r} has no durable store to recover"
            )
        report = recover_store(self.durable)
        store = self.ledger.store
        store.restore(
            report.records,
            report.next_serial,
            report.head_seq,
            report.head_hash,
        )
        if report.truncation is not None:
            self.durable.truncate_after(
                report.truncation[0], report.truncation[1], report.head_seq
            )
        self._events_since_snapshot = 0
        return report

    # -- identity -----------------------------------------------------------------

    @property
    def public_key(self) -> PublicKey:
        return self.ledger.public_key

    @property
    def fingerprint(self) -> str:
        return self.ledger.fingerprint

    def _identifier(self, serial: int) -> PhotoIdentifier:
        return PhotoIdentifier(ledger_id=self.cluster_id, serial=serial)

    # -- protocol: claim ------------------------------------------------------------

    def claim(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Apply a coordinator-prepared claim (idempotent)."""
        serial = payload["serial"]
        existing = self.ledger.store.get(serial)
        if existing is not None:
            if existing.content_hash == payload["content_hash"]:
                return {"serial": serial, "duplicate": True}
            raise ClaimError(
                f"serial {serial} already claimed for different content"
            )
        record = self.ledger.claim(
            content_hash=payload["content_hash"],
            content_signature=payload["content_signature"],
            public_key=payload["public_key"],
            initially_revoked=payload.get("initially_revoked", False),
            custodial=payload.get("custodial", False),
            serial=serial,
            timestamp=payload["timestamp"],
        )
        return {"serial": record.identifier.serial, "duplicate": False}

    # -- protocol: ownership actions --------------------------------------------------

    def challenge(self, payload: Dict[str, Any]) -> bytes:
        return self.ledger.make_challenge(self._identifier(payload["serial"]))

    def revoke(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        record = self.ledger.revoke(
            self._identifier(payload["serial"]),
            payload["nonce"],
            payload["signature"],
        )
        return {"state": record.state.value, "epoch": record.revocation_epoch}

    def unrevoke(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        record = self.ledger.unrevoke(
            self._identifier(payload["serial"]),
            payload["nonce"],
            payload["signature"],
        )
        return {"state": record.state.value, "epoch": record.revocation_epoch}

    # -- protocol: replication --------------------------------------------------------

    def apply_state(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Adopt a peer-verified revocation state (LWW by epoch).

        Used on the follower path of quorum writes and by read repair.
        The coordinator already ran the challenge-response proof; the
        intra-cluster channel is trusted (one operator's nodes), so the
        follower only enforces monotonicity.
        """
        serial = payload["serial"]
        record = self.ledger.store.get(serial)
        if record is None:
            raise RevocationError(
                f"cannot apply state to unknown serial {serial}"
            )
        epoch = payload["epoch"]
        if epoch <= record.revocation_epoch:
            self.stale_applies_ignored += 1
            return {"applied": False, "epoch": record.revocation_epoch}
        apply_time = self.ledger.now()
        self.ledger.store.apply_flip(
            serial,
            RevocationState(payload["state"]),
            epoch,
            "apply_state",
            apply_time,
        )
        self.ledger.store.log_operation("apply_state", serial, apply_time)
        self.states_applied += 1
        return {"applied": True, "epoch": epoch}

    # -- protocol: anti-entropy -------------------------------------------------------

    def digest(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``{serial: epoch}`` summary for anti-entropy reconciliation.

        ``payload['serials']`` (optional) restricts the summary; by
        default every held record is reported.
        """
        serials = payload.get("serials")
        store = self.ledger.store
        if serials is None:
            entries = {
                record.identifier.serial: record.revocation_epoch
                for record in store.records()
            }
        else:
            entries = {}
            for serial in serials:
                record = store.get(serial)
                if record is not None:
                    entries[serial] = record.revocation_epoch
        return {"records": entries}

    def fetch_records(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Export full records for re-replication (cloned, never aliased)."""
        records = []
        for serial in payload["serials"]:
            record = self.ledger.store.get(serial)
            if record is not None:
                records.append(replace(record))
        return {"records": records}

    def install_record(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Adopt a re-replicated record (idempotent, LWW on epoch).

        Unlike ``apply_state`` this carries the whole claim record, so
        it restores replicas that lost their disk entirely.  A record
        already held at an equal or newer epoch is left untouched.
        """
        incoming = payload["record"]
        serial = incoming.identifier.serial
        existing = self.ledger.store.get(serial)
        if existing is None:
            self.ledger.store.put(
                replace(incoming), time=self.ledger.now(), kind="install"
            )
            self.states_applied += 1
            return {"installed": True, "epoch": incoming.revocation_epoch}
        if incoming.revocation_epoch <= existing.revocation_epoch:
            self.stale_applies_ignored += 1
            return {"installed": False, "epoch": existing.revocation_epoch}
        install_time = self.ledger.now()
        self.ledger.store.apply_flip(
            serial,
            incoming.state,
            incoming.revocation_epoch,
            "install",
            install_time,
        )
        self.ledger.store.log_operation("install_record", serial, install_time)
        self.states_applied += 1
        return {"installed": True, "epoch": incoming.revocation_epoch}

    # -- protocol: status -------------------------------------------------------------

    def status(self, payload: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Batched signed statuses, each with the record's epoch."""
        answers: List[Dict[str, Any]] = []
        for serial in payload["serials"]:
            record = self.ledger.store.get(serial)
            if record is None:
                answers.append({"serial": serial, "error": "unknown serial"})
                continue
            proof = self.ledger.status(self._identifier(serial))
            answers.append(
                {
                    "serial": serial,
                    "proof": proof,
                    "epoch": record.revocation_epoch,
                    "state": record.state.value,
                }
            )
        return answers

    # -- transport wiring -------------------------------------------------------------

    def rpc_handlers(self) -> Dict[str, Callable[[Any], Any]]:
        """Method table for endpoint registration (both transports)."""
        return {
            "claim": self.claim,
            "challenge": self.challenge,
            "revoke": self.revoke,
            "unrevoke": self.unrevoke,
            "apply_state": self.apply_state,
            "status": self.status,
            "digest": self.digest,
            "fetch_records": self.fetch_records,
            "install_record": self.install_record,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterShard({self.shard_id!r}, "
            f"records={len(self.ledger.store)})"
        )


class ClusterDirectory:
    """Maps status-proof fingerprints back to shard verification keys."""

    def __init__(self, shards: Optional[List[ClusterShard]] = None):
        self._by_fingerprint: Dict[str, ClusterShard] = {}
        for shard in shards or []:
            self.add(shard)

    def add(self, shard: ClusterShard) -> None:
        self._by_fingerprint[shard.fingerprint] = shard

    def verify(self, proof) -> bool:
        """True iff ``proof`` was signed by a known cluster shard."""
        shard = self._by_fingerprint.get(proof.ledger_fingerprint)
        return shard is not None and proof.verify(shard.public_key)

    def shard_for(self, fingerprint: str) -> Optional[ClusterShard]:
        return self._by_fingerprint.get(fingerprint)

    def __len__(self) -> int:
        return len(self._by_fingerprint)
