"""Failure detection: timeout-based suspicion and recovery probation.

The cluster has no heartbeat plane; evidence of shard health is the
request traffic itself.  Every RPC outcome is reported here: a
completed call clears a shard, a timeout or transport error counts
against it.  After ``failure_threshold`` *consecutive* failures a shard
becomes suspect, and routing (frontend and quorum executor) stops
sending it primary traffic.  Suspicion is not permanent: after
``probation`` seconds of sim/wall time the detector lets one request
through again (half-open, circuit-breaker style), so a recovered or
wrongly accused shard rejoins without operator action.

Timeout-based suspicion is deliberately conservative — a slow shard and
a dead shard look identical from the frontend, which is exactly the
ambiguity quorum reads are built to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

__all__ = ["FailureDetector", "ShardHealth"]


@dataclass
class ShardHealth:
    """Per-shard evidence ledger."""

    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0
    suspected_at: float = field(default=float("nan"))
    last_probe_at: float = field(default=float("nan"))

    @property
    def suspected(self) -> bool:
        return self.suspected_at == self.suspected_at  # not NaN


class FailureDetector:
    """Consecutive-timeout suspicion with half-open probation.

    Parameters
    ----------
    clock:
        Time source (sim clock in netsim mode, any monotonic callable
        otherwise).
    failure_threshold:
        Consecutive failures before a shard is suspected.
    probation:
        Seconds a suspect waits before the detector admits one probe
        request to test recovery.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 3,
        probation: float = 10.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if probation <= 0:
            raise ValueError("probation must be positive")
        self._clock = clock
        self.failure_threshold = int(failure_threshold)
        self.probation = float(probation)
        self._health: Dict[str, ShardHealth] = {}
        self.suspicions_raised = 0
        self.recoveries = 0
        self.probes_admitted = 0

    def _entry(self, shard_id: str) -> ShardHealth:
        if shard_id not in self._health:
            self._health[shard_id] = ShardHealth()
        return self._health[shard_id]

    # -- evidence ---------------------------------------------------------------

    def record_success(self, shard_id: str) -> None:
        entry = self._entry(shard_id)
        if entry.suspected:
            self.recoveries += 1
            entry.suspected_at = float("nan")
            entry.last_probe_at = float("nan")
        entry.consecutive_failures = 0
        entry.total_successes += 1

    def record_failure(self, shard_id: str) -> None:
        entry = self._entry(shard_id)
        entry.consecutive_failures += 1
        entry.total_failures += 1
        if (
            not entry.suspected
            and entry.consecutive_failures >= self.failure_threshold
        ):
            entry.suspected_at = self._clock()
            self.suspicions_raised += 1

    # -- verdicts ----------------------------------------------------------------

    def is_suspect(self, shard_id: str) -> bool:
        """True while a shard should receive no routine traffic.

        A suspect past its probation window is allowed one probe: the
        first ``is_suspect`` call after the window returns False (and
        arms the next window), so exactly one request flows through
        until its outcome is reported.
        """
        entry = self._health.get(shard_id)
        if entry is None or not entry.suspected:
            return False
        now = self._clock()
        since = entry.last_probe_at if entry.last_probe_at == entry.last_probe_at else entry.suspected_at
        if now - since >= self.probation:
            entry.last_probe_at = now
            self.probes_admitted += 1
            return False
        return True

    def live(self, shard_ids: Iterable[str]) -> List[str]:
        """The subset of ``shard_ids`` currently trusted, in input order."""
        return [s for s in shard_ids if not self.is_suspect(s)]

    def suspects(self) -> List[str]:
        return sorted(
            shard for shard, entry in self._health.items() if entry.suspected
        )

    def health(self, shard_id: str) -> ShardHealth:
        return self._entry(shard_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FailureDetector(threshold={self.failure_threshold}, "
            f"suspects={self.suspects()})"
        )
