"""Cluster-on-netsim wiring: shards and frontend as simulated nodes.

:class:`SimulatedCluster` stands the whole subsystem up inside the
discrete-event simulator: each shard is a :class:`~repro.netsim.node.Node`
with an :class:`~repro.netsim.transport.RpcEndpoint` serving the shard
protocol, the frontend is a node with links to every shard, and the
:class:`NetsimShardTransport` adapts the callback RPC layer to the
:class:`~repro.cluster.replication.ShardTransport` interface the
frontend coordinates over.

Shards run the endpoint's *serial-server* cost model: a status batch
occupies its shard for ``batch_overhead + per_item * len(batch)``
seconds, so a shard has a measurable capacity ceiling and adding shards
visibly moves the throughput and tail-latency curves — the E17
experiment.  Faults are first-class: :meth:`SimulatedCluster.kill_shard`
silences a shard's endpoint (requests delivered, never answered), which
callers only discover through RPC timeouts, exercising the failure
detector and quorum failover exactly as a crashed process would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.durable import DurableStore
from repro.ledger.events import replay
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest
from repro.ledger.recovery import records_digest
from repro.netsim.latency import LatencyModel, lan_latency
from repro.netsim.link import Network
from repro.netsim.node import Node
from repro.netsim.rand import RngRegistry
from repro.netsim.simulator import Simulator, SkewedClock
from repro.netsim.transport import RpcEndpoint
from repro.cluster.antientropy import AntiEntropySweeper
from repro.cluster.frontend import ClusterConfig, ClusterFrontend
from repro.cluster.health import FailureDetector
from repro.cluster.replication import ShardReply
from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterDirectory, ClusterShard, content_serial
from repro.obs import Observability

__all__ = [
    "SimulatedCluster",
    "NetsimShardTransport",
    "ShardCostModel",
    "ShardRecovery",
]


@dataclass(frozen=True)
class ShardRecovery:
    """One shard restart's recovery outcome, captured at restart time.

    The cluster keeps evolving after a recovery (read repair,
    anti-entropy), so the consistency checker needs the state *as
    recovered*, not as it ended up: ``installed_digest`` is what the
    shard adopted, ``replayed_digest`` an independent snapshot+tail
    replay of the same report — the "recovered state equals replayed
    log" invariant in digest form.
    """

    shard_id: str
    at: float
    evidence: tuple
    installed_digest: str
    replayed_digest: str
    records_recovered: int
    events_replayed: int


@dataclass
class ShardCostModel:
    """Per-request shard occupancy (the serial-server cost function).

    Defaults model a small key-value service: ~50 us fixed overhead per
    request plus ~120 us of signing/lookup per status item, i.e. a
    single shard saturates around 6-8k status items/second.
    """

    request_overhead: float = 50e-6
    per_status_item: float = 120e-6
    per_write: float = 500e-6

    def cost(self, method: str, payload: Any) -> float:
        if method == "status":
            return self.request_overhead + self.per_status_item * len(
                payload["serials"]
            )
        if method in ("claim", "revoke", "unrevoke", "apply_state", "install_record"):
            return self.request_overhead + self.per_write
        return self.request_overhead


class NetsimShardTransport:
    """ShardTransport over netsim RPC endpoints.

    Advertises ``supports_deadlines``: callers may pass a per-call
    ``timeout`` and the effective RPC timeout shrinks to fit it —
    deadline propagation reaching the wire.
    """

    supports_deadlines = True

    def __init__(
        self,
        frontend_node: str,
        endpoints: Dict[str, RpcEndpoint],
        timeout: float,
        retries: int = 0,
        request_bytes: int = 256,
        response_bytes: int = 512,
    ):
        self._frontend_node = frontend_node
        self._endpoints = endpoints
        self.timeout = timeout
        self.retries = retries
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.calls = 0

    def shard_ids(self) -> List[str]:
        return sorted(self._endpoints)

    def invoke(
        self,
        shard_id: str,
        method: str,
        payload: Any,
        callback: Callable[[ShardReply], None],
        timeout: Optional[float] = None,
    ) -> None:
        self.calls += 1
        endpoint = self._endpoints.get(shard_id)
        if endpoint is None:
            callback(ShardReply(shard_id, error=f"unknown shard {shard_id!r}"))
            return

        def _on_result(result) -> None:
            if result.ok:
                callback(ShardReply(shard_id, value=result.value))
            else:
                callback(ShardReply(shard_id, error=str(result.error)))

        effective_timeout = self.timeout
        if timeout is not None:
            # Deadline propagation: never wait longer than the caller's
            # remaining budget (floored so a nearly-spent budget still
            # sends one RPC rather than an instant timeout).
            effective_timeout = max(min(self.timeout, timeout), 1e-4)
        endpoint.call(
            self._frontend_node,
            method,
            payload,
            _on_result,
            request_bytes=self.request_bytes,
            response_bytes=self.response_bytes,
            timeout=effective_timeout,
            retries=self.retries,
        )


class SimulatedCluster:
    """A full cluster inside one discrete-event simulation.

    Parameters
    ----------
    num_shards / config:
        Ring size and replication/batching configuration.
    seed:
        Root seed; everything (keys, latencies, workloads drawing from
        :attr:`rngs`) derives from it.
    shard_latency:
        Frontend<->shard one-way link latency (LAN by default: the
        cluster is one operator's deployment).
    cost_model:
        Shard occupancy per request; None disables the capacity model
        (infinite shard concurrency).
    rpc_timeout / rpc_retries:
        Transport-level failure semantics; the timeout bounds how long
        a dead replica can stall a quorum.
    instrument:
        When True, builds an :class:`~repro.obs.Observability` over the
        *simulation* clock (``self.obs``), hands it to the frontend and
        its resilience machinery, and wraps every shard RPC handler in
        a ``shard.<method>`` span plus ``shard_requests_total`` counter.
        The obs clock is created here, not passed in, so spans and the
        event schedule can never disagree about the time base.  Default
        False: ``self.obs is None`` and nothing is instrumented.
    """

    def __init__(
        self,
        num_shards: int,
        config: Optional[ClusterConfig] = None,
        seed: int = 0,
        cluster_id: str = "cluster",
        shard_latency: Optional[LatencyModel] = None,
        cost_model: Optional[ShardCostModel] = ShardCostModel(),
        rpc_timeout: float = 0.25,
        rpc_retries: int = 0,
        key_bits: int = 512,
        failure_threshold: int = 2,
        probation: float = 5.0,
        filterset=None,
        instrument: bool = False,
        durable: bool = True,
        snapshot_interval: int = 64,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.simulator = Simulator()
        self.rngs = RngRegistry(seed=seed)
        self.network = Network(self.simulator, self.rngs.stream("net"))
        clock = self.simulator.clock().now
        self.obs: Optional[Observability] = (
            Observability(clock) if instrument else None
        )
        self.tsa = TimestampAuthority(
            keypair=KeyPair.generate(bits=key_bits, rng=self.rngs.stream("tsa")),
            clock=clock,
        )
        self.cluster_id = cluster_id
        self.cost_model = cost_model
        self.shards: Dict[str, ClusterShard] = {}
        self.endpoints: Dict[str, RpcEndpoint] = {}
        # Simulated disks (``durable=True``): every shard journals its
        # event chain to one, and restarts recover from it instead of
        # rejoining with whatever happened to be in memory.
        self.disks: Dict[str, DurableStore] = {}
        self.recoveries: List[ShardRecovery] = []
        # Per-shard clocks: same simulated time base, individually
        # skewable by the chaos harness (clock-drift faults).
        self.shard_clocks: Dict[str, SkewedClock] = {}
        shard_ids = [f"shard-{i}" for i in range(num_shards)]
        self.ring = HashRing(shard_ids)

        frontend_name = "frontend"
        self.frontend_name = frontend_name
        self.network.add_node(Node(frontend_name, self.simulator))
        latency = shard_latency or lan_latency()
        for shard_id in shard_ids:
            shard_clock = SkewedClock(clock)
            self.shard_clocks[shard_id] = shard_clock
            disk = DurableStore() if durable else None
            shard = ClusterShard(
                shard_id,
                cluster_id,
                self.tsa,
                keypair=KeyPair.generate(
                    bits=key_bits, rng=self.rngs.stream(f"key:{shard_id}")
                ),
                clock=shard_clock.now,
                durable=disk,
                snapshot_interval=snapshot_interval,
            )
            if disk is not None:
                self.disks[shard_id] = disk
            self.shards[shard_id] = shard
            node = self.network.add_node(Node(shard_id, self.simulator))
            self.network.connect(frontend_name, shard_id, latency)
            endpoint = RpcEndpoint(
                node,
                self.network,
                cost_fn=(cost_model.cost if cost_model is not None else None),
            )
            for method, handler in shard.rpc_handlers().items():
                if self.obs is not None:
                    handler = self._traced_handler(shard_id, method, handler)
                endpoint.register(method, handler)
            self.endpoints[shard_id] = endpoint

        self.directory = ClusterDirectory(list(self.shards.values()))
        self.transport = NetsimShardTransport(
            frontend_name, self.endpoints, timeout=rpc_timeout, retries=rpc_retries
        )
        self.detector = FailureDetector(
            clock, failure_threshold=failure_threshold, probation=probation
        )
        self.frontend = ClusterFrontend(
            cluster_id,
            self.ring,
            self.transport,
            self.tsa,
            detector=self.detector,
            config=config,
            clock=clock,
            scheduler=self.simulator.schedule,
            filterset=filterset,
            rng=self.rngs.stream("resilience"),
            obs=self.obs,
        )

    def _traced_handler(self, shard_id: str, method: str, handler):
        """Wrap one shard RPC handler in a span + request counter.

        Shard spans are roots (the frontend's batch span lives in a
        different callback frame) and have zero sim duration — service
        occupancy is charged by the endpoint's cost model, not inside
        the handler — but they still record *that* and *when* each
        request hit each replica, which is what the trace needs.
        """

        def _traced(payload):
            # repro-lint: allow[obs-purity] wrapper installed only under the obs guard at the register() call site
            self.obs.counter(
                "shard_requests_total", shard=shard_id, method=method
            ).inc()
            # repro-lint: allow[obs-purity] wrapper installed only under the obs guard at the register() call site
            span = self.obs.start(f"shard.{method}", shard=shard_id)
            try:
                result = handler(payload)
            except Exception as exc:
                span.status = "error"
                span.end(ok=False, error=str(exc))
                raise
            span.end(ok=True)
            return result

        return _traced

    # -- faults -------------------------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """Crash a shard: delivered requests are never answered."""
        self.endpoints[shard_id].down = True

    def revive_shard(self, shard_id: str) -> None:
        self.endpoints[shard_id].down = False

    def restart_shard(self, shard_id: str, wipe: bool = False) -> int:
        """Bring a crashed shard back, with its state kept or lost.

        ``wipe=True`` models a crash that took the disk: memory *and*
        the durable store are lost, and the replica rejoins empty to be
        refilled by re-replication and read repair.  Otherwise, a shard
        with a durable store runs the real restart path — snapshot
        load, chain verification, tail replay, disk truncation — and
        the recovery outcome (including an independently replayed
        digest) is captured in :attr:`recoveries` for the consistency
        checker.  Returns the number of records lost from memory.
        """
        shard = self.shards[shard_id]
        if wipe:
            lost = shard.ledger.store.wipe()
            disk = self.disks.get(shard_id)
            if disk is not None:
                disk.wipe()
            self.revive_shard(shard_id)
            return lost
        disk = self.disks.get(shard_id)
        if disk is not None:
            report = shard.recover()
            replayed = replay(
                report.tail_events, base=report.snapshot_records
            )
            if report.suffix_lost:
                self._schedule_backfill(shard_id)
            self.recoveries.append(
                ShardRecovery(
                    shard_id=shard_id,
                    at=self.simulator.now,
                    evidence=report.evidence,
                    installed_digest=records_digest(
                        shard.ledger.store.records_map()
                    ),
                    replayed_digest=records_digest(replayed),
                    records_recovered=len(report.records),
                    events_replayed=len(report.tail_events),
                )
            )
            if self.obs is not None:
                self.obs.counter(
                    "shard_recoveries_total", shard=shard_id
                ).inc()
                self.obs.counter(
                    "recovery_records_restored_total", shard=shard_id
                ).inc(len(report.records))
                if report.evidence:
                    self.obs.counter(
                        "recovery_corruptions_total", shard=shard_id
                    ).inc(len(report.evidence))
        self.revive_shard(shard_id)
        return 0

    def _schedule_backfill(self, shard_id: str) -> None:
        """Hinted-handoff stand-in after a recovery shed log suffix.

        A truncated replica holds *convincingly stale* state (old
        epochs, not missing records), so quorum reads through it can
        observe pre-acknowledgement state until something reconciles
        it.  Scheduling an anti-entropy sweep right behind the restart
        pulls the lost writes back from peers promptly instead of
        waiting for the next externally scheduled sweep.
        """
        sweeper = AntiEntropySweeper(
            self.cluster_id,
            self.ring,
            self.transport,
            self.frontend.config.replication_factor,
            on_result=self.frontend._record_result,
            obs=self.obs,
        )
        self.simulator.schedule_at(
            self.simulator.now + 0.05,
            sweeper.sweep_async,
            lambda report: None,
        )

    def inject_storage_fault(self, shard_id: str, kind: str) -> bool:
        """Damage a shard's durable store; True iff the fault landed.

        Kinds: ``torn`` (final WAL frame cut short), ``corrupt`` (one
        byte flipped in the newest segment), ``snapshot`` (newest
        snapshot damaged).  A fault can miss — an empty disk has
        nothing to tear — and the checker only demands detection for
        faults that actually landed.
        """
        disk = self.disks.get(shard_id)
        if disk is None:
            return False
        if kind == "torn":
            return disk.tear_final_record()
        if kind == "corrupt":
            return disk.corrupt_random_byte(self.rngs.stream("storage"))
        if kind == "snapshot":
            return disk.corrupt_latest_snapshot()
        raise ValueError(f"unknown storage fault kind {kind!r}")

    def isolate_shards(self, shard_ids) -> None:
        """Sever the frontend links of ``shard_ids`` (a partition)."""
        for shard_id in shard_ids:
            self.network.link_between(self.frontend_name, shard_id).sever()

    def reconnect_shards(self, shard_ids) -> None:
        for shard_id in shard_ids:
            self.network.link_between(self.frontend_name, shard_id).heal()

    def skew_clock(self, shard_id: str, offset: float) -> None:
        """Drift one shard's local clock by ``offset`` seconds."""
        self.shard_clocks[shard_id].offset = float(offset)

    # -- inspection ----------------------------------------------------------------

    def replica_states(self) -> Dict[str, Dict[int, tuple]]:
        """Every replica's ``{serial: (state, epoch)}`` snapshot.

        The raw material for the chaos consistency checker's
        convergence verdict and for deterministic state digests.
        """
        return {
            shard_id: {
                record.identifier.serial: (
                    record.state.value,
                    record.revocation_epoch,
                )
                for record in shard.ledger.store.records()
            }
            for shard_id, shard in sorted(self.shards.items())
        }

    # -- population ----------------------------------------------------------------

    def seed_population(
        self,
        count: int,
        revoked_fraction: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "ClusterPopulation":
        """Install ``count`` synthetic claims directly on the replicas.

        The fast-path equivalent of
        :func:`repro.workload.population.populate_ledger` for clusters:
        one shared signature/timestamp object, real content-derived
        serials, real ring placement, real revocation state on every
        replica.  Load experiments start from here rather than paying
        per-record RSA through the wire.
        """
        if not 0.0 <= revoked_fraction <= 1.0:
            raise ValueError("revoked_fraction must be in [0, 1]")
        rng = rng or self.rngs.stream("population")
        keypair = KeyPair.generate(bits=512, rng=rng)
        shared_hash = sha256_hex(f"{self.cluster_id}:bulk-shared".encode())
        shared_signature = keypair.sign(shared_hash.encode("utf-8"))
        shared_timestamp = self.tsa.issue(claim_digest(shared_hash, keypair.public))
        revoked_mask = rng.uniform(size=count) < revoked_fraction
        identifiers: List[PhotoIdentifier] = []
        r = self.frontend.config.replication_factor
        for i in range(count):
            content_hash = sha256_hex(f"{self.cluster_id}:photo:{i}".encode())
            serial = content_serial(content_hash)
            identifier = PhotoIdentifier(self.cluster_id, serial)
            revoked = bool(revoked_mask[i])
            for shard_id in self.ring.replicas(identifier.to_compact(), r):
                store = self.shards[shard_id].ledger.store
                store.put(
                    ClaimRecord(
                        identifier=identifier,
                        content_hash=content_hash,
                        content_signature=shared_signature,
                        public_key=keypair.public,
                        timestamp=shared_timestamp,
                        state=(
                            RevocationState.REVOKED
                            if revoked
                            else RevocationState.NOT_REVOKED
                        ),
                        revocation_epoch=1 if revoked else 0,
                    )
                )
            identifiers.append(identifier)
        return ClusterPopulation(
            identifiers=identifiers, revoked_mask=revoked_mask, owner=keypair
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedCluster(shards={len(self.shards)}, "
            f"r={self.frontend.config.replication_factor})"
        )


@dataclass
class ClusterPopulation:
    """Ground truth for a seeded cluster population."""

    identifiers: List[PhotoIdentifier]
    revoked_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    # The key pair every seeded claim was signed with — lets chaos
    # workloads revoke seeded records through the real ownership proof.
    owner: Optional[KeyPair] = None

    @property
    def size(self) -> int:
        return len(self.identifiers)

    def revoked(self, index: int) -> bool:
        return bool(self.revoked_mask[index])
