"""Horizontally scaled ledger service: sharding, replication, batching.

The single wire-agnostic :class:`~repro.ledger.ledger.Ledger` of the
paper's section 3.2 reproduces the *protocol*; this package reproduces
the *service* the Appendix economics assume — a ledger that serves
planetary status-check load and survives node failures:

* :mod:`repro.cluster.ring` — consistent-hash placement of records
  over N shards (virtual nodes, ~1/N movement on membership change).
* :mod:`repro.cluster.shard` — replica nodes wrapping ``Ledger`` with
  per-shard ``StatusProof`` signing and content-derived serials.
* :mod:`repro.cluster.replication` — R-way quorum writes and reads
  with read repair on divergence.
* :mod:`repro.cluster.frontend` — the stateless router: per-shard
  batching, bounded in-flight backpressure, Bloom pre-check.
* :mod:`repro.cluster.health` — timeout-based failure suspicion with
  half-open probation.
* :mod:`repro.cluster.antientropy` — digest reconciliation and
  re-replication of records a replica missed or lost.
* :mod:`repro.cluster.simnet` — the whole cluster as netsim nodes with
  RPC latency, finite shard capacity, and injectable crashes (E17).

The frontend additionally hosts the resilience layer
(:mod:`repro.resilience`): deadlines, bounded backoff retries, circuit
breakers, load shedding, degraded filter-backed reads, and hinted
handoff of missed replica writes.
"""

from repro.cluster.ring import HashRing, RingError, DEFAULT_VNODES
from repro.cluster.shard import ClusterShard, ClusterDirectory, content_serial
from repro.cluster.replication import (
    Hint,
    HintQueue,
    LocalShardTransport,
    QuorumExecutor,
    QuorumResult,
    ShardReply,
    ShardTransport,
    StatusCollector,
    StatusOutcome,
    majority,
)
from repro.cluster.antientropy import AntiEntropySweeper, SweepReport
from repro.cluster.frontend import (
    ClusterAnswer,
    ClusterConfig,
    ClusterFrontend,
    FrontendStats,
)
from repro.cluster.health import FailureDetector, ShardHealth
from repro.cluster.simnet import (
    NetsimShardTransport,
    ShardCostModel,
    SimulatedCluster,
)

__all__ = [
    "HashRing",
    "RingError",
    "DEFAULT_VNODES",
    "ClusterShard",
    "ClusterDirectory",
    "content_serial",
    "Hint",
    "HintQueue",
    "AntiEntropySweeper",
    "SweepReport",
    "LocalShardTransport",
    "QuorumExecutor",
    "QuorumResult",
    "ShardReply",
    "ShardTransport",
    "StatusCollector",
    "StatusOutcome",
    "majority",
    "ClusterAnswer",
    "ClusterConfig",
    "ClusterFrontend",
    "FrontendStats",
    "FailureDetector",
    "ShardHealth",
    "NetsimShardTransport",
    "ShardCostModel",
    "SimulatedCluster",
]
