"""Replica groups: quorum writes, quorum reads, read repair.

Replication here is leaderless in the Dynamo style, scoped per key by
the ring: a key's R replicas are peers, and the frontend coordinates.

* **Writes** (claim, state propagation) go to all R replicas and
  succeed at ``write_quorum`` acks (:class:`QuorumExecutor`).  Claims
  are idempotent (content-derived serials), so retries and duplicate
  deliveries converge.
* **Reads** (status) complete at ``read_quorum`` answers
  (:class:`StatusCollector`).  With W + R > R-total the read quorum is
  guaranteed to overlap the last write quorum, so the merged answer —
  highest ``revocation_epoch`` wins — reflects every acknowledged
  revocation even while some replica is down or stale.
* **Read repair**: when a quorum read observes replicas at different
  epochs, the collector names the stale ones and the frontend pushes
  the winning state back to them (``apply_state``), so divergence
  created by a down replica heals with normal read traffic instead of
  requiring an anti-entropy sweep.
* **Hinted handoff** (:class:`HintQueue`): a write that reached its
  quorum but missed a replica leaves that replica stale until a read
  happens to repair it.  The coordinator instead queues a *hint* — the
  missed method + payload — and replays it when the replica is
  reachable again, so repair is driven by the write path too, not only
  by read traffic (the availability/repair gap the IPFS measurement
  study documents for purely read-driven repair).  Hints coalesce per
  (shard, serial) at the highest epoch, are bounded per shard, and a
  hint the restored replica *rejects* (e.g. ``apply_state`` on a
  wiped, still-empty replica) is dropped after a few attempts — full
  record restoration is the anti-entropy sweep's job
  (:mod:`repro.cluster.antientropy`).

Everything is callback-style so the identical logic runs on the
synchronous in-process transport (unit tests, demos) and the
discrete-event netsim transport (latency/fault experiments) — the same
duality the wire-agnostic ``Ledger`` already has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol

__all__ = [
    "ShardReply",
    "ShardTransport",
    "LocalShardTransport",
    "QuorumExecutor",
    "QuorumResult",
    "StatusCollector",
    "StatusOutcome",
    "Hint",
    "HintQueue",
    "majority",
]


def majority(n: int) -> int:
    """Smallest quorum overlapping any other majority of ``n``."""
    return n // 2 + 1


@dataclass(slots=True)
class ShardReply:
    """One shard's answer to one replicated call."""

    shard_id: str
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class ShardTransport(Protocol):
    """How coordinators reach shards; implementations decide the wire.

    ``invoke`` must always call ``callback`` exactly once, with an
    error reply rather than an exception on failure (a dead shard is an
    experiment condition, not a bug).

    ``timeout`` is the caller's remaining budget for this call in
    seconds (``None`` = the transport's default).  Asynchronous
    transports enforce it by answering with a timeout error reply;
    synchronous ones may ignore it (the call cannot outlive the caller
    there), but every call *site* must still pass it so the budget is
    threaded when the transport does matter.
    """

    def invoke(
        self,
        shard_id: str,
        method: str,
        payload: Any,
        callback: Callable[[ShardReply], None],
        timeout: Optional[float] = None,
    ) -> None:  # pragma: no cover - protocol
        ...

    def shard_ids(self) -> List[str]:  # pragma: no cover - protocol
        ...


class LocalShardTransport:
    """Synchronous in-process transport over a dict of shards.

    ``kill``/``revive`` model a crashed node: invocations fail fast
    with a "shard down" reply (connection refused, as opposed to the
    netsim transport's silent timeout).
    """

    def __init__(self, shards: Dict[str, Any]):
        self._shards = dict(shards)
        self._down: set = set()
        self.calls = 0

    def shard_ids(self) -> List[str]:
        return sorted(self._shards)

    def kill(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise KeyError(shard_id)
        self._down.add(shard_id)

    def revive(self, shard_id: str) -> None:
        self._down.discard(shard_id)

    def invoke(
        self,
        shard_id: str,
        method: str,
        payload: Any,
        callback: Callable[[ShardReply], None],
        timeout: Optional[float] = None,
    ) -> None:
        # `timeout` is accepted for transport interchangeability but has
        # nothing to enforce: the call completes before invoke returns.
        self.calls += 1
        shard = self._shards.get(shard_id)
        if shard is None:
            callback(ShardReply(shard_id, error=f"unknown shard {shard_id!r}"))
            return
        if shard_id in self._down:
            callback(ShardReply(shard_id, error="shard down"))
            return
        handler = shard.rpc_handlers().get(method)
        if handler is None:
            callback(ShardReply(shard_id, error=f"unknown method {method!r}"))
            return
        try:
            callback(ShardReply(shard_id, value=handler(payload)))
        except Exception as exc:  # noqa: BLE001 - fault isolation
            callback(ShardReply(shard_id, error=str(exc)))


@dataclass(slots=True)
class QuorumResult:
    """Outcome of a quorum write."""

    ok: bool
    quorum: int
    acks: List[ShardReply] = field(default_factory=list)
    failures: List[ShardReply] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def value(self) -> Any:
        """The first ack's value (replicas return identical answers)."""
        return self.acks[0].value if self.acks else None


class QuorumExecutor:
    """Fans a write out to a replica group; completes at quorum.

    The callback fires as soon as the outcome is decided — ``quorum``
    acks (success) or enough failures that success is impossible.  Late
    replies are still recorded with the failure detector, so a slow
    shard's eventual answer updates its health even after the write
    completed without it.
    """

    def __init__(self, transport: ShardTransport, detector=None):
        self._transport = transport
        self._detector = detector
        self.writes_started = 0
        self.writes_succeeded = 0
        self.writes_failed = 0

    def _note(self, reply: ShardReply) -> None:
        if self._detector is None:
            return
        if reply.ok:
            self._detector.record_success(reply.shard_id)
        else:
            self._detector.record_failure(reply.shard_id)

    def execute(
        self,
        shard_ids: List[str],
        method: str,
        payload: Any,
        quorum: int,
        callback: Callable[[QuorumResult], None],
        on_reply: Optional[Callable[[ShardReply], None]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Fan out; ``callback`` fires at the quorum verdict.

        ``on_reply`` (when given) observes *every* individual reply,
        including those arriving after the verdict — the hook hinted
        handoff uses to catch replicas that missed a successful write.
        ``timeout`` is the per-replica RPC budget, threaded to every
        fan-out leg.
        """
        if not 1 <= quorum <= len(shard_ids):
            raise ValueError(
                f"quorum {quorum} invalid for {len(shard_ids)} replica(s)"
            )
        self.writes_started += 1
        result = QuorumResult(ok=False, quorum=quorum)
        state = {"done": False}

        def _finish(ok: bool, error: Optional[str] = None) -> None:
            state["done"] = True
            result.ok = ok
            result.error = error
            if ok:
                self.writes_succeeded += 1
            else:
                self.writes_failed += 1
            callback(result)

        def _on_reply(reply: ShardReply) -> None:
            self._note(reply)
            if on_reply is not None:
                on_reply(reply)
            if reply.ok:
                result.acks.append(reply)
            else:
                result.failures.append(reply)
            if state["done"]:
                return
            if len(result.acks) >= quorum:
                _finish(True)
            elif len(shard_ids) - len(result.failures) < quorum:
                _finish(
                    False,
                    error=(
                        f"{method}: quorum {quorum}/{len(shard_ids)} "
                        f"unreachable ({len(result.failures)} failure(s), "
                        f"e.g. {result.failures[0].error})"
                    ),
                )

        for shard_id in shard_ids:
            self._transport.invoke(
                shard_id, method, payload, _on_reply, timeout=timeout
            )


@dataclass(slots=True)
class StatusOutcome:
    """Merged result of one quorum status read."""

    serial: int
    ok: bool
    proof: Any = None  # winning StatusProof
    state: Optional[str] = None
    epoch: int = -1
    answered_by: Optional[str] = None  # shard whose proof won
    stale_shards: List[str] = field(default_factory=list)
    error: Optional[str] = None


class StatusCollector:
    """Accumulates one key's per-replica status answers.

    Completion fires at ``quorum`` good answers; the winner is the
    answer with the highest ``revocation_epoch`` (write quorums
    guarantee at least one read-quorum member saw the newest epoch).
    Every answer observed *below* the winning epoch — before or after
    completion — is reported through ``on_stale`` for read repair.
    """

    def __init__(
        self,
        serial: int,
        replicas: List[str],
        quorum: int,
        on_done: Callable[[StatusOutcome], None],
        on_stale: Optional[Callable[[str, StatusOutcome], None]] = None,
    ):
        if not 1 <= quorum <= len(replicas):
            raise ValueError(
                f"quorum {quorum} invalid for {len(replicas)} replica(s)"
            )
        self.serial = serial
        self.expected = list(replicas)
        self.quorum = quorum
        self._on_done = on_done
        self._on_stale = on_stale
        self._answers: Dict[str, Dict[str, Any]] = {}
        self._errors: Dict[str, str] = {}
        self.outcome: Optional[StatusOutcome] = None

    @property
    def done(self) -> bool:
        return self.outcome is not None

    def record(self, shard_id: str, entry: Dict[str, Any]) -> None:
        """Feed one replica's answer (an entry from ``shard.status``)."""
        if "error" in entry:
            self.record_error(shard_id, entry["error"])
            return
        if self.done:
            self._check_stale(shard_id, entry)
            return
        self._answers[shard_id] = entry
        if len(self._answers) >= self.quorum:
            self._complete()

    def record_error(self, shard_id: str, error: str) -> None:
        if self.done:
            return
        self._errors[shard_id] = error
        if len(self.expected) - len(self._errors) < self.quorum:
            outcome = StatusOutcome(
                serial=self.serial,
                ok=False,
                error=(
                    f"status quorum {self.quorum}/{len(self.expected)} "
                    f"unreachable: {sorted(self._errors.values())[0]}"
                ),
            )
            self.outcome = outcome
            self._on_done(outcome)

    def _complete(self) -> None:
        winner_shard, winner = max(
            self._answers.items(), key=lambda item: item[1]["epoch"]
        )
        outcome = StatusOutcome(
            serial=self.serial,
            ok=True,
            proof=winner["proof"],
            state=winner["state"],
            epoch=winner["epoch"],
            answered_by=winner_shard,
        )
        self.outcome = outcome
        for shard_id, entry in self._answers.items():
            if entry["epoch"] < winner["epoch"]:
                outcome.stale_shards.append(shard_id)
        self._on_done(outcome)
        if self._on_stale is not None:
            for shard_id in outcome.stale_shards:
                self._on_stale(shard_id, outcome)

    def _check_stale(self, shard_id: str, entry: Dict[str, Any]) -> None:
        """A reply that arrived after completion may still need repair."""
        outcome = self.outcome
        if outcome is None or not outcome.ok:
            return
        if entry["epoch"] < outcome.epoch:
            outcome.stale_shards.append(shard_id)
            if self._on_stale is not None:
                self._on_stale(shard_id, outcome)


@dataclass(slots=True)
class Hint:
    """One missed replica write, queued for redelivery."""

    shard_id: str
    method: str  # 'apply_state' | 'claim'
    payload: Dict[str, Any]
    epoch: int = 0
    queued_at: float = 0.0
    attempts: int = 0

    @property
    def serial(self) -> Optional[int]:
        return self.payload.get("serial")


class HintQueue:
    """Coordinator-side store of writes that missed a replica.

    Semantics (Dynamo-style hinted handoff, scoped to this cluster):

    * Hints coalesce per ``(shard, method, serial)`` keeping the
      highest epoch — replaying an old hint after a newer one would be
      rejected by the shard's LWW guard anyway, so only the newest is
      worth carrying.
    * The per-shard queue is bounded (``max_per_shard``); when full the
      *oldest* hint is dropped and counted, never silently.
    * Replay is sequential per shard and stops at the first transport
      failure (the replica is still down; hammering it helps nobody).
      A hint the replica explicitly *rejects* — reachable shard,
      application error, e.g. ``apply_state`` on a serial a disk wipe
      erased — is retried at most ``max_attempts`` times and then
      dropped for the anti-entropy sweep to restore.
    * ``drained_at`` records the moment the queue last became empty
      after holding hints: the E19 "handoff drain time" measurement.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        max_per_shard: int = 4096,
        max_attempts: int = 3,
        obs: Optional[object] = None,
    ):
        if max_per_shard < 1:
            raise ValueError("hint queue must hold at least one hint per shard")
        if max_attempts < 1:
            raise ValueError("hints need at least one replay attempt")
        self._clock = clock
        self.obs = obs  # duck-typed Observability; queue/replay telemetry
        self.max_per_shard = int(max_per_shard)
        self.max_attempts = int(max_attempts)
        self._hints: Dict[str, List[Hint]] = {}
        self._replaying: set = set()
        self.hints_queued = 0
        self.hints_replayed = 0
        self.hints_dropped = 0
        self.hints_coalesced = 0
        self.drained_at: Optional[float] = None

    # -- recording ---------------------------------------------------------------

    def record(
        self, shard_id: str, method: str, payload: Dict[str, Any], epoch: int = 0
    ) -> None:
        """Queue one missed write for ``shard_id``."""
        queue = self._hints.setdefault(shard_id, [])
        serial = payload.get("serial")
        for hint in queue:
            if hint.method == method and hint.serial == serial:
                self.hints_coalesced += 1
                if self.obs is not None:
                    self.obs.counter(
                        "hints_coalesced_total", shard=shard_id
                    ).inc()
                if epoch > hint.epoch:
                    hint.payload = dict(payload)
                    hint.epoch = epoch
                    hint.attempts = 0
                return
        if len(queue) >= self.max_per_shard:
            queue.pop(0)
            self._note_dropped(shard_id)
        queue.append(
            Hint(
                shard_id=shard_id,
                method=method,
                payload=dict(payload),
                epoch=epoch,
                queued_at=self._clock(),
            )
        )
        self.hints_queued += 1
        if self.obs is not None:
            self.obs.counter("hints_queued_total", shard=shard_id).inc()
            self.obs.gauge("hints_pending").set(self.pending())

    def _note_dropped(self, shard_id: str) -> None:
        self.hints_dropped += 1
        if self.obs is not None:
            self.obs.counter("hints_dropped_total", shard=shard_id).inc()

    # -- inspection ---------------------------------------------------------------

    def pending(self, shard_id: Optional[str] = None) -> int:
        if shard_id is not None:
            return len(self._hints.get(shard_id, []))
        return sum(len(q) for q in self._hints.values())

    def shards_with_hints(self) -> List[str]:
        return sorted(s for s, q in self._hints.items() if q)

    def _note_drain(self) -> None:
        if self.obs is not None:
            self.obs.gauge("hints_pending").set(self.pending())
        if self.pending() == 0:
            self.drained_at = self._clock()

    # -- replay -------------------------------------------------------------------

    def replay(
        self,
        shard_id: str,
        transport: ShardTransport,
        on_result: Optional[Callable[[str, bool], None]] = None,
        on_done: Optional[Callable[[int], None]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Redeliver ``shard_id``'s hints sequentially (callback chain).

        ``on_result(shard_id, ok)`` reports each delivery outcome to
        health tracking; ``on_done(replayed)`` fires when this round
        stops (queue empty, transport failure, or round already
        running).  Concurrent rounds per shard are refused — a second
        timer tick while a replay chain is still in flight must not
        interleave duplicate deliveries.
        """
        queue = self._hints.get(shard_id)
        if not queue or shard_id in self._replaying:
            if on_done is not None:
                on_done(0)
            return
        self._replaying.add(shard_id)
        replayed = {"n": 0}

        def _finish() -> None:
            self._replaying.discard(shard_id)
            self._note_drain()
            if on_done is not None:
                on_done(replayed["n"])

        def _next() -> None:
            if not queue:
                _finish()
                return
            hint = queue[0]

            def _on_reply(reply: ShardReply) -> None:
                if on_result is not None:
                    on_result(shard_id, reply.ok)
                if reply.ok:
                    queue.pop(0)
                    self.hints_replayed += 1
                    replayed["n"] += 1
                    if self.obs is not None:
                        self.obs.counter(
                            "hints_replayed_total", shard=shard_id
                        ).inc()
                    _next()
                    return
                hint.attempts += 1
                if hint.attempts >= self.max_attempts:
                    queue.pop(0)
                    self._note_dropped(shard_id)
                    _next()
                    return
                _finish()  # replica still unreachable; try next round

            transport.invoke(
                shard_id, hint.method, hint.payload, _on_reply, timeout=timeout
            )

        _next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HintQueue(pending={self.pending()}, replayed={self.hints_replayed})"
