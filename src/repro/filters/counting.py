"""Counting Bloom filter: membership with deletion support.

The plain Bloom filters that ledgers publish (section 4.4) only grow.
Internally, though, a ledger's *claimed* set can shrink — e.g. claims
can expire, or the appeals process can void a fraudulent claim — so the
ledger-side structure from which the published filter is regenerated
benefits from deletions.  A counting Bloom filter stores a small counter
per position instead of a bit; the exported plain filter is simply the
"counter > 0" projection.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.filters.bitarray import BitArray
from repro.filters.bloom import BloomFilter

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """Bloom filter with per-position counters (uint16, saturating).

    Shares hash geometry with :class:`BloomFilter` so its projection can
    be OR-ed with plain filters from other ledgers.
    """

    def __init__(self, nbits: int, num_hashes: int, salt: bytes = b"irs"):
        if num_hashes < 1:
            raise ValueError("need at least one hash function")
        if len(salt) > 8:
            raise ValueError("salt must be at most 8 bytes")
        self._counters = np.zeros(nbits, dtype=np.uint16)
        self._num_hashes = int(num_hashes)
        self._salt = salt.ljust(8, b"\x00")
        self._count = 0

    @property
    def nbits(self) -> int:
        return int(self._counters.size)

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def num_keys(self) -> int:
        return self._count

    def _positions(self, key: bytes) -> np.ndarray:
        digest = hashlib.blake2b(key, digest_size=16, salt=self._salt).digest()
        h1 = np.uint64(int.from_bytes(digest[:8], "little"))
        h2 = np.uint64(int.from_bytes(digest[8:], "little"))
        i = np.arange(self._num_hashes, dtype=np.uint64)
        return ((h1 + i * h2) % np.uint64(self.nbits)).astype(np.int64)

    def add(self, key: bytes) -> None:
        positions = self._positions(key)
        # Saturating increment: a counter stuck at max never decrements
        # to zero incorrectly because we also never increment past max.
        for p in positions:
            if self._counters[p] < np.iinfo(np.uint16).max:
                self._counters[p] += 1
        self._count += 1

    def add_many(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            self.add(key)

    def remove(self, key: bytes) -> None:
        """Remove a key previously added.

        Removing a key that was never added corrupts the filter (as with
        any counting Bloom filter); callers must track membership.  A
        best-effort guard raises when any counter is already zero.
        """
        positions = self._positions(key)
        if (self._counters[positions] == 0).any():
            raise KeyError("key does not appear to be present; remove refused")
        self._counters[positions] -= 1
        self._count -= 1

    def __contains__(self, key: bytes) -> bool:
        return bool((self._counters[self._positions(key)] > 0).all())

    def project(self) -> BloomFilter:
        """Export the plain Bloom filter (counter > 0) ledgers publish."""
        result = BloomFilter(self.nbits, self._num_hashes, self._salt.rstrip(b"\x00"))
        bits = BitArray(self.nbits)
        set_positions = np.nonzero(self._counters > 0)[0]
        if set_positions.size:
            bits.set_many(set_positions)
        result._bits = bits
        result._count = self._count
        result._salt = self._salt
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CountingBloomFilter(nbits={self.nbits}, k={self._num_hashes}, "
            f"keys={self._count})"
        )
