"""Probabilistic membership filters for the IRS bootstrap phase.

Section 4.4 of the paper: ledgers publish Bloom filters of their claimed
photos; proxies OR the filters of all ledgers and consult the result
before querying any ledger, cutting ledger load by roughly the inverse
of the false-positive rate ("a factor of fifty" at 2% FPR).  Updates
ship hourly with delta encoding.

This package implements the full filter toolbox:

* :mod:`repro.filters.bitarray` -- numpy-backed bit array substrate.
* :mod:`repro.filters.bloom` -- standard Bloom filter with union,
  serialization and analytic FPR estimation.
* :mod:`repro.filters.counting` -- counting Bloom filter supporting
  deletion (ledgers whose claim sets shrink).
* :mod:`repro.filters.xor_filter` -- Xor filter (Graf & Lemire 2020),
  one of the "recent advances" the paper cites [15].
* :mod:`repro.filters.binary_fuse` -- Binary fuse filter (Graf & Lemire
  2022) [16].
* :mod:`repro.filters.delta` -- delta encoding of filter updates.
* :mod:`repro.filters.sizing` -- exact analytic size/FPR relationships
  used to reproduce the paper's 1 GB @ 1 B photos => 2% claim.
"""

from repro.filters.bitarray import BitArray
from repro.filters.bloom import BloomFilter
from repro.filters.counting import CountingBloomFilter
from repro.filters.xor_filter import XorFilter
from repro.filters.binary_fuse import BinaryFuseFilter
from repro.filters.delta import FilterDelta, encode_delta, apply_delta
from repro.filters.sizing import (
    bloom_false_positive_rate,
    bloom_bits_for_fpr,
    bloom_optimal_hashes,
    load_reduction_factor,
    paper_scaling_table,
)

__all__ = [
    "BitArray",
    "BloomFilter",
    "CountingBloomFilter",
    "XorFilter",
    "BinaryFuseFilter",
    "FilterDelta",
    "encode_delta",
    "apply_delta",
    "bloom_false_positive_rate",
    "bloom_bits_for_fpr",
    "bloom_optimal_hashes",
    "load_reduction_factor",
    "paper_scaling_table",
]
