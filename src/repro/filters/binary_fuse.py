"""Binary fuse filter (Graf & Lemire 2022) — the second "recent advance"
the paper cites [16].

Binary fuse filters reach ~9.1 bits/key (8-bit fingerprints) by mapping
each key's three slots into a *window* of consecutive segments rather
than three independent thirds, which makes peeling succeed at lower
space overhead (~1.125x vs 1.23x for xor filters).

This implementation keeps the segment-window construction and uses the
same peeling machinery idea as :mod:`repro.filters.xor_filter`.  It is
used in the E11 filter ablation bench alongside Bloom and Xor filters.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.filters.xor_filter import _hash_words

__all__ = ["BinaryFuseFilter", "FuseConstructionError"]


class FuseConstructionError(Exception):
    """Raised when construction fails after all seed retries."""


_ARITY = 3
_MAX_SEED_ATTEMPTS = 128


def _hash128(key: bytes, seed: int) -> int:
    digest = hashlib.blake2b(
        key, digest_size=16, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def _segment_geometry(num_keys: int) -> tuple[int, int, int]:
    """Return (segment_length, num_segments, array_length).

    Follows the shape of the reference implementation: segment length is
    a power of two growing slowly with n; total size ~= 1.125 * n for
    large n, with generous floors for small n so peeling succeeds.
    """
    n = max(num_keys, 1)
    # Segment length: 2^floor(log2(n)/2 + 1), clamped.
    seg_len = 1 << min(18, max(4, int(np.log2(n) * 0.58) + 2))
    # Size factor from the reference implementation: approaches 1.125
    # for large n, grows for small n where peeling needs more slack.
    size_factor = max(1.125, 0.875 + 0.25 * np.log(1_000_000) / np.log(max(n, 2)))
    capacity = int(size_factor * n) + 64
    num_segments = max(1, (capacity + seg_len - 1) // seg_len - (_ARITY - 1))
    array_length = (num_segments + _ARITY - 1) * seg_len
    return seg_len, num_segments, array_length


class BinaryFuseFilter:
    """Static binary fuse filter with 8-bit fingerprints."""

    def __init__(
        self,
        fingerprints: np.ndarray,
        seed: int,
        segment_length: int,
        num_segments: int,
        num_keys: int,
    ):
        self._fingerprints = fingerprints
        self._seed = seed
        self._segment_length = segment_length
        self._num_segments = num_segments
        self._num_keys = num_keys

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, keys: Sequence[bytes], seed: int = 1) -> "BinaryFuseFilter":
        unique = sorted(set(keys))
        n = len(unique)
        seg_len, num_segments, array_length = _segment_geometry(n)
        for attempt in range(_MAX_SEED_ATTEMPTS):
            current_seed = seed + attempt
            order = cls._peel(unique, current_seed, seg_len, num_segments, array_length)
            if order is not None:
                fingerprints = cls._assign(
                    unique, order, current_seed, seg_len, num_segments, array_length
                )
                return cls(
                    fingerprints=fingerprints,
                    seed=current_seed,
                    segment_length=seg_len,
                    num_segments=num_segments,
                    num_keys=n,
                )
        raise FuseConstructionError(
            f"binary fuse construction failed after {_MAX_SEED_ATTEMPTS} seeds"
        )

    @staticmethod
    def _slots_for(
        h: int, seg_len: int, num_segments: int
    ) -> tuple[int, int, int]:
        """Three slots in consecutive segments of a window."""
        window_start = ((h & 0xFFFFFFFF) % num_segments) * seg_len
        s0 = window_start + ((h >> 32) & 0xFFFFFFFF) % seg_len
        s1 = window_start + seg_len + ((h >> 64) & 0xFFFFFFFF) % seg_len
        s2 = window_start + 2 * seg_len + ((h >> 96) & 0xFFFFFF) % seg_len
        return s0, s1, s2

    @staticmethod
    def _fingerprint_of(h: int) -> int:
        fp = (h >> 120) & 0xFF
        return fp if fp != 0 else 0x5A

    @classmethod
    def _peel(
        cls,
        keys: Sequence[bytes],
        seed: int,
        seg_len: int,
        num_segments: int,
        array_length: int,
    ) -> list[tuple[int, int]] | None:
        slot_count = np.zeros(array_length, dtype=np.int64)
        slot_xor = np.zeros(array_length, dtype=np.int64)
        key_slots: list[tuple[int, int, int]] = []
        for idx, key in enumerate(keys):
            h = _hash128(key, seed)
            slots = cls._slots_for(h, seg_len, num_segments)
            key_slots.append(slots)
            for s in slots:
                slot_count[s] += 1
                slot_xor[s] ^= idx + 1
        queue = [s for s in np.nonzero(slot_count == 1)[0]]
        order: list[tuple[int, int]] = []
        while queue:
            slot = int(queue.pop())
            if slot_count[slot] != 1:
                continue
            key_index = int(slot_xor[slot]) - 1
            order.append((key_index, slot))
            for s in key_slots[key_index]:
                slot_count[s] -= 1
                slot_xor[s] ^= key_index + 1
                if slot_count[s] == 1:
                    queue.append(s)
        if len(order) != len(keys):
            return None
        return order

    @classmethod
    def _assign(
        cls,
        keys: Sequence[bytes],
        order: list[tuple[int, int]],
        seed: int,
        seg_len: int,
        num_segments: int,
        array_length: int,
    ) -> np.ndarray:
        fingerprints = np.zeros(array_length, dtype=np.uint8)
        for key_index, slot in reversed(order):
            h = _hash128(keys[key_index], seed)
            s0, s1, s2 = cls._slots_for(h, seg_len, num_segments)
            fp = cls._fingerprint_of(h)
            value = (
                fp
                ^ int(fingerprints[s0])
                ^ int(fingerprints[s1])
                ^ int(fingerprints[s2])
            )
            fingerprints[slot] = value & 0xFF
        return fingerprints

    # -- queries --------------------------------------------------------------------

    def __contains__(self, key: bytes) -> bool:
        h = _hash128(key, self._seed)
        s0, s1, s2 = self._slots_for(h, self._segment_length, self._num_segments)
        fp = self._fingerprint_of(h)
        table = self._fingerprints
        return fp == (int(table[s0]) ^ int(table[s1]) ^ int(table[s2]))

    def query_many(self, keys: Sequence[bytes]) -> np.ndarray:
        """Membership verdicts for many keys in one vectorized pass.

        Entry ``i`` equals ``keys[i] in self`` (the scalar path is the
        reference oracle).  Both filters share the keyed-blake2b hash
        layout, so the batch hashing helper lives in
        :mod:`repro.filters.xor_filter`; only the segment-window slot
        arithmetic differs.
        """
        keys = list(keys)
        if not keys:
            return np.zeros(0, dtype=bool)
        u32, fp_byte = _hash_words(keys, self._seed)
        seg_len = self._segment_length
        window = (u32[:, 0] % self._num_segments).astype(np.int64) * seg_len
        s0 = window + (u32[:, 1] % seg_len).astype(np.int64)
        s1 = window + seg_len + (u32[:, 2] % seg_len).astype(np.int64)
        s2 = window + 2 * seg_len + ((u32[:, 3] & 0xFFFFFF) % seg_len).astype(np.int64)
        fp = np.where(fp_byte == 0, np.uint8(0x5A), fp_byte)
        table = self._fingerprints
        return fp == (table[s0] ^ table[s1] ^ table[s2])

    def might_contain(self, key: bytes) -> bool:
        return key in self

    # -- properties --------------------------------------------------------------------

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def nbytes(self) -> int:
        return int(self._fingerprints.nbytes)

    def bits_per_key(self) -> float:
        if self._num_keys == 0:
            return float("inf")
        return 8.0 * self.nbytes / self._num_keys

    def measure_fpr(self, num_probes: int, rng=None) -> float:
        rng = rng or np.random.default_rng(0)
        raw = rng.integers(0, 2**63, size=num_probes, dtype=np.int64)
        hits = sum(
            1
            for value in raw
            if (b"__fuse_probe__" + int(value).to_bytes(8, "big")) in self
        )
        return hits / num_probes if num_probes else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinaryFuseFilter(keys={self._num_keys}, bytes={self.nbytes})"
