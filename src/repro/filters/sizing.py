"""Analytic Bloom filter sizing — the math behind the paper's section 4.4.

The paper claims: "a 1GB filter would provide a 2% false-hit rate with a
population of 1 billion photos, thereby lessening the load on ledgers by
a factor of fifty.  Similarly, a 100GB Bloom filter would provide a
similar error rate for a population of 100 billion photos."

These functions make the claim checkable:

* :func:`bloom_false_positive_rate` -- exact expected FPR for (m, n, k).
* :func:`bloom_bits_for_fpr` -- optimal m for (n, target FPR).
* :func:`load_reduction_factor` -- ledger-query reduction achieved by a
  front filter, as a function of FPR and the fraction of viewed photos
  that are actually claimed-and-revoked.
* :func:`paper_scaling_table` -- the 1 GB / 100 GB rows as the paper
  states them, computed rather than asserted.

The analytic model is cross-validated against real measured filters in
``tests/filters/test_sizing.py`` and ``benchmarks/bench_e4_bloom_sizing.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

__all__ = [
    "bloom_false_positive_rate",
    "bloom_bits_for_fpr",
    "bloom_optimal_hashes",
    "load_reduction_factor",
    "ScalingRow",
    "paper_scaling_table",
]

GIGABYTE = 10**9  # the paper speaks in decimal GB
BITS_PER_BYTE = 8


def bloom_false_positive_rate(nbits: int, num_keys: int, num_hashes: int) -> float:
    """Expected FPR of a Bloom filter: ``(1 - e^{-kn/m})^k``.

    This is the classic approximation, accurate to within measurement
    noise for the sizes used here.
    """
    if nbits <= 0 or num_hashes <= 0:
        raise ValueError("nbits and num_hashes must be positive")
    if num_keys < 0:
        raise ValueError("num_keys must be non-negative")
    if num_keys == 0:
        return 0.0
    fill = 1.0 - math.exp(-num_hashes * num_keys / nbits)
    return fill**num_hashes


def bloom_optimal_hashes(nbits: int, num_keys: int) -> int:
    """Optimal hash count ``k = (m/n) ln 2``, at least 1."""
    if num_keys <= 0:
        return 1
    return max(1, round((nbits / num_keys) * math.log(2)))


def bloom_bits_for_fpr(num_keys: int, target_fpr: float) -> int:
    """Optimal filter size ``m = -n ln p / (ln 2)^2`` for a target FPR."""
    if not 0.0 < target_fpr < 1.0:
        raise ValueError("target_fpr must be in (0, 1)")
    if num_keys <= 0:
        raise ValueError("num_keys must be positive")
    m = -num_keys * math.log(target_fpr) / (math.log(2) ** 2)
    return max(64, int(math.ceil(m)))


def bloom_fpr_for_size_bytes(size_bytes: int, num_keys: int) -> float:
    """Best achievable FPR when the filter budget is ``size_bytes``.

    Uses the optimal k for the given geometry.
    """
    nbits = size_bytes * BITS_PER_BYTE
    k = bloom_optimal_hashes(nbits, num_keys)
    return bloom_false_positive_rate(nbits, num_keys, k)


def load_reduction_factor(fpr: float, revoked_view_fraction: float = 0.0) -> float:
    """Ledger-query reduction factor achieved by a front filter.

    Without a filter, every view of a *labeled* photo queries a ledger.
    With a filter, queries happen only for (a) true hits -- photos that
    genuinely appear in some ledger's claimed set and are being checked,
    which the paper argues is the rare case for *viewed* photos via the
    "vast majority of viewed photos are not revoked" assumption -- and
    (b) false hits at rate ``fpr``.

    ``revoked_view_fraction`` is the fraction of views that land on
    claimed-and-filter-resident photos (true hits).  With the paper's
    assumption that it is ~0, the reduction is simply ``1/fpr`` -- and
    1/0.02 = 50, the paper's "factor of fifty".
    """
    if not 0.0 < fpr <= 1.0:
        raise ValueError("fpr must be in (0, 1]")
    if not 0.0 <= revoked_view_fraction <= 1.0:
        raise ValueError("revoked_view_fraction must be in [0, 1]")
    query_rate = revoked_view_fraction + (1.0 - revoked_view_fraction) * fpr
    return 1.0 / query_rate


@dataclass(frozen=True)
class ScalingRow:
    """One row of the paper's scaling argument."""

    filter_gb: float
    population: int
    optimal_hashes: int
    false_positive_rate: float
    load_reduction: float


def paper_scaling_table(extra_rows: bool = True) -> List[ScalingRow]:
    """Compute the section-4.4 scaling table.

    Rows: the paper's two data points (1 GB @ 1e9, 100 GB @ 1e11) and,
    when ``extra_rows``, intermediate points showing the linear scaling
    the paper implies (bits-per-key constant => FPR constant).
    """
    points = [(1, 10**9), (100, 10**11)]
    if extra_rows:
        points = [(1, 10**9), (10, 10**10), (100, 10**11), (1000, 10**12)]
        points.sort()
    rows = []
    for gb, population in points:
        nbits = gb * GIGABYTE * BITS_PER_BYTE
        k = bloom_optimal_hashes(nbits, population)
        fpr = bloom_false_positive_rate(nbits, population, k)
        rows.append(
            ScalingRow(
                filter_gb=float(gb),
                population=population,
                optimal_hashes=k,
                false_positive_rate=fpr,
                load_reduction=load_reduction_factor(fpr),
            )
        )
    return rows
