"""Xor filter (Graf & Lemire 2020) — cited by the paper as a "recent
advance" over standard Bloom filters [15].

A static filter over a fixed key set: ~9.84 bits/key at an 8-bit
fingerprint for a ~0.39% FPR, vs ~8 bits/key for 2% with Bloom.  IRS
ledgers rebuild their published filter hourly from the full claim set,
which is exactly the static-build/immutable-query pattern xor filters
want, making them a natural ablation (experiment E11).

Construction follows the peeling algorithm from the paper: each key maps
to three slots (one per third of the table); repeatedly find a slot hit
by exactly one remaining key, stack it, and assign fingerprints in
reverse order so each key's three slots XOR to its fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["XorFilter", "XorConstructionError"]


class XorConstructionError(Exception):
    """Raised when peeling fails after all seed retries (extremely rare)."""


_SLOTS_PER_KEY = 3
_SIZE_FACTOR = 1.23  # table size = 1.23 * n + 32, per the paper
_MAX_SEED_ATTEMPTS = 64


def _hash128(key: bytes, seed: int) -> int:
    digest = hashlib.blake2b(
        key, digest_size=16, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def _hash_words(keys: Sequence[bytes], seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Batch form of :func:`_hash128`, pre-split into hash words.

    Returns ``(u32, fp_byte)``: the four little-endian 32-bit words of
    each digest (``u32[i, j] == (h >> 32*j) & 0xFFFFFFFF``) and the top
    byte (``h >> 120``) the fingerprint derives from.  One contiguous
    buffer per batch, so slot arithmetic downstream is fully vectorized.
    """
    secret = seed.to_bytes(8, "little")
    blob = b"".join(
        hashlib.blake2b(key, digest_size=16, key=secret).digest() for key in keys
    )
    u32 = np.frombuffer(blob, dtype="<u4").reshape(len(keys), 4)
    fp_byte = np.frombuffer(blob, dtype=np.uint8).reshape(len(keys), 16)[:, 15]
    return u32, fp_byte


class XorFilter:
    """Static xor filter with 8-bit fingerprints (fpr ~= 1/256).

    Build once from the full key set with :meth:`build`; querying is
    three table reads and two XORs.
    """

    def __init__(
        self,
        fingerprints: np.ndarray,
        seed: int,
        block_length: int,
        num_keys: int,
    ):
        self._fingerprints = fingerprints
        self._seed = seed
        self._block_length = block_length
        self._num_keys = num_keys

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, keys: Sequence[bytes], seed: int = 1) -> "XorFilter":
        """Build a filter over ``keys`` (duplicates are collapsed)."""
        unique = sorted(set(keys))
        n = len(unique)
        capacity = int(_SIZE_FACTOR * max(n, 1)) + 32
        block = (capacity + _SLOTS_PER_KEY - 1) // _SLOTS_PER_KEY
        for attempt in range(_MAX_SEED_ATTEMPTS):
            current_seed = seed + attempt
            order = cls._peel(unique, current_seed, block)
            if order is not None:
                fingerprints = cls._assign(unique, order, current_seed, block)
                return cls(
                    fingerprints=fingerprints,
                    seed=current_seed,
                    block_length=block,
                    num_keys=n,
                )
        raise XorConstructionError(
            f"xor filter construction failed after {_MAX_SEED_ATTEMPTS} seeds"
        )

    @staticmethod
    def _slots_for(h: int, block: int) -> tuple[int, int, int]:
        """The three table slots for a 128-bit hash value."""
        s0 = (h & 0xFFFFFFFF) % block
        s1 = block + ((h >> 32) & 0xFFFFFFFF) % block
        s2 = 2 * block + ((h >> 64) & 0xFFFFFFFF) % block
        return s0, s1, s2

    @staticmethod
    def _fingerprint_of(h: int) -> int:
        """8-bit non-zero fingerprint from the top hash bits."""
        fp = (h >> 120) & 0xFF
        return fp if fp != 0 else 0xA5

    @classmethod
    def _peel(
        cls, keys: Sequence[bytes], seed: int, block: int
    ) -> list[tuple[int, int]] | None:
        """Peeling pass: returns (key_index, slot) in peel order, or None."""
        table_size = 3 * block
        slot_count = np.zeros(table_size, dtype=np.int64)
        slot_xor = np.zeros(table_size, dtype=np.int64)  # XOR of key indices+1
        key_slots: list[tuple[int, int, int]] = []
        for idx, key in enumerate(keys):
            h = _hash128(key, seed)
            slots = cls._slots_for(h, block)
            key_slots.append(slots)
            for s in slots:
                slot_count[s] += 1
                slot_xor[s] ^= idx + 1
        queue = [s for s in range(table_size) if slot_count[s] == 1]
        order: list[tuple[int, int]] = []
        while queue:
            slot = queue.pop()
            if slot_count[slot] != 1:
                continue
            key_index = slot_xor[slot] - 1
            order.append((key_index, slot))
            for s in key_slots[key_index]:
                slot_count[s] -= 1
                slot_xor[s] ^= key_index + 1
                if slot_count[s] == 1:
                    queue.append(s)
        if len(order) != len(keys):
            return None
        return order

    @classmethod
    def _assign(
        cls,
        keys: Sequence[bytes],
        order: list[tuple[int, int]],
        seed: int,
        block: int,
    ) -> np.ndarray:
        fingerprints = np.zeros(3 * block, dtype=np.uint8)
        for key_index, slot in reversed(order):
            h = _hash128(keys[key_index], seed)
            s0, s1, s2 = cls._slots_for(h, block)
            fp = cls._fingerprint_of(h)
            value = fp ^ int(fingerprints[s0]) ^ int(fingerprints[s1]) ^ int(
                fingerprints[s2]
            )
            # fingerprints[slot] is currently 0 (unassigned), so XOR-ing
            # it above is a no-op; store the value that makes the triple
            # XOR equal the fingerprint.
            fingerprints[slot] = value & 0xFF
        return fingerprints

    # -- queries -----------------------------------------------------------------

    def __contains__(self, key: bytes) -> bool:
        h = _hash128(key, self._seed)
        s0, s1, s2 = self._slots_for(h, self._block_length)
        fp = self._fingerprint_of(h)
        table = self._fingerprints
        return fp == (int(table[s0]) ^ int(table[s1]) ^ int(table[s2]))

    def query_many(self, keys: Sequence[bytes]) -> np.ndarray:
        """Membership verdicts for many keys in one vectorized pass.

        Entry ``i`` equals ``keys[i] in self``; the scalar
        ``__contains__`` stays the reference oracle.  The three table
        gathers and the fingerprint compare run as flat numpy ops, so
        the per-key cost drops to one blake2b call plus a few array
        reads — the shape a proxy batch check wants.
        """
        keys = list(keys)
        if not keys:
            return np.zeros(0, dtype=bool)
        u32, fp_byte = _hash_words(keys, self._seed)
        block = self._block_length
        s0 = (u32[:, 0] % block).astype(np.int64)
        s1 = block + (u32[:, 1] % block).astype(np.int64)
        s2 = 2 * block + (u32[:, 2] % block).astype(np.int64)
        fp = np.where(fp_byte == 0, np.uint8(0xA5), fp_byte)
        table = self._fingerprints
        return fp == (table[s0] ^ table[s1] ^ table[s2])

    def might_contain(self, key: bytes) -> bool:
        return key in self

    # -- properties ---------------------------------------------------------------

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def nbytes(self) -> int:
        return int(self._fingerprints.nbytes)

    def bits_per_key(self) -> float:
        if self._num_keys == 0:
            return float("inf")
        return 8.0 * self.nbytes / self._num_keys

    def measure_fpr(self, num_probes: int, rng=None) -> float:
        """Empirical FPR with guaranteed-absent probe keys."""
        rng = rng or np.random.default_rng(0)
        raw = rng.integers(0, 2**63, size=num_probes, dtype=np.int64)
        hits = sum(
            1
            for value in raw
            if (b"__xor_probe__" + int(value).to_bytes(8, "big")) in self
        )
        return hits / num_probes if num_probes else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XorFilter(keys={self._num_keys}, bytes={self.nbytes})"
