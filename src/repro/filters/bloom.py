"""Standard Bloom filter, as proposed for IRS proxies and browsers.

Paper, section 4.4: "Each ledger would produce a Bloom filter of their
claimed photos ... which the proxies would download and then take the
OR of all ledger Bloom filters."  A hit means *maybe claimed* (query
the ledger); a miss means *definitely not claimed* (no query needed).

Keys are arbitrary byte strings (the IRS uses photo identifiers).  Hash
positions come from double hashing over two independent 64-bit halves
of a blake2b digest -- the standard Kirsch–Mitzenmacher construction,
which preserves the asymptotic false-positive rate of k independent
hashes.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.filters.bitarray import BitArray
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes

__all__ = ["BloomFilter"]


def _hash_pair(key: bytes, salt: bytes) -> tuple[int, int]:
    """Two independent 64-bit hash values derived from one blake2b call."""
    digest = hashlib.blake2b(key, digest_size=16, salt=salt).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little"),
    )


def _hash_pairs(keys: Sequence[bytes], salt: bytes) -> tuple[np.ndarray, np.ndarray]:
    """The (h1, h2) halves of :func:`_hash_pair` for many keys at once.

    The per-key blake2b stays a Python loop (hashlib has no batch
    entry point) but the digests land in one contiguous buffer, so
    everything downstream of hashing is a numpy pass.
    """
    blob = b"".join(
        hashlib.blake2b(key, digest_size=16, salt=salt).digest() for key in keys
    )
    halves = np.frombuffer(blob, dtype="<u8").reshape(len(keys), 2)
    return halves[:, 0], halves[:, 1]


class BloomFilter:
    """A Bloom filter over byte-string keys.

    Parameters
    ----------
    nbits:
        Filter size in bits.
    num_hashes:
        Number of hash functions (k).
    salt:
        Up to 8 bytes mixing into the hash; all filters that will be
        OR-ed together (one per ledger) must share a salt and geometry.
    """

    def __init__(self, nbits: int, num_hashes: int, salt: bytes = b"irs"):
        if num_hashes < 1:
            raise ValueError("need at least one hash function")
        if len(salt) > 8:
            raise ValueError("salt must be at most 8 bytes")
        self._bits = BitArray(nbits)
        self._num_hashes = int(num_hashes)
        self._salt = salt.ljust(8, b"\x00")
        self._count = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def for_capacity(
        cls,
        capacity: int,
        target_fpr: float,
        salt: bytes = b"irs",
    ) -> "BloomFilter":
        """Size a filter for ``capacity`` keys at ``target_fpr``.

        Uses the optimal bits-per-key and hash-count formulas from
        :mod:`repro.filters.sizing`.
        """
        nbits = bloom_bits_for_fpr(capacity, target_fpr)
        k = bloom_optimal_hashes(nbits, capacity)
        return cls(nbits=nbits, num_hashes=k, salt=salt)

    # -- properties ------------------------------------------------------------

    @property
    def nbits(self) -> int:
        return self._bits.nbits

    @property
    def nbytes(self) -> int:
        return self._bits.nbytes

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def num_keys(self) -> int:
        """Number of keys added (double-adds counted twice)."""
        return self._count

    @property
    def bits(self) -> BitArray:
        return self._bits

    def fill_ratio(self) -> float:
        return self._bits.fill_ratio()

    def estimated_fpr(self) -> float:
        """False-positive probability implied by the current fill ratio.

        For a filter with fill ratio ``rho`` and k hashes, a random
        absent key hits with probability ``rho**k``.
        """
        return self._bits.fill_ratio() ** self._num_hashes

    # -- hashing ----------------------------------------------------------------

    def _positions(self, key: bytes) -> np.ndarray:
        h1, h2 = _hash_pair(key, self._salt)
        # Kirsch–Mitzenmacher: position_i = (h1 + i * h2) mod m.
        i = np.arange(self._num_hashes, dtype=np.uint64)
        return ((np.uint64(h1) + i * np.uint64(h2)) % np.uint64(self.nbits)).astype(
            np.int64
        )

    def _positions_many(self, keys: Sequence[bytes]) -> np.ndarray:
        """The ``(len(keys), k)`` position matrix for a batch of keys.

        Row ``i`` equals ``_positions(keys[i])`` exactly: same wrapping
        uint64 Kirsch–Mitzenmacher arithmetic, applied across the batch
        in one vectorized pass.
        """
        h1, h2 = _hash_pairs(keys, self._salt)
        i = np.arange(self._num_hashes, dtype=np.uint64)
        positions = (h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(self.nbits)
        return positions.astype(np.int64)

    # -- core operations ----------------------------------------------------------

    def add(self, key: bytes) -> None:
        """Insert a key."""
        self._bits.set_many(self._positions(key))
        self._count += 1

    def add_many(self, keys: Iterable[bytes]) -> None:
        """Insert many keys in one vectorized pass.

        Equivalent to ``for key in keys: self.add(key)`` (same bits,
        same count) without the per-key numpy dispatch overhead.
        """
        keys = list(keys)
        if not keys:
            return
        self._bits.set_many(self._positions_many(keys).ravel())
        self._count += len(keys)

    def __contains__(self, key: bytes) -> bool:
        return bool(self._bits.get_many(self._positions(key)).all())

    def query_many(self, keys: Sequence[bytes]) -> np.ndarray:
        """Membership verdicts for many keys in one vectorized pass.

        Returns a boolean array where entry ``i`` equals
        ``keys[i] in self``.  The scalar ``__contains__`` is the
        reference oracle (``tests/perf/test_vectorized_vs_scalar.py``);
        this path exists because the per-request membership check is
        the hottest loop a proxy or frontend runs (thousands of checks
        per batch), and one flat bit-gather beats per-key dispatch by
        well over the 5x the perf trajectory requires.
        """
        keys = list(keys)
        if not keys:
            return np.zeros(0, dtype=bool)
        positions = self._positions_many(keys)
        hits = self._bits.get_many(positions.ravel())
        return hits.reshape(len(keys), self._num_hashes).all(axis=1)

    def might_contain(self, key: bytes) -> bool:
        """Alias for ``key in filter`` with explicit maybe-semantics."""
        return key in self

    # -- merging (proxy OR of ledger filters) ---------------------------------------

    def is_compatible(self, other: "BloomFilter") -> bool:
        return (
            self.nbits == other.nbits
            and self._num_hashes == other._num_hashes
            and self._salt == other._salt
        )

    def union_with(self, other: "BloomFilter") -> None:
        """In-place OR with another filter of identical geometry."""
        if not self.is_compatible(other):
            raise ValueError("cannot OR Bloom filters with different geometry")
        self._bits.union_with(other._bits)
        self._count += other._count

    @classmethod
    def union(cls, filters: list["BloomFilter"]) -> "BloomFilter":
        """OR of several filters (what a proxy builds from all ledgers)."""
        if not filters:
            raise ValueError("need at least one filter")
        merged = filters[0].copy()
        for f in filters[1:]:
            merged.union_with(f)
        return merged

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self.nbits, self._num_hashes, self._salt.rstrip(b"\x00"))
        clone._bits = self._bits.copy()
        clone._salt = self._salt
        clone._count = self._count
        return clone

    # -- measurement helpers ------------------------------------------------------------

    def measure_fpr(
        self,
        num_probes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Empirically measure FPR with random absent keys.

        Probes are drawn from a keyspace disjoint from normal keys by a
        distinguishing prefix, so every probe is a true negative.
        """
        rng = rng or np.random.default_rng(0)
        hits = 0
        raw = rng.integers(0, 2**63, size=num_probes, dtype=np.int64)
        for value in raw:
            probe = b"__fpr_probe__" + int(value).to_bytes(8, "big")
            if probe in self:
                hits += 1
        return hits / num_probes if num_probes else 0.0

    def to_bytes(self) -> bytes:
        """Serialize the bit contents (geometry travels separately)."""
        return self._bits.to_bytes()

    @classmethod
    def from_bytes(
        cls, nbits: int, num_hashes: int, data: bytes, salt: bytes = b"irs"
    ) -> "BloomFilter":
        f = cls(nbits=nbits, num_hashes=num_hashes, salt=salt)
        f._bits = BitArray.from_bytes(nbits, data)
        return f

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(nbits={self.nbits}, k={self._num_hashes}, "
            f"keys={self._count}, fill={self.fill_ratio():.4f})"
        )


def _optimal_geometry(capacity: int, target_fpr: float) -> tuple[int, int]:
    """(nbits, k) sized optimally for capacity/fpr.  Exposed for tests."""
    nbits = bloom_bits_for_fpr(capacity, target_fpr)
    return nbits, bloom_optimal_hashes(nbits, capacity)
