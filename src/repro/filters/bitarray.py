"""Numpy-backed bit array used by Bloom-style filters.

Bits are stored in a ``uint64`` array, 64 bits per word, giving compact
storage and fast vectorized union/intersection/XOR -- the operations
proxies need when OR-ing ledger filters and delta-decoding updates.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["BitArray"]

_WORD_BITS = 64


class BitArray:
    """Fixed-size mutable bit array.

    Parameters
    ----------
    nbits:
        Number of addressable bits.  Storage rounds up to whole words.
    """

    __slots__ = ("_nbits", "_words")

    def __init__(self, nbits: int):
        if nbits <= 0:
            raise ValueError("bit array must have at least one bit")
        self._nbits = int(nbits)
        nwords = (self._nbits + _WORD_BITS - 1) // _WORD_BITS
        self._words = np.zeros(nwords, dtype=np.uint64)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_words(cls, nbits: int, words: np.ndarray) -> "BitArray":
        """Wrap an existing word array (copied) as a BitArray."""
        arr = cls(nbits)
        if words.shape != arr._words.shape:
            raise ValueError("word array shape mismatch")
        arr._words = words.astype(np.uint64, copy=True)
        arr._mask_tail()
        return arr

    def copy(self) -> "BitArray":
        return BitArray.from_words(self._nbits, self._words)

    # -- size & bit access ---------------------------------------------------

    @property
    def nbits(self) -> int:
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return int(self._words.nbytes)

    @property
    def words(self) -> np.ndarray:
        """Read-only view of the underlying words."""
        view = self._words.view()
        view.flags.writeable = False
        return view

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self._nbits:
            raise IndexError(f"bit index {index} out of range [0, {self._nbits})")
        return index

    def set(self, index: int) -> None:
        index = self._check_index(index)
        self._words[index // _WORD_BITS] |= np.uint64(1) << np.uint64(
            index % _WORD_BITS
        )

    def clear(self, index: int) -> None:
        index = self._check_index(index)
        self._words[index // _WORD_BITS] &= ~(
            np.uint64(1) << np.uint64(index % _WORD_BITS)
        )

    def get(self, index: int) -> bool:
        index = self._check_index(index)
        word = self._words[index // _WORD_BITS]
        return bool((word >> np.uint64(index % _WORD_BITS)) & np.uint64(1))

    def set_many(self, indices: Iterable[int]) -> None:
        """Set multiple bits at once (vectorized)."""
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._nbits:
            raise IndexError("bit index out of range")
        words = (idx // _WORD_BITS).astype(np.int64)
        masks = (np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64)).astype(np.uint64)
        np.bitwise_or.at(self._words, words, masks)

    def get_many(self, indices: Iterable[int]) -> np.ndarray:
        """Test multiple bits at once; returns a boolean array."""
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        if idx.min() < 0 or idx.max() >= self._nbits:
            raise IndexError("bit index out of range")
        words = self._words[(idx // _WORD_BITS).astype(np.int64)]
        shifts = (idx % _WORD_BITS).astype(np.uint64)
        return ((words >> shifts) & np.uint64(1)).astype(bool)

    # -- whole-array operations ----------------------------------------------

    def _mask_tail(self) -> None:
        """Zero any storage bits beyond nbits (keeps popcount exact)."""
        tail = self._nbits % _WORD_BITS
        if tail:
            mask = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            self._words[-1] &= mask

    def count(self) -> int:
        """Population count (number of set bits)."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self.count() / self._nbits

    def _check_compatible(self, other: "BitArray") -> None:
        if self._nbits != other._nbits:
            raise ValueError(
                f"bit arrays differ in size: {self._nbits} vs {other._nbits}"
            )

    def union_with(self, other: "BitArray") -> None:
        """In-place OR (used when a proxy merges ledger filters)."""
        self._check_compatible(other)
        np.bitwise_or(self._words, other._words, out=self._words)

    def intersect_with(self, other: "BitArray") -> None:
        """In-place AND."""
        self._check_compatible(other)
        np.bitwise_and(self._words, other._words, out=self._words)

    def xor_with(self, other: "BitArray") -> None:
        """In-place XOR (used for delta encoding of updates)."""
        self._check_compatible(other)
        np.bitwise_xor(self._words, other._words, out=self._words)

    def changed_indices(self, other: "BitArray") -> np.ndarray:
        """Indices of bits that differ between self and other."""
        self._check_compatible(other)
        diff = np.bitwise_xor(self._words, other._words)
        changed_words = np.nonzero(diff)[0]
        out: list[int] = []
        for w in changed_words:
            bits = diff[w]
            base = int(w) * _WORD_BITS
            for b in range(_WORD_BITS):
                if (bits >> np.uint64(b)) & np.uint64(1):
                    out.append(base + b)
        return np.asarray(out, dtype=np.int64)

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        return self._words.tobytes()

    @classmethod
    def from_bytes(cls, nbits: int, data: bytes) -> "BitArray":
        words = np.frombuffer(data, dtype=np.uint64)
        return cls.from_words(nbits, words.copy())

    # -- dunder ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __iter__(self) -> Iterator[bool]:  # pragma: no cover - convenience
        for i in range(self._nbits):
            yield self.get(i)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitArray(nbits={self._nbits}, set={self.count()})"
