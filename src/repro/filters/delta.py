"""Delta encoding of Bloom filter updates.

Paper, section 4.4: filters are "updated regularly (perhaps hourly), and
transferred with a delta encoding such that the update traffic will be
low."

A Bloom filter only ever *sets* bits as claims arrive (a full rebuild is
needed if claims are purged), so the hourly delta between two snapshots
is typically sparse.  We encode the XOR of the old and new bit arrays as
a sorted list of changed bit indices, varint-gap-compressed — the same
trick inverted indexes use — and fall back to shipping the full filter
when the delta would be larger.

Experiment E6 measures bytes-per-hour under a claim/revoke churn model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.filters.bitarray import BitArray
from repro.filters.bloom import BloomFilter

__all__ = ["FilterDelta", "encode_delta", "apply_delta", "DeltaError"]


class DeltaError(Exception):
    """Raised when a delta cannot be applied (geometry/version mismatch)."""


def _varint_encode(values: np.ndarray) -> bytes:
    """Gap + varint encoding of a sorted int64 array."""
    out = bytearray()
    prev = 0
    for value in values:
        gap = int(value) - prev
        prev = int(value)
        while True:
            byte = gap & 0x7F
            gap >>= 7
            if gap:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _varint_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`_varint_encode`."""
    values = []
    current = 0
    shift = 0
    prev = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            prev += current
            values.append(prev)
            current = 0
            shift = 0
    if shift != 0:
        raise DeltaError("truncated varint stream")
    return np.asarray(values, dtype=np.int64)


@dataclass(frozen=True)
class FilterDelta:
    """A shippable update from filter version ``from_version`` to ``to_version``.

    ``payload`` is either a varint-encoded changed-bit list (``kind ==
    'sparse'``) or the complete new bit array (``kind == 'full'``).
    """

    from_version: int
    to_version: int
    kind: str  # 'sparse' | 'full'
    payload: bytes
    nbits: int

    @property
    def nbytes(self) -> int:
        """Wire size: payload plus a small fixed header."""
        return len(self.payload) + 24

    @property
    def num_changed_bits(self) -> int | None:
        if self.kind != "sparse":
            return None
        return int(_varint_decode(self.payload).size)


def encode_delta(
    old: BloomFilter, new: BloomFilter, from_version: int, to_version: int
) -> FilterDelta:
    """Encode the update from ``old`` to ``new``.

    Chooses sparse encoding when smaller than a full transfer.
    """
    if not old.is_compatible(new):
        raise DeltaError("filters have different geometry; cannot delta-encode")
    changed = old.bits.changed_indices(new.bits)
    sparse_payload = _varint_encode(changed)
    full_payload = new.to_bytes()
    if len(sparse_payload) < len(full_payload):
        return FilterDelta(
            from_version=from_version,
            to_version=to_version,
            kind="sparse",
            payload=sparse_payload,
            nbits=new.nbits,
        )
    return FilterDelta(
        from_version=from_version,
        to_version=to_version,
        kind="full",
        payload=full_payload,
        nbits=new.nbits,
    )


def apply_delta(base: BloomFilter, delta: FilterDelta, expect_version: int) -> BloomFilter:
    """Apply a delta to ``base`` (which must be at ``delta.from_version``).

    Returns a new filter at ``delta.to_version``; ``base`` is unmodified.
    """
    if delta.from_version != expect_version:
        raise DeltaError(
            f"delta starts at version {delta.from_version}, "
            f"but local filter is at {expect_version}"
        )
    if delta.nbits != base.nbits:
        raise DeltaError("delta geometry does not match local filter")
    result = base.copy()
    if delta.kind == "full":
        result._bits = BitArray.from_bytes(delta.nbits, delta.payload)
        return result
    if delta.kind != "sparse":
        raise DeltaError(f"unknown delta kind {delta.kind!r}")
    changed = _varint_decode(delta.payload)
    for index in changed:
        # XOR semantics: flip each changed bit.
        if result._bits.get(int(index)):
            result._bits.clear(int(index))
        else:
            result._bits.set(int(index))
    return result
