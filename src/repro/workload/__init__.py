"""Synthetic workloads for the IRS experiments.

* :mod:`repro.workload.population` -- photo populations at scale:
  bulk-claimed ledger contents with configurable revoked fractions
  (section 4.4's "high fraction of total photos will be revoked").
* :mod:`repro.workload.zipf` -- Zipf popularity, the standard model for
  photo view frequency ("a very high fraction of *viewed* photos are
  *not* revoked").
* :mod:`repro.workload.traces` -- browsing traces: who views which
  photo when.
* :mod:`repro.workload.pages` -- photo-heavy page generation
  (pinterest-like, per section 4.3's case study).
"""

from repro.workload.population import PhotoPopulation, populate_ledger
from repro.workload.zipf import ZipfSampler
from repro.workload.traces import BrowsingTraceGenerator, ViewEvent
from repro.workload.pages import (
    pinterest_like_page,
    simple_article_page,
    page_sweep,
)
from repro.workload.diurnal import DiurnalProfile

__all__ = [
    "PhotoPopulation",
    "populate_ledger",
    "ZipfSampler",
    "BrowsingTraceGenerator",
    "ViewEvent",
    "pinterest_like_page",
    "simple_article_page",
    "page_sweep",
    "DiurnalProfile",
]
