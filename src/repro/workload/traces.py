"""Browsing traces: who views which photo, when.

A trace is a time-ordered stream of :class:`ViewEvent` records drawn
from a user population and a Zipf popularity distribution over a photo
population.  Views are drawn from the *viewable* (unrevoked) subset by
default, implementing section 4.4's assumption that "a very high
fraction of viewed photos are not revoked" -- with a configurable
leak rate for revoked photos still circulating on non-IRS sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.workload.population import PhotoPopulation
from repro.workload.zipf import ZipfSampler

__all__ = ["ViewEvent", "BrowsingTraceGenerator"]


@dataclass(frozen=True)
class ViewEvent:
    """One photo view."""

    time: float
    user: str
    photo_index: int  # index into the population's identifier list

    def __lt__(self, other: "ViewEvent") -> bool:  # heap/sort support
        return self.time < other.time


class BrowsingTraceGenerator:
    """Generates view streams over a photo population.

    Parameters
    ----------
    population:
        The claimed photo population.
    num_users:
        Distinct viewers (named ``user-0`` ...).
    zipf_exponent:
        Popularity skew across photos.
    mean_interarrival:
        Mean seconds between one user's consecutive views
        (exponentially distributed).
    revoked_view_fraction:
        Probability a view lands on a revoked photo anyway (content
        still circulating on non-participating sites).  0 reproduces
        the paper's clean assumption.
    """

    def __init__(
        self,
        population: PhotoPopulation,
        num_users: int,
        rng: np.random.Generator,
        zipf_exponent: float = 1.0,
        mean_interarrival: float = 10.0,
        revoked_view_fraction: float = 0.0,
    ):
        if num_users < 1:
            raise ValueError("need at least one user")
        if mean_interarrival <= 0:
            raise ValueError("mean interarrival must be positive")
        if not 0.0 <= revoked_view_fraction <= 1.0:
            raise ValueError("revoked_view_fraction must be in [0, 1]")
        self.population = population
        self.num_users = int(num_users)
        self._rng = rng
        self.mean_interarrival = float(mean_interarrival)
        self.revoked_view_fraction = revoked_view_fraction

        viewable = np.nonzero(population.viewable_mask())[0]
        revoked = np.nonzero(population.revoked_mask)[0]
        if viewable.size == 0:
            raise ValueError("population has no viewable photos")
        self._viewable_indices = viewable
        self._revoked_indices = revoked
        self._viewable_sampler = ZipfSampler(viewable.size, zipf_exponent, rng)
        self._revoked_sampler = (
            ZipfSampler(revoked.size, zipf_exponent, rng) if revoked.size else None
        )

    def _draw_photo(self) -> int:
        if (
            self._revoked_sampler is not None
            and self._rng.uniform() < self.revoked_view_fraction
        ):
            return int(self._revoked_indices[self._revoked_sampler.sample_one()])
        return int(self._viewable_indices[self._viewable_sampler.sample_one()])

    def generate(self, views_per_user: int) -> List[ViewEvent]:
        """A full trace, time-sorted across all users."""
        events: List[ViewEvent] = []
        for u in range(self.num_users):
            t = 0.0
            user = f"user-{u}"
            gaps = self._rng.exponential(self.mean_interarrival, size=views_per_user)
            for gap in gaps:
                t += float(gap)
                events.append(
                    ViewEvent(time=t, user=user, photo_index=self._draw_photo())
                )
        events.sort(key=lambda e: (e.time, e.user))
        return events

    def stream(self, total_views: int) -> Iterator[ViewEvent]:
        """Lazily yield a merged stream of ``total_views`` events."""
        import heapq

        heads: list[tuple[float, int, str]] = []
        for u in range(self.num_users):
            gap = float(self._rng.exponential(self.mean_interarrival))
            heapq.heappush(heads, (gap, u, f"user-{u}"))
        emitted = 0
        while emitted < total_views and heads:
            t, u, user = heapq.heappop(heads)
            yield ViewEvent(time=t, user=user, photo_index=self._draw_photo())
            emitted += 1
            next_t = t + float(self._rng.exponential(self.mean_interarrival))
            heapq.heappush(heads, (next_t, u, user))
