"""Photo populations at scale.

Load experiments need ledgers holding 10^4-10^6 claims.  Full claims
(fresh RSA key pair per photo, per the protocol) cost ~30 ms each in
keygen alone, so bulk population offers two fidelity levels:

* ``full_crypto=True`` -- every claim goes through
  :meth:`repro.ledger.ledger.Ledger.claim` with a shared key pair and a
  real signature/timestamp per record.  Protocol-faithful; ~1 kHz.
* ``full_crypto=False`` (default) -- records are synthesized directly
  into the ledger store with one shared signature/timestamp object.
  This skips per-record crypto *only*; identifiers, serials, revocation
  states, Bloom exports and status queries behave identically, which is
  all the load experiments measure.  ~100 kHz.

The revoked fraction reflects section 4.4's usage model: "many photos
will be automatically registered and revoked ... consequently, a high
fraction of *total* photos will be revoked."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.ledger.ledger import Ledger
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest

__all__ = ["PhotoPopulation", "populate_ledger"]


@dataclass
class PhotoPopulation:
    """Handle over a bulk-claimed population.

    Attributes
    ----------
    ledger:
        The ledger holding the claims.
    identifiers:
        All identifiers, in creation order (index == photo number).
    revoked_mask:
        Boolean array aligned with ``identifiers``.
    """

    ledger: Ledger
    identifiers: List[PhotoIdentifier]
    revoked_mask: np.ndarray

    @property
    def size(self) -> int:
        return len(self.identifiers)

    @property
    def num_revoked(self) -> int:
        return int(self.revoked_mask.sum())

    @property
    def revoked_fraction(self) -> float:
        return self.num_revoked / self.size if self.size else 0.0

    def compact_identifiers(self) -> List[bytes]:
        return [identifier.to_compact() for identifier in self.identifiers]

    def viewable_mask(self) -> np.ndarray:
        """Photos available for viewing (i.e. not revoked)."""
        return ~self.revoked_mask


def populate_ledger(
    ledger: Ledger,
    count: int,
    revoked_fraction: float,
    rng: np.random.Generator,
    full_crypto: bool = False,
    keypair: Optional[KeyPair] = None,
) -> PhotoPopulation:
    """Claim ``count`` synthetic photos on ``ledger``.

    Parameters
    ----------
    revoked_fraction:
        Probability each photo is registered in the revoked state.
    full_crypto:
        See module docstring; choose True when the experiment exercises
        signatures/timestamps per record, False for pure load shaping.
    keypair:
        Shared signing key; generated when omitted.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 <= revoked_fraction <= 1.0:
        raise ValueError("revoked_fraction must be in [0, 1]")
    keypair = keypair or KeyPair.generate(bits=512, rng=rng)
    revoked_mask = rng.uniform(size=count) < revoked_fraction
    identifiers: List[PhotoIdentifier] = []

    if full_crypto:
        for i in range(count):
            content_hash = sha256_hex(
                f"{ledger.ledger_id}:bulk:{i}:{rng.integers(2**63)}".encode()
            )
            signature = keypair.sign(content_hash.encode("utf-8"))
            record = ledger.claim(
                content_hash=content_hash,
                content_signature=signature,
                public_key=keypair.public,
                initially_revoked=bool(revoked_mask[i]),
            )
            identifiers.append(record.identifier)
        return PhotoPopulation(
            ledger=ledger, identifiers=identifiers, revoked_mask=revoked_mask
        )

    # Fast path: one shared signature and timestamp object; records are
    # installed directly.  Documented simulation shortcut -- identifiers
    # and revocation state are fully real.
    shared_hash = sha256_hex(f"{ledger.ledger_id}:bulk-shared".encode())
    shared_signature = keypair.sign(shared_hash.encode("utf-8"))
    shared_timestamp = ledger.timestamp_authority.issue(
        claim_digest(shared_hash, keypair.public)
    )
    now = ledger.now()
    for i in range(count):
        serial = ledger.store.allocate_serial()
        identifier = PhotoIdentifier(ledger_id=ledger.ledger_id, serial=serial)
        record = ClaimRecord(
            identifier=identifier,
            content_hash=shared_hash,
            content_signature=shared_signature,
            public_key=keypair.public,
            timestamp=shared_timestamp,
            state=(
                RevocationState.REVOKED
                if revoked_mask[i]
                else RevocationState.NOT_REVOKED
            ),
        )
        ledger.store.put(record)
        ledger.store.log_operation("claim", serial, now)
        if revoked_mask[i]:
            ledger.store.log_operation("revoke", serial, now)
        identifiers.append(identifier)
    ledger.claims_served += count
    return PhotoPopulation(
        ledger=ledger, identifiers=identifiers, revoked_mask=revoked_mask
    )
