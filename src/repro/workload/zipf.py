"""Zipf popularity sampling.

Photo views are heavily skewed: a few photos draw most views.  The
paper's load argument (section 4.4) rides on the complementary fact
that the *viewed* population is mostly unrevoked; the Zipf sampler
lets experiments control exactly how often revoked items surface.

Sampling uses the inverse-CDF method over precomputed probabilities
(vectorized ``searchsorted``), fast enough for millions of draws.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Samples indices ``0..n-1`` with P(k) proportional to 1/(k+1)^s.

    Parameters
    ----------
    n:
        Support size (number of distinct items).
    exponent:
        Zipf exponent ``s``; 0 gives uniform, ~1 is web-like skew.
    rng:
        Seeded generator.
    """

    def __init__(self, n: int, exponent: float, rng: np.random.Generator):
        if n < 1:
            raise ValueError("support size must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = int(n)
        self.exponent = float(exponent)
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, self.n + 1, dtype=np.float64), exponent)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)
        # Guard against floating point drift at the top end.
        self._cdf[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item indices."""
        if size < 0:
            raise ValueError("size must be non-negative")
        u = self._rng.uniform(size=size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def expected_hit_rate(self, member_mask: np.ndarray) -> float:
        """Probability a draw lands in the marked subset (analytic)."""
        mask = np.asarray(member_mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError("mask must have one entry per item")
        return float(self._probabilities[mask].sum())
