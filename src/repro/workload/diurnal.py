"""Diurnal traffic shaping.

Ledger load (section 4.4) and hosting cost (experiment E15) depend on
*peak* rates, not means: photo viewing follows the waking day.  This
module provides a smooth diurnal profile — a two-harmonic curve with an
evening peak and a pre-dawn trough, the standard shape of consumer web
traffic — plus helpers to compute peak-to-mean ratios and to thin a
flat event stream into a diurnal one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

import numpy as np

__all__ = ["DiurnalProfile"]

_DAY = 86_400.0


@dataclass
class DiurnalProfile:
    """Relative traffic intensity over the day.

    Intensity is ``1 + a1*cos(w(t-p1)) + a2*cos(2w(t-p2))`` with mean
    1.0 over the day by construction; defaults put the main peak in the
    late evening (~22:30), the trough mid-morning, and peak-to-mean
    ~1.55 (the shape, not the exact hours, is what matters downstream:
    the economics model provisions for the peak).

    Attributes
    ----------
    primary_amplitude / primary_peak_hour:
        The 24-hour harmonic (dominant evening peak).
    secondary_amplitude / secondary_peak_hour:
        A 12-hour harmonic adding a lunchtime shoulder.
    """

    primary_amplitude: float = 0.55
    primary_peak_hour: float = 21.0
    secondary_amplitude: float = 0.12
    secondary_peak_hour: float = 13.0

    def __post_init__(self) -> None:
        if not 0 <= self.primary_amplitude < 1:
            raise ValueError("primary amplitude must be in [0, 1)")
        if self.primary_amplitude + self.secondary_amplitude >= 1.0:
            raise ValueError("amplitudes must sum below 1 (intensity > 0)")

    def intensity(self, time_s: float) -> float:
        """Relative rate at ``time_s`` (seconds since local midnight)."""
        w = 2 * np.pi / _DAY
        t = time_s % _DAY
        value = (
            1.0
            + self.primary_amplitude
            * np.cos(w * (t - self.primary_peak_hour * 3600.0))
            + self.secondary_amplitude
            * np.cos(2 * w * (t - self.secondary_peak_hour * 3600.0))
        )
        return float(value)

    def intensities(self, times_s: np.ndarray) -> np.ndarray:
        w = 2 * np.pi / _DAY
        t = np.asarray(times_s, dtype=np.float64) % _DAY
        return (
            1.0
            + self.primary_amplitude
            * np.cos(w * (t - self.primary_peak_hour * 3600.0))
            + self.secondary_amplitude
            * np.cos(2 * w * (t - self.secondary_peak_hour * 3600.0))
        )

    def peak_to_mean(self, samples: int = 2880) -> float:
        """Peak-to-mean ratio (mean is 1.0 by construction)."""
        times = np.linspace(0.0, _DAY, samples, endpoint=False)
        return float(self.intensities(times).max())

    def peak_hour(self, samples: int = 2880) -> float:
        times = np.linspace(0.0, _DAY, samples, endpoint=False)
        return float(times[int(np.argmax(self.intensities(times)))] / 3600.0)

    def trough_hour(self, samples: int = 2880) -> float:
        times = np.linspace(0.0, _DAY, samples, endpoint=False)
        return float(times[int(np.argmin(self.intensities(times)))] / 3600.0)

    def thin_events(
        self,
        times_s: Iterable[float],
        rng: np.random.Generator,
    ) -> List[float]:
        """Thin a flat-rate event stream to this profile.

        Each event at time t survives with probability
        ``intensity(t) / peak``, producing a stream whose rate follows
        the profile (standard thinning of a Poisson process).
        """
        times = np.asarray(list(times_s), dtype=np.float64)
        if times.size == 0:
            return []
        peak = self.peak_to_mean()
        keep_p = self.intensities(times) / peak
        kept = times[rng.uniform(size=times.size) < keep_p]
        return [float(t) for t in kept]
