"""Photo-heavy page generation (section 4.3's pinterest case study).

Page shapes follow Web-Almanac-era medians: HTML around 30 KB, a few
hundred KB of CSS/JS, images lognormally distributed around ~70 KB.  A
"pinterest-like" page is an image grid: many medium-sized images and
modest blocking resources, which is the workload where revocation
checks could plausibly hurt and where pipelining hides them.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.browser.page import AuxResource, ImageResource, Page
from repro.core.identifiers import PhotoIdentifier

__all__ = ["pinterest_like_page", "simple_article_page", "page_sweep"]


def _image_sizes(
    rng: np.random.Generator, count: int, median_bytes: float, sigma: float
) -> np.ndarray:
    sizes = rng.lognormal(np.log(median_bytes), sigma, size=count)
    return np.clip(sizes, 5_000, 2_000_000).astype(int)


def _label_images(
    images: List[ImageResource],
    rng: np.random.Generator,
    labeled_fraction: float,
    identifiers: Optional[List[PhotoIdentifier]],
) -> None:
    """Mark a fraction of images as IRS-labeled.

    When ``identifiers`` is given, labels are drawn from it (so checks
    hit real ledger records); otherwise placeholder identifiers are
    minted on a synthetic ledger id.
    """
    for i, image in enumerate(images):
        if rng.uniform() >= labeled_fraction:
            continue
        if identifiers:
            image.identifier = identifiers[int(rng.integers(len(identifiers)))]
        else:
            image.identifier = PhotoIdentifier(
                ledger_id="synthetic-ledger", serial=i + 1
            )


def pinterest_like_page(
    rng: np.random.Generator,
    num_images: int = 60,
    labeled_fraction: float = 1.0,
    identifiers: Optional[List[PhotoIdentifier]] = None,
    name: str = "pinterest-like",
) -> Page:
    """An image-grid page: the paper's photo-heavy worst case.

    Defaults label *every* image so latency experiments measure the
    worst case ("a revocation check before displaying every labeled
    photo").
    """
    if num_images < 1:
        raise ValueError("need at least one image")
    # Pinterest-style grid/closeup images: ~150 KB median.
    sizes = _image_sizes(rng, num_images, median_bytes=150_000, sigma=0.5)
    images = [
        ImageResource(name=f"img-{i}", size_bytes=int(size))
        for i, size in enumerate(sizes)
    ]
    _label_images(images, rng, labeled_fraction, identifiers)
    aux = [
        AuxResource(name="app.css", size_bytes=90_000, kind="css"),
        AuxResource(name="vendor.js", size_bytes=350_000, kind="js"),
        AuxResource(name="app.js", size_bytes=180_000, kind="js"),
    ]
    return Page(name=name, html_bytes=45_000, aux=aux, images=images)


def simple_article_page(
    rng: np.random.Generator,
    num_images: int = 8,
    labeled_fraction: float = 0.5,
    identifiers: Optional[List[PhotoIdentifier]] = None,
    name: str = "article",
) -> Page:
    """A text-dominant page with a handful of inline photos."""
    if num_images < 0:
        raise ValueError("image count cannot be negative")
    sizes = _image_sizes(rng, num_images, median_bytes=90_000, sigma=0.5)
    images = [
        ImageResource(name=f"fig-{i}", size_bytes=int(size))
        for i, size in enumerate(sizes)
    ]
    _label_images(images, rng, labeled_fraction, identifiers)
    aux = [
        AuxResource(name="site.css", size_bytes=60_000, kind="css"),
        AuxResource(name="site.js", size_bytes=120_000, kind="js"),
    ]
    return Page(name=name, html_bytes=30_000, aux=aux, images=images)


def page_sweep(
    rng: np.random.Generator,
    image_counts: List[int],
    labeled_fraction: float = 1.0,
) -> List[Page]:
    """Pinterest-like pages at increasing image counts (E1's x-axis)."""
    return [
        pinterest_like_page(
            rng,
            num_images=count,
            labeled_fraction=labeled_fraction,
            name=f"grid-{count}",
        )
        for count in image_counts
    ]
