"""Attacker models from section 5, "Direct Attacks".

**Naive attacker**: "insert incorrect metadata and/or apply enough
cropping and/or distortion to render the watermark unreadable.  This
would render the picture unsharable, which is self-defeating" -- an
IRS upload pipeline denies label-conflicted and label-partial photos.

**Sophisticated attacker**: "claim the picture (i.e., register a copy
with a ledger), mark it as not revoked, insert new metadata and a
matching watermark (erasing the old one), and then start sharing it.
IRS cannot prevent or detect this automatically ... but must rely on
the aforementioned appeals process."  (QIM re-embedding overwrites the
previous watermark's coefficients, so "erasing the old one" falls out
of the embedding itself.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.identifiers import PhotoIdentifier
from repro.core.owner import ClaimReceipt, OwnerToolkit
from repro.ledger.ledger import Ledger
from repro.media.image import Photo
from repro.media.metadata import IRS_IDENTIFIER_FIELD
from repro.media.transforms import add_noise
from repro.media.watermark import WatermarkCodec

__all__ = ["NaiveAttacker", "SophisticatedAttacker", "AttackResult"]


@dataclass
class AttackResult:
    """The artifact an attacker produced, plus bookkeeping."""

    photo: Photo
    description: str
    # For the sophisticated attacker: the fraudulent claim, and the
    # exact photo that was claimed (pre-relabeling pixels -- what the
    # attacker would have to present in any appeal of their own).
    receipt: Optional[ClaimReceipt] = None
    claimed_photo: Optional[Photo] = None

    @property
    def identifier(self) -> Optional[PhotoIdentifier]:
        return self.receipt.identifier if self.receipt else None


class NaiveAttacker:
    """Destroys or corrupts labels without re-claiming.

    Both moves are self-defeating under IRS validation; the tests and
    the E10 bench confirm the resulting photos are denied at upload.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng or np.random.default_rng(0)

    def strip_and_mangle(self, photo: Photo, noise_sigma: float = 0.12) -> AttackResult:
        """Strip metadata and add noise heavy enough to kill the watermark.

        sigma 0.12 (~30 grey levels) visibly degrades the photo -- the
        price of destroying a delta-40 QIM watermark.
        """
        mangled = add_noise(
            photo, sigma=noise_sigma, rng=self._rng, preserve_metadata=False
        )
        return AttackResult(
            photo=mangled,
            description="metadata stripped + heavy noise (watermark destroyed)",
        )

    def forge_metadata(
        self, photo: Photo, fake_identifier: PhotoIdentifier
    ) -> AttackResult:
        """Replace the metadata identifier while the watermark persists.

        Produces a metadata/watermark *disagreement*, which validation
        denies outright.
        """
        forged = photo.copy()
        forged.metadata.set(IRS_IDENTIFIER_FIELD, fake_identifier.to_string())
        return AttackResult(
            photo=forged,
            description=f"metadata forged to {fake_identifier} (watermark intact)",
        )

    def strip_metadata_only(self, photo: Photo) -> AttackResult:
        """Strip metadata, leave pixels alone (watermark survives)."""
        stripped = photo.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        return AttackResult(
            photo=stripped, description="metadata stripped, watermark intact"
        )


class SophisticatedAttacker:
    """Re-claims a copy under its own key pair.

    The result is indistinguishable from a legitimately claimed photo
    (matching metadata + watermark, unrevoked ledger record); only the
    appeals process -- earlier authenticated timestamp plus robust-hash
    derivation -- defeats it.
    """

    def __init__(
        self,
        ledger: Ledger,
        rng: Optional[np.random.Generator] = None,
        watermark_codec: Optional[WatermarkCodec] = None,
    ):
        self.ledger = ledger
        self._toolkit = OwnerToolkit(
            rng=rng or np.random.default_rng(0),
            watermark_codec=watermark_codec or WatermarkCodec(payload_len=12),
        )

    def reclaim_copy(self, stolen_photo: Photo) -> AttackResult:
        """Claim ``stolen_photo`` as one's own and re-label it.

        Re-labeling embeds the attacker's identifier over the original
        watermark and overwrites the metadata field, exactly the
        section 5 recipe.
        """
        # Shed the victim's metadata before claiming.
        laundered = stolen_photo.copy()
        laundered.metadata = laundered.metadata.stripped(preserve_irs=False)
        receipt, relabeled = self._toolkit.claim_and_label(laundered, self.ledger)
        return AttackResult(
            photo=relabeled,
            description="copy re-claimed under attacker key, re-labeled",
            receipt=receipt,
            claimed_photo=laundered,
        )
