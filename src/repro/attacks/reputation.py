"""Reputational discipline of ledgers.

Section 5: "it is almost impossible to scalably prevent bad behavior in
the short-term but one counts on reputational effects (i.e., users will
avoid ledgers that are known to behave badly) to prevent bad behavior
in the long term."

:class:`LedgerMarket` models that mechanism: ledgers hold market share
of new claims; probe reports (from
:class:`repro.ledger.probes.HonestyProber`) feed reputations; owners
choose ledgers proportionally to reputation-weighted share, so a ledger
caught lying bleeds market share at a rate set by how widely probe
evidence spreads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ledger.probes import ProbeReport

__all__ = ["LedgerReputation", "LedgerMarket"]


@dataclass
class LedgerReputation:
    """One ledger's public standing.

    ``score`` in [0, 1]: 1 = spotless.  Violations with signed evidence
    (wrong_status with a StatusProof attached) hit harder than
    unprovable ones, because they are independently verifiable by
    anyone the evidence reaches.
    """

    ledger_id: str
    score: float = 1.0
    violations_observed: int = 0

    def apply_report(
        self, report: ProbeReport, evidence_weight: float, soft_weight: float
    ) -> None:
        for violation in report.violations:
            self.violations_observed += 1
            penalty = (
                evidence_weight if violation.evidence is not None else soft_weight
            )
            self.score *= 1.0 - penalty
        self.score = max(0.0, min(1.0, self.score))

    def recover(self, rate: float) -> None:
        """Slow reputation recovery during clean periods."""
        self.score = min(1.0, self.score + rate * (1.0 - self.score))


class LedgerMarket:
    """Owners choosing among ledgers by reputation.

    Each round: probe reports update reputations, then new-claim market
    share is recomputed proportional to ``score ** sharpness`` (sharper
    markets punish faster).
    """

    def __init__(
        self,
        ledger_ids: List[str],
        evidence_weight: float = 0.25,
        soft_weight: float = 0.08,
        recovery_rate: float = 0.01,
        sharpness: float = 2.0,
    ):
        if not ledger_ids:
            raise ValueError("need at least one ledger")
        self.reputations: Dict[str, LedgerReputation] = {
            ledger_id: LedgerReputation(ledger_id=ledger_id)
            for ledger_id in ledger_ids
        }
        self.evidence_weight = float(evidence_weight)
        self.soft_weight = float(soft_weight)
        self.recovery_rate = float(recovery_rate)
        self.sharpness = float(sharpness)
        self.share_history: List[Dict[str, float]] = [self.market_share()]

    def market_share(self) -> Dict[str, float]:
        """Current new-claim share per ledger."""
        weights = {
            ledger_id: max(rep.score, 1e-6) ** self.sharpness
            for ledger_id, rep in self.reputations.items()
        }
        total = sum(weights.values())
        return {ledger_id: w / total for ledger_id, w in weights.items()}

    def round(self, reports: Dict[str, ProbeReport]) -> Dict[str, float]:
        """Apply one round of probe reports; returns new market shares.

        Ledgers without a report this round (or with a clean one)
        recover slightly.
        """
        for ledger_id, reputation in self.reputations.items():
            report = reports.get(ledger_id)
            if report is not None and report.violations:
                reputation.apply_report(
                    report, self.evidence_weight, self.soft_weight
                )
            else:
                reputation.recover(self.recovery_rate)
        shares = self.market_share()
        self.share_history.append(shares)
        return shares

    def share_of(self, ledger_id: str) -> float:
        return self.market_share()[ledger_id]
