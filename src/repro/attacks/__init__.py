"""Section 5: direct attacks and unintended consequences.

* :mod:`repro.attacks.attackers` -- the naive attacker (strip/destroy
  labels; self-defeating) and the sophisticated attacker (re-claim a
  copy under a fresh key; defeated by appeals).
* :mod:`repro.attacks.malicious_ledger` -- ledgers that lie about
  status or ignore revocations, for probe/reputation experiments.
* :mod:`repro.attacks.reputation` -- the reputational market dynamics
  the paper counts on to discipline ledgers.
* :mod:`repro.attacks.censorship` -- coercion scenarios and the
  nonprofit non-revocable archive ledger defence.
"""

from repro.attacks.attackers import (
    NaiveAttacker,
    SophisticatedAttacker,
    AttackResult,
)
from repro.attacks.malicious_ledger import LyingLedger, StonewallingLedger
from repro.attacks.reputation import LedgerMarket, LedgerReputation
from repro.attacks.censorship import (
    ArchiveLedger,
    CoercionAttempt,
    CoercionOutcome,
    attempt_coerced_revocation,
)

__all__ = [
    "NaiveAttacker",
    "SophisticatedAttacker",
    "AttackResult",
    "LyingLedger",
    "StonewallingLedger",
    "LedgerMarket",
    "LedgerReputation",
    "ArchiveLedger",
    "CoercionAttempt",
    "CoercionOutcome",
    "attempt_coerced_revocation",
]
