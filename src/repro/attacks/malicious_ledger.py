"""Misbehaving ledgers (section 5, "Malicious Ledgers?").

"Ledgers could misbehave in various ways (e.g., answering queries
incorrectly, not responding to an owner's request to revoke or
unrevoke a photo, etc.)."

Two concrete misbehaviours:

* :class:`LyingLedger` answers a fraction of status queries with the
  *opposite* revocation state (still signed -- which is what makes the
  probe evidence damning).
* :class:`StonewallingLedger` silently ignores a fraction of owners'
  revoke/unrevoke requests while pretending success.

Both are detected by :class:`repro.ledger.probes.HonestyProber`
(canaries + Merkle audits) and punished by
:class:`repro.attacks.reputation.LedgerMarket`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.signatures import Signature
from repro.ledger.ledger import Ledger
from repro.ledger.proofs import StatusProof
from repro.ledger.records import ClaimRecord, RevocationState

__all__ = ["LyingLedger", "StonewallingLedger"]


class LyingLedger(Ledger):
    """Flips a fraction of status answers.

    ``lie_probability`` is the chance any single status query is
    answered with the inverted revocation state.  Signatures remain
    valid over the (false) payload -- the ledger is lying, not broken.
    """

    def __init__(self, *args, lie_probability: float = 0.1, lie_rng=None, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= lie_probability <= 1.0:
            raise ValueError("lie_probability must be in [0, 1]")
        self.lie_probability = float(lie_probability)
        self._lie_rng = lie_rng or np.random.default_rng(0)
        self.lies_told = 0

    def status(self, identifier: PhotoIdentifier) -> StatusProof:
        record = self._require_record(identifier)
        self.status_queries_served += 1
        if self._lie_rng.uniform() >= self.lie_probability:
            return self._sign_status(record)
        # Lie: sign the inverted state.
        self.lies_told += 1
        lied_revoked = not record.is_revoked
        checked_at = self.now()
        payload = {
            "identifier": record.identifier.to_string(),
            "revoked": lied_revoked,
            "permanent": False,
            "checked_at": checked_at,
            "ledger": self.fingerprint,
        }
        return StatusProof(
            identifier=record.identifier.to_string(),
            revoked=lied_revoked,
            permanently_revoked=False,
            checked_at=checked_at,
            ledger_fingerprint=self.fingerprint,
            signature=self._keypair.sign_struct(payload),
        )


class StonewallingLedger(Ledger):
    """Silently drops a fraction of revocation state changes.

    The owner's request "succeeds" (no error, record returned) but the
    flag never moves -- the hardest misbehaviour to notice without
    probing, since every individual answer is internally consistent.
    """

    def __init__(self, *args, drop_probability: float = 0.5, drop_rng=None, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = float(drop_probability)
        self._drop_rng = drop_rng or np.random.default_rng(0)
        self.requests_dropped = 0

    def revoke(
        self, identifier: PhotoIdentifier, nonce: bytes, signature: Signature
    ) -> ClaimRecord:
        if self._drop_rng.uniform() < self.drop_probability:
            # Consume the challenge and pretend everything worked.
            record = self._require_record(identifier)
            self._verify_ownership("revoke", record, nonce, signature)
            self.requests_dropped += 1
            self.revocations_served += 1
            return record
        return super().revoke(identifier, nonce, signature)

    def unrevoke(
        self, identifier: PhotoIdentifier, nonce: bytes, signature: Signature
    ) -> ClaimRecord:
        if self._drop_rng.uniform() < self.drop_probability:
            record = self._require_record(identifier)
            self._verify_ownership("unrevoke", record, nonce, signature)
            self.requests_dropped += 1
            self.revocations_served += 1
            return record
        return super().unrevoke(identifier, nonce, signature)
