"""Censorship pressure and the archive-ledger defence (section 5).

"One might worry that government authorities could use their influence
on owners or ledgers to force photos to be revoked.  IRS cannot stop
direct coercion, but nonprofit groups could create ledgers for specific
types of photos; e.g., that document human-rights violations ...  These
ledgers could register photos and not allow their revocation (and would
deny the appeals process if it appeared the appeal was done under
duress)."

:class:`ArchiveLedger` is that nonprofit ledger: revocation disabled by
policy, appeals subject to a duress screen.
:func:`attempt_coerced_revocation` plays out a coercion attempt against
any ledger and reports whether the content survived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import RevocationError
from repro.core.owner import ClaimReceipt, OwnerToolkit
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.appeals import Appeal, AppealDecision, AppealVerdict, AppealsProcess
from repro.ledger.ledger import Ledger, LedgerConfig

__all__ = [
    "ArchiveLedger",
    "CoercionAttempt",
    "CoercionOutcome",
    "attempt_coerced_revocation",
    "DuressScreenedAppeals",
]


class ArchiveLedger(Ledger):
    """A nonprofit documentation ledger: claims can never be revoked."""

    def __init__(
        self,
        ledger_id: str,
        timestamp_authority: TimestampAuthority,
        **kwargs,
    ):
        config = kwargs.pop("config", None) or LedgerConfig()
        config.allow_revocation = False
        super().__init__(
            ledger_id=ledger_id,
            timestamp_authority=timestamp_authority,
            config=config,
            **kwargs,
        )

    def permanently_revoke(self, identifier):  # noqa: D102 - policy override
        raise RevocationError(
            f"archive ledger {self.ledger_id!r} never revokes: its records "
            "document events and are permanent by policy"
        )


class DuressScreenedAppeals(AppealsProcess):
    """Appeals with a duress screen before adjudication.

    ``duress_detector(appeal) -> bool`` stands in for the human review
    the paper describes ("would deny the appeals process if it appeared
    the appeal was done under duress").
    """

    def __init__(
        self,
        *args,
        duress_detector: Optional[Callable[[Appeal], bool]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.duress_detector = duress_detector or (lambda appeal: False)
        self.appeals_screened_out = 0

    def adjudicate(self, appeal: Appeal) -> AppealDecision:
        if self.duress_detector(appeal):
            self.appeals_screened_out += 1
            return AppealDecision(
                AppealVerdict.REJECTED,
                "appeal appears to be made under duress; denied by policy",
            )
        return super().adjudicate(appeal)


class CoercionOutcome(enum.Enum):
    CONTENT_REVOKED = "content_revoked"  # coercion succeeded
    CONTENT_SURVIVED = "content_survived"  # ledger policy blocked it


@dataclass
class CoercionAttempt:
    """Result of one coercion attempt."""

    outcome: CoercionOutcome
    detail: str

    @property
    def survived(self) -> bool:
        return self.outcome is CoercionOutcome.CONTENT_SURVIVED


def attempt_coerced_revocation(
    owner: OwnerToolkit, receipt: ClaimReceipt, ledger: Ledger
) -> CoercionAttempt:
    """An authority coerces the owner into requesting revocation.

    The owner complies (IRS "cannot stop direct coercion") -- the
    question is whether the *ledger's policy* lets the revocation go
    through.  Against a commercial ledger it does; against an
    :class:`ArchiveLedger` it does not, and the documentation stays
    available.
    """
    try:
        owner.revoke(receipt, ledger)
    except RevocationError as exc:
        return CoercionAttempt(
            outcome=CoercionOutcome.CONTENT_SURVIVED,
            detail=f"ledger refused the (coerced) revocation: {exc}",
        )
    proof = ledger.status(receipt.identifier)
    if proof.revoked:
        return CoercionAttempt(
            outcome=CoercionOutcome.CONTENT_REVOKED,
            detail="coerced revocation succeeded on a commercial ledger",
        )
    return CoercionAttempt(
        outcome=CoercionOutcome.CONTENT_SURVIVED,
        detail="revocation request accepted but state did not change",
    )
